//! # smv-obs — zero-dependency tracing spans and metrics
//!
//! The observability layer the rest of the workspace reports into. Two
//! halves, both built on `std` alone so the crate stays offline-friendly
//! like `crates/shims`:
//!
//! * **Spans** — [`SpanGuard`] RAII timers (made with the [`span!`]
//!   macro) that record nanosecond durations plus integer fields into a
//!   global collector. The collector is gated on a single global flag:
//!   while tracing is disabled (the default), entering a span is one
//!   relaxed atomic load and no clock read, so instrumented hot paths
//!   cost near-nothing in production.
//! * **Metrics** — a [`MetricsRegistry`] of named counters, gauges and
//!   log-bucketed histograms (for p50/p99 latency) that snapshots to
//!   JSON. A process-wide registry is reachable through [`global`]; the
//!   free functions [`counter_add`], [`gauge_set`], [`gauge_max`] and
//!   [`observe`] write to it only while tracing is enabled, so they are
//!   safe to call from hot paths.
//!
//! ```
//! let _g = smv_obs::ScopedEnable::new(); // tracing on for this scope
//! {
//!     let mut s = smv_obs::span!("rewrite.run");
//!     s.field("pairs_explored", 12);
//! }
//! smv_obs::observe("query.latency_ns", 1500);
//! let spans = smv_obs::drain_spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].name, "rewrite.run");
//! assert!(smv_obs::global().snapshot_json().contains("query.latency_ns"));
//! ```

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------------
// global enable flag

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is tracing globally enabled? One relaxed atomic load — callers may
/// use this to skip metric computation entirely on hot paths.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the global subscriber on or off. Spans entered while disabled
/// never read the clock and are dropped without locking.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// RAII guard that enables tracing for a scope and restores the previous
/// state on drop — what tests and `EXPLAIN ANALYZE` drivers use so they
/// cannot leave the global flag flipped.
pub struct ScopedEnable {
    was: bool,
}

impl ScopedEnable {
    /// Enable tracing until the guard drops.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let was = enabled();
        set_enabled(true);
        ScopedEnable { was }
    }
}

impl Drop for ScopedEnable {
    fn drop(&mut self) {
        set_enabled(self.was);
    }
}

// ---------------------------------------------------------------------------
// spans

/// A finished span: name, wall time, and any integer fields attached
/// while it was open.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static name given at [`SpanGuard::enter`] (dot-separated by
    /// convention, e.g. `"rewrite.run"`).
    pub name: &'static str,
    /// Wall-clock duration from enter to drop, in nanoseconds.
    pub dur_ns: u64,
    /// Integer fields recorded with [`SpanGuard::field`].
    pub fields: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// The value of field `key`, if recorded.
    pub fn field(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An open span. Created by [`span!`] / [`SpanGuard::enter`]; on drop,
/// if tracing was enabled at enter time, pushes a [`SpanRecord`] with
/// the elapsed nanoseconds into the global collector.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Open a span named `name`. When tracing is disabled this reads no
    /// clock and allocates nothing.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        SpanGuard {
            name,
            start: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
            fields: Vec::new(),
        }
    }

    /// Attach an integer field (no-op while the span is inert).
    #[inline]
    pub fn field(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }

    /// Is this span live (tracing was enabled when it opened)?
    #[inline]
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t) = self.start {
            let rec = SpanRecord {
                name: self.name,
                dur_ns: t.elapsed().as_nanos() as u64,
                fields: std::mem::take(&mut self.fields),
            };
            lock(&SPANS).push(rec);
        }
    }
}

/// Open a [`SpanGuard`] with an optional list of initial fields:
/// `span!("exec.run")` or `span!("rewrite.run", "views" = n)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($k:literal = $v:expr),+ $(,)?) => {{
        let mut __s = $crate::SpanGuard::enter($name);
        $(__s.field($k, $v as u64);)+
        __s
    }};
}

/// Take every finished span out of the global collector.
pub fn drain_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *lock(&SPANS))
}

// ---------------------------------------------------------------------------
// histograms

const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples. Bucket *i* holds values
/// whose bit length is *i*, so relative error of a quantile estimate is
/// bounded by 2× — plenty for latency p50/p99 — while recording is two
/// adds and an increment.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = (u64::BITS - v.leading_zeros()) as usize; // bit length, 0 for v=0
        self.buckets[idx.min(BUCKETS - 1)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0,1]`: the upper bound of the
    /// bucket holding the q-th sample, clamped to the observed min/max.
    /// Within 2× of the true value by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // bucket i holds values of bit length i: [2^(i-1), 2^i - 1]
                let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// metrics registry

#[derive(Debug)]
struct Inner {
    counters: BTreeMap<String, u64>,
    /// Gauges are atomic cells so high-water updates ([`MetricsRegistry::gauge_max`])
    /// are a lock-free CAS once the cell exists — concurrent clients
    /// racing to raise the same mark (p99 queue depth, in-flight count)
    /// always converge on the true maximum, and never serialize on the
    /// map mutex for the update itself.
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Histogram>,
}

impl Inner {
    /// The gauge cell for `name`, created at `init` on first touch.
    fn gauge_cell(map: &Mutex<Inner>, name: &str, init: i64) -> (Arc<AtomicI64>, bool) {
        let mut g = lock(map);
        match g.gauges.get(name) {
            Some(cell) => (Arc::clone(cell), false),
            None => {
                let cell = Arc::new(AtomicI64::new(init));
                g.gauges.insert(name.to_string(), Arc::clone(&cell));
                (cell, true)
            }
        }
    }
}

/// Named counters, gauges and log-bucketed histograms behind one mutex,
/// snapshotable as JSON. Construct locally for scoped measurement (the
/// bench harness does) or use the process-wide [`global`] registry.
#[derive(Debug)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry. `const`, so it can back a `static`.
    pub const fn new() -> Self {
        MetricsRegistry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    /// Add `delta` to counter `name` (created at 0 on first touch).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut g = lock(&self.inner);
        match g.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                g.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let (cell, created) = Inner::gauge_cell(&self.inner, name, value);
        if !created {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raise gauge `name` to `value` if higher (high-water marks).
    ///
    /// The raise is a CAS loop on the gauge's atomic cell, so concurrent
    /// writers always settle on the true maximum: a writer whose value is
    /// already beaten retries against the observed current value and
    /// gives up only when the cell holds something at least as high.
    pub fn gauge_max(&self, name: &str, value: i64) {
        let (cell, created) = Inner::gauge_cell(&self.inner, name, value);
        if created {
            return;
        }
        let mut cur = cell.load(Ordering::Relaxed);
        while value > cur {
            match cell.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut g = lock(&self.inner);
        match g.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                g.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.inner).counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        lock(&self.inner)
            .gauges
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// A clone of histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        lock(&self.inner).histograms.get(name).cloned()
    }

    /// Drop every metric.
    pub fn reset(&self) {
        let mut g = lock(&self.inner);
        g.counters.clear();
        g.gauges.clear();
        g.histograms.clear();
    }

    /// Serialize every metric as a JSON object: counters and gauges as
    /// numbers, histograms as `{count, sum, min, max, mean, p50, p90,
    /// p99}` summaries. Keys are sorted, so output is deterministic.
    pub fn snapshot_json(&self) -> String {
        let g = lock(&self.inner);
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, g.counters.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\n  \"gauges\": {");
        push_entries(
            &mut out,
            g.gauges
                .iter()
                .map(|(k, v)| (k, v.load(Ordering::Relaxed).to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        push_entries(
            &mut out,
            g.histograms.iter().map(|(k, h)| {
                (
                    k,
                    format!(
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                    ),
                )
            }),
        );
        out.push_str("}\n}");
        out
    }
}

fn push_entries<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        for ch in k.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str("\": ");
        out.push_str(&v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry that instrumented subsystems report into.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Add to a global counter — only while tracing is [`enabled`].
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        GLOBAL.counter_add(name, delta);
    }
}

/// Set a global gauge — only while tracing is [`enabled`].
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    if enabled() {
        GLOBAL.gauge_set(name, value);
    }
}

/// Raise a global high-water gauge — only while tracing is [`enabled`].
#[inline]
pub fn gauge_max(name: &str, value: i64) {
    if enabled() {
        GLOBAL.gauge_max(name, value);
    }
}

/// Record into a global histogram — only while tracing is [`enabled`].
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        GLOBAL.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span/metric tests share the process-global flag and sinks, so
    /// they serialize on one mutex instead of racing under `cargo test`.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_records_nothing() {
        let _s = lock(&SERIAL);
        set_enabled(false);
        drain_spans();
        {
            let mut g = span!("quiet");
            g.field("x", 1);
            assert!(!g.is_live());
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn enabled_span_records_duration_and_fields() {
        let _s = lock(&SERIAL);
        drain_spans();
        {
            let _e = ScopedEnable::new();
            let mut g = span!("work", "a" = 7);
            g.field("b", 9);
            std::hint::black_box(());
        }
        let spans = drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert_eq!(spans[0].field("a"), Some(7));
        assert_eq!(spans[0].field("b"), Some(9));
    }

    #[test]
    fn scoped_enable_restores_prior_state() {
        let _s = lock(&SERIAL);
        set_enabled(false);
        {
            let _e = ScopedEnable::new();
            assert!(enabled());
            {
                let _e2 = ScopedEnable::new();
                assert!(enabled());
            }
            assert!(enabled());
        }
        assert!(!enabled());
        drain_spans();
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
        let p50 = h.quantile(0.5);
        assert!((3..=127).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 65_536, "p99={p99}");
        assert!(p99 <= h.max());
        // degenerate cases
        assert_eq!(Histogram::new().quantile(0.5), 0);
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.99), 0);
    }

    #[test]
    fn registry_counts_gauges_and_snapshots() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_set("g", -4);
        r.gauge_max("hw", 5);
        r.gauge_max("hw", 2);
        r.observe("h", 1500);
        assert_eq!(r.counter("c"), 5);
        assert_eq!(r.gauge("g"), Some(-4));
        assert_eq!(r.gauge("hw"), Some(5));
        assert_eq!(r.histogram("h").unwrap().count(), 1);
        let json = r.snapshot_json();
        assert!(json.contains("\"c\": 5"), "{json}");
        assert!(json.contains("\"g\": -4"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        r.reset();
        assert_eq!(r.counter("c"), 0);
        assert!(r.histogram("h").is_none());
    }

    #[test]
    fn gauge_max_is_exact_under_concurrent_writers() {
        // Regression: the high-water update is a CAS loop, so N threads
        // racing to publish their own maxima must leave exactly the
        // global maximum behind — no lost update may shadow it. Values
        // are interleaved so every thread both wins and loses races.
        let r = MetricsRegistry::new();
        let threads = 8usize;
        let per_thread = 5_000i64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = &r;
                s.spawn(move || {
                    for i in 0..per_thread {
                        // thread t's sequence peaks at t's stripe of the
                        // global range; the overall max is written exactly
                        // once, by one thread, mid-stream
                        let v = i * threads as i64 + t as i64;
                        r.gauge_max("hw", v);
                        r.gauge_max("hw", v / 2); // stale re-publishes must lose
                    }
                });
            }
        });
        let want = (per_thread - 1) * threads as i64 + (threads as i64 - 1);
        assert_eq!(r.gauge("hw"), Some(want));
        // gauge_set still overwrites unconditionally
        r.gauge_set("hw", -1);
        assert_eq!(r.gauge("hw"), Some(-1));
        r.gauge_max("hw", 0);
        assert_eq!(r.gauge("hw"), Some(0));
    }

    #[test]
    fn guarded_free_functions_respect_the_flag() {
        let _s = lock(&SERIAL);
        set_enabled(false);
        global().reset();
        counter_add("off", 1);
        observe("off.h", 10);
        assert_eq!(global().counter("off"), 0);
        {
            let _e = ScopedEnable::new();
            counter_add("on", 1);
            gauge_max("on.g", 3);
            observe("on.h", 10);
        }
        assert_eq!(global().counter("on"), 1);
        assert_eq!(global().gauge("on.g"), Some(3));
        global().reset();
        drain_spans();
    }
}
