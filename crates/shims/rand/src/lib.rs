//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so instead of the real
//! `rand` we provide the small, deterministic surface `smv-datagen` needs:
//! a seedable xoshiro256++ generator behind the `StdRng` name, plus the
//! `SeedableRng` / `RngExt` traits with `random`, `random_bool`, and
//! `random_range`. Streams are stable across runs and platforms, which is
//! all the synthetic-workload generators require.

use std::ops::{Range, RangeInclusive};

/// Core source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator.
pub trait Random {
    /// A uniform sample.
    fn random(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Random for f64 {
    fn random(rng: &mut dyn FnMut() -> u64) -> f64 {
        // 53 high bits → uniform in [0, 1)
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u64 {
    fn random(rng: &mut dyn FnMut() -> u64) -> u64 {
        rng()
    }
}

impl Random for bool {
    fn random(rng: &mut dyn FnMut() -> u64) -> bool {
        rng() & 1 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy {
    /// Maps to an unsigned offset-from-minimum representation.
    fn to_offset(self) -> u128;
    /// Inverse of [`UniformInt::to_offset`].
    fn from_offset(off: u128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn to_offset(self) -> u128 {
                (self as $u as u128) ^ ((<$t>::MIN as $u) as u128)
            }
            fn from_offset(off: u128) -> $t {
                ((off as $u) ^ (<$t>::MIN as $u)) as $t
            }
        }
    )*};
}

uniform_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
             i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Sampling conveniences, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample of `T`.
    fn random<T: Random>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::random(&mut f)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let x: f64 = self.random();
        x < p
    }

    /// A uniform integer in `range` (`a..b` or `a..=b`). Panics on empty
    /// ranges.
    fn random_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, span) = range.offset_span();
        assert!(span > 0, "random_range called with an empty range");
        // rejection sampling over the widened space keeps the draw unbiased
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            if wide <= zone {
                return T::from_offset(lo + wide % span);
            }
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T: UniformInt> {
    /// `(offset of the low bound, number of admissible values)`.
    fn offset_span(&self) -> (u128, u128);
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn offset_span(&self) -> (u128, u128) {
        let lo = self.start.to_offset();
        let hi = self.end.to_offset();
        (lo, hi.saturating_sub(lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn offset_span(&self) -> (u128, u128) {
        let lo = self.start().to_offset();
        let hi = self.end().to_offset();
        (lo, (hi + 1).saturating_sub(lo))
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, and fully deterministic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 state expansion, the standard seeding procedure
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
        // singleton range
        for _ in 0..10 {
            assert_eq!(rng.random_range(4u8..5), 4);
        }
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
