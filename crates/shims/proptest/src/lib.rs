//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements
//! the subset of proptest our property tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_recursive`, range / tuple / `option::of` /
//! `collection::vec` strategies, and the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!` macros. Failing cases are reported
//! with their generated inputs' Debug where the caller formats them; there
//! is no shrinking — generation is seeded and deterministic, so a failure
//! reproduces by re-running the test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;
use std::rc::Rc;

pub use rand::RngExt;

/// The RNG driving generation.
pub type TestRng = StdRng;

/// A fresh, deterministically seeded generation RNG.
pub fn test_rng() -> TestRng {
    StdRng::seed_from_u64(0x5eed_cafe_f00d_0001)
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out.
    Reject(String),
    /// `prop_assert!` / `prop_assert_eq!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (assume failure).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive structures: `self` is the leaf case, `branch`
    /// produces one more level given a strategy for the level below. The
    /// `_desired_size` / `_expected_branch_size` tuning knobs of real
    /// proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.random_bool(0.7) {
                    deeper.generate(rng)
                } else {
                    leaf.generate(rng)
                }
            }));
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::UniformInt> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// `Option<T>` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
        OptionOf { inner }
    }

    struct OptionOf<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionOf<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// A `Vec` with a length uniform in `len` and `inner`-generated items.
    pub fn vec<S: Strategy>(inner: S, len: Range<usize>) -> impl Strategy<Value = Vec<S::Value>> {
        VecOf { inner, len }
    }

    struct VecOf<S> {
        inner: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecOf<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.start..self.len.end);
            (0..n).map(|_| self.inner.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng();
            let strategies = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(64).max(1024) {
                            panic!(
                                "proptest `{}`: too many rejected cases ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed after {accepted} cases: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
fn nested_strategy() -> impl Strategy<Value = String> {
    let leaf = (0u8..4).prop_map(|l| format!("{}", (b'a' + l) as char));
    leaf.prop_recursive(3, 24, 3, |inner| {
        (0u8..4, crate::collection::vec(inner, 1..4))
            .prop_map(|(l, kids)| format!("{}({})", (b'a' + l) as char, kids.join(" ")))
    })
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 2u8..9, y in -3i64..3) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-3..3).contains(&y));
        }

        #[test]
        fn assume_filters(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a < b);
            prop_assert!(a < b, "{a} vs {b}");
            prop_assert_ne!(a, b);
        }

        #[test]
        fn recursive_and_collections(s in super::nested_strategy()) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() < 4000, "runaway recursion: {}", s.len());
        }
    }

    #[test]
    fn map_and_option() {
        let mut rng = crate::test_rng();
        let s = (0u8..3, crate::option::of(0i64..2)).prop_map(|(a, b)| (a as i64, b));
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((0..3).contains(&a));
            assert!(b.is_none() || b == Some(0) || b == Some(1));
        }
    }
}
