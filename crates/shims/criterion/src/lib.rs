//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of Criterion's API our bench files use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — implemented as a
//! straightforward wall-clock harness: warm up once, run `sample_size`
//! timed samples, report min / mean / max per benchmark.
//!
//! Set `SMV_BENCH_ITERS` to override the per-sample iteration count
//! (default: auto-calibrated so a sample takes ≳1 ms).

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, Criterion's conventional display form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timing driver handed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, called `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One measured benchmark result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/benchmark` path.
    pub id: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Samples taken.
    pub samples: usize,
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.sample_size;
        self.c.run(full, sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; measurements print as they run).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into().id, 10, f);
        self
    }

    /// All measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        let iters = std::env::var("SMV_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        // calibration: find an iteration count where one sample takes ≥1ms
        let iters = iters.unwrap_or_else(|| {
            let mut n = 1u64;
            loop {
                let mut b = Bencher {
                    iters: n,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                if b.elapsed >= Duration::from_millis(1) || n >= 1 << 20 {
                    return n;
                }
                n *= 2;
            }
        });
        let mut samples = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters.max(1) as u32);
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{id:<52} mean {:>12} min {:>12} max {:>12} ({} samples × {iters} iters)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            samples.len(),
        );
        self.measurements.push(Measurement {
            id,
            mean,
            min,
            max,
            samples: samples.len(),
        });
    }
}

/// Human units, Criterion-style.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group-runner function, like Criterion's macro of the same
/// name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        std::env::set_var("SMV_BENCH_ITERS", "3");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 42), &42, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "g/noop");
        assert_eq!(c.measurements()[1].id, "g/param/42");
        std::env::remove_var("SMV_BENCH_ITERS");
    }
}
