//! The long-running query service.
//!
//! [`QueryService`] owns an [`EpochCatalog`], an explicitly sized
//! [`WorkerPool`] shared by ingest and queries, the three cache layers
//! of [`crate::cache`], an [`AdmissionScheduler`] and a
//! [`FeedbackStore`]. It is `Sync`: clients call [`QueryService::query`]
//! from any number of threads while maintenance runs through
//! [`QueryService::apply`] on another.
//!
//! A request flows pattern cache → snapshot → plan cache → scheduler →
//! result cache → execute, and every response reports which layers hit,
//! the epoch served, and the scheduling decision.
//!
//! **Coherence.** A cached result must be byte-identical to a fresh
//! execution against the current snapshot. Three mechanisms compose to
//! guarantee that:
//!
//! 1. results are keyed by *plan* fingerprint — equivalent plans may
//!    order rows differently, so a re-ranked plan misses rather than
//!    serving another plan's bytes;
//! 2. maintenance kills every entry whose read set it touched (the
//!    reverse index in [`crate::cache::ResultCache`]), so a surviving
//!    entry's extents are `Arc`-identical to the live ones and
//!    re-executing its plan would reproduce its bytes;
//! 3. an entry computed against a pre-maintenance snapshot can't be
//!    inserted *after* the kill sweep: mutators bump a mutation sequence
//!    before sweeping, and inserts re-check the sequence under the cache
//!    lock ([`crate::cache::ResultCache::insert_if`]).

use crate::cache::{PatternCache, PlanCache, PlanKey, RankedPlan, ResultCache, ResultKey};
use crate::scheduler::{AdmissionScheduler, SchedDecision, SchedMode};
use smv_algebra::{
    execute_profiled_with, plan_fingerprint, ExecError, ExecOpts, FeedbackCards, FeedbackStore,
    NestedRelation, ParHints, PlanEstimate, WorkerPool,
};
use smv_core::{rewrite_with_feedback, RewriteOpts};
use smv_pattern::PatternParseError;
use smv_views::{
    CatalogCards, CatalogEpoch, EpochCatalog, MaintenanceReport, RefreshPolicy, View, ViewStore,
};
use smv_xml::{Document, IdScheme, LiveError, UpdateBatch};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Everything a request can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// The query text does not parse.
    Parse(PatternParseError),
    /// The bounded search found no rewriting over the registered views.
    NoRewriting,
    /// The chosen plan failed to execute.
    Exec(ExecError),
    /// An update batch was rejected by the live document.
    Update(LiveError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse error: {e}"),
            ServeError::NoRewriting => f.write_str("no rewriting over the registered views"),
            ServeError::Exec(e) => write!(f, "execution error: {e}"),
            ServeError::Update(e) => write!(f, "update rejected: {e:?}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PatternParseError> for ServeError {
    fn from(e: PatternParseError) -> ServeError {
        ServeError::Parse(e)
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> ServeError {
        ServeError::Exec(e)
    }
}

impl From<LiveError> for ServeError {
    fn from(e: LiveError) -> ServeError {
        ServeError::Update(e)
    }
}

/// Service construction knobs. `..Default::default()` is a sensible
/// serving configuration; benchmarks flip the cache switches off to
/// measure what each layer buys.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker-pool size (`0` = the host's available parallelism). The
    /// one pool this creates executes queries *and* materializes views
    /// registered through [`QueryService::add_views`].
    pub threads: usize,
    /// [`ExecOpts::min_par_rows`] for executed plans, and the
    /// scheduler's fan-out floor.
    pub min_par_rows: usize,
    /// Pattern-cache capacity (distinct spellings / canonical forms).
    pub pattern_cache_capacity: usize,
    /// Plan-cache capacity (rankings).
    pub plan_cache_capacity: usize,
    /// Result-cache capacity (materialized answers).
    pub result_cache_capacity: usize,
    /// Master switch for the plan cache (layer 2).
    pub plan_cache: bool,
    /// Master switch for the result cache (layer 3).
    pub result_cache: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            threads: 0,
            min_par_rows: ExecOpts::default().min_par_rows,
            pattern_cache_capacity: 1024,
            plan_cache_capacity: 1024,
            result_cache_capacity: 256,
            plan_cache: true,
            result_cache: true,
        }
    }
}

/// One served answer.
pub struct QueryResponse {
    /// The result rows (shared with the cache — cheap to clone).
    pub rows: Arc<NestedRelation>,
    /// The epoch snapshot the answer is consistent with — clients that
    /// need follow-up reads at the same version keep it; coherence tests
    /// re-execute against it.
    pub snapshot: Arc<CatalogEpoch>,
    /// The epoch the answer is consistent with.
    pub epoch: u64,
    /// Fingerprint of the executed (or cached) plan.
    pub plan_fingerprint: u64,
    /// The plan's estimate at ranking time.
    pub est: PlanEstimate,
    /// Equivalent rewritings ranked when the plan was chosen.
    pub candidates: usize,
    /// Layer 1 hit: the query text (or its canonical form) was already
    /// parsed.
    pub pattern_cache_hit: bool,
    /// Layer 2 hit: the ranking was reused.
    pub plan_cache_hit: bool,
    /// Layer 3 hit: the answer was served without executing.
    pub result_cache_hit: bool,
    /// The admission scheduler's verdict for this request.
    pub scheduling: SchedDecision,
    /// Wall-clock from request entry to response.
    pub latency_ns: u64,
}

/// A point-in-time snapshot of the service's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests served (successful responses).
    pub queries: u64,
    /// Layer 1 (pattern) hits.
    pub pattern_hits: u64,
    /// Layer 2 (plan) hits.
    pub plan_hits: u64,
    /// Layer 3 (result) hits.
    pub result_hits: u64,
    /// Requests scheduled inter-query (`threads: 1`).
    pub sched_inter: u64,
    /// Requests scheduled intra-query (morsel fan-out).
    pub sched_intra: u64,
    /// Result-cache entries killed by maintenance.
    pub results_invalidated: u64,
    /// Update batches applied.
    pub batches_applied: u64,
}

struct Counters {
    queries: AtomicU64,
    pattern_hits: AtomicU64,
    plan_hits: AtomicU64,
    result_hits: AtomicU64,
    sched_inter: AtomicU64,
    sched_intra: AtomicU64,
    results_invalidated: AtomicU64,
    batches_applied: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            queries: AtomicU64::new(0),
            pattern_hits: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            sched_inter: AtomicU64::new(0),
            sched_intra: AtomicU64::new(0),
            results_invalidated: AtomicU64::new(0),
            batches_applied: AtomicU64::new(0),
        }
    }
}

/// The multi-client query service. See the module docs for the request
/// flow and the coherence argument.
pub struct QueryService {
    catalog: RwLock<EpochCatalog>,
    pool: Arc<WorkerPool>,
    patterns: PatternCache,
    plans: PlanCache,
    results: ResultCache,
    feedback: Mutex<FeedbackStore>,
    scheduler: AdmissionScheduler,
    rewrite_opts: RewriteOpts,
    config: ServiceConfig,
    /// In-flight requests, counted around [`Self::query`].
    active: AtomicUsize,
    /// Bumped by every mutation *before* its cache sweep; result-cache
    /// inserts re-check it under the cache lock (coherence point 3).
    mutation_seq: AtomicU64,
    counters: Counters,
}

struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl QueryService {
    /// A service over `doc`, constructing its own pool of
    /// `config.threads` (the [`WorkerPool::global`] size is decided once
    /// per process — a service decides for itself).
    pub fn new(doc: Document, scheme: IdScheme, config: ServiceConfig) -> QueryService {
        let pool = Arc::new(WorkerPool::new(config.threads));
        QueryService::with_pool(doc, scheme, config, pool)
    }

    /// A service sharing an existing pool — several services (or a
    /// service and ad-hoc executors) drawing from one set of workers.
    pub fn with_pool(
        doc: Document,
        scheme: IdScheme,
        config: ServiceConfig,
        pool: Arc<WorkerPool>,
    ) -> QueryService {
        let rewrite_opts = RewriteOpts {
            rank_by_cost: true,
            ..RewriteOpts::default()
        };
        QueryService {
            catalog: RwLock::new(EpochCatalog::new(doc, scheme)),
            patterns: PatternCache::new(config.pattern_cache_capacity),
            plans: PlanCache::new(config.plan_cache_capacity),
            results: ResultCache::new(config.result_cache_capacity),
            feedback: Mutex::new(FeedbackStore::new()),
            scheduler: AdmissionScheduler::new(config.min_par_rows),
            rewrite_opts,
            pool,
            config,
            active: AtomicUsize::new(0),
            mutation_seq: AtomicU64::new(0),
            counters: Counters::new(),
        }
    }

    /// The pool queries and ingest share.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.catalog.read().expect("catalog lock").epoch()
    }

    /// The current epoch snapshot — what a query entering now would see.
    pub fn snapshot(&self) -> Arc<CatalogEpoch> {
        self.catalog.read().expect("catalog lock").snapshot()
    }

    /// Runs `f` under the catalog read lock — update drivers use this to
    /// build batches against the live document's IDs.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&EpochCatalog) -> R) -> R {
        f(&self.catalog.read().expect("catalog lock"))
    }

    /// Registers one view (materialized inline; see [`Self::add_views`]
    /// for the pool-parallel bulk path).
    pub fn add_view(&self, view: View, policy: RefreshPolicy) {
        let mut cat = self.catalog.write().expect("catalog lock");
        cat.add_view(view, policy);
        self.mutation_seq.fetch_add(1, Ordering::AcqRel);
        let epoch = cat.epoch();
        drop(cat);
        self.plans.purge_below(epoch);
    }

    /// Bulk-registers views, materializing extents in parallel on the
    /// service's own pool ([`EpochCatalog::add_views_on`]) and
    /// publishing one epoch — ingest and queries share workers, so one
    /// `threads` knob governs both.
    pub fn add_views(&self, views: Vec<View>, policy: RefreshPolicy) {
        let mut cat = self.catalog.write().expect("catalog lock");
        cat.add_views_on(views, policy, &self.pool);
        self.mutation_seq.fetch_add(1, Ordering::AcqRel);
        let epoch = cat.epoch();
        drop(cat);
        self.plans.purge_below(epoch);
    }

    /// Applies an update batch and sweeps every cache entry the
    /// maintenance delta touched: result-cache entries reading a
    /// refreshed or newly stale view die, stale-epoch plan rankings are
    /// purged, and feedback memos for touched views are invalidated.
    /// Untouched result entries survive — their extents are untouched
    /// `Arc`s in the new epoch.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<MaintenanceReport, ServeError> {
        let mut cat = self.catalog.write().expect("catalog lock");
        let report = cat.apply(batch)?;
        // bump before sweeping (under the write lock): an in-flight
        // query's insert either lands before the sweep (and is swept if
        // touched) or sees the new sequence and is refused
        self.mutation_seq.fetch_add(1, Ordering::AcqRel);
        drop(cat);
        let touched: Vec<String> = report
            .refreshed
            .iter()
            .chain(report.deferred_stale.iter())
            .cloned()
            .collect();
        let killed = self.results.invalidate_views(&touched);
        self.plans.purge_below(report.epoch);
        self.feedback
            .lock()
            .expect("feedback lock")
            .invalidate_fingerprints_touching(&touched);
        self.counters
            .results_invalidated
            .fetch_add(killed as u64, Ordering::Relaxed);
        self.counters
            .batches_applied
            .fetch_add(1, Ordering::Relaxed);
        smv_obs::counter_add("serve.batches_applied", 1);
        smv_obs::counter_add("serve.results_invalidated", killed as u64);
        Ok(report)
    }

    /// Refreshes a deferred view ([`EpochCatalog::refresh`]) and sweeps
    /// cache entries that read it (its extent may have been rebuilt).
    pub fn refresh(&self, name: &str) -> bool {
        let mut cat = self.catalog.write().expect("catalog lock");
        if !cat.refresh(name) {
            return false;
        }
        self.mutation_seq.fetch_add(1, Ordering::AcqRel);
        let epoch = cat.epoch();
        drop(cat);
        self.results.invalidate_views(&[name]);
        self.plans.purge_below(epoch);
        self.feedback
            .lock()
            .expect("feedback lock")
            .invalidate_fingerprints_touching(&[name]);
        true
    }

    /// Serves one query. See the module docs for the layer flow; the
    /// response says which layers hit and how the request was scheduled.
    pub fn query(&self, text: &str) -> Result<QueryResponse, ServeError> {
        let t0 = Instant::now();
        let active = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        let _guard = ActiveGuard(&self.active);
        smv_obs::gauge_max("serve.active_clients_max", active as i64);

        // the admission sequence this request races against mutators on
        let seq = self.mutation_seq.load(Ordering::Acquire);

        // layer 1: pattern
        let (pat, pattern_cache_hit) = self.patterns.get_or_parse(text)?;
        if pattern_cache_hit {
            self.counters.pattern_hits.fetch_add(1, Ordering::Relaxed);
            smv_obs::counter_add("serve.pattern_hits", 1);
        }

        let snap = self.snapshot();
        let epoch = snap.epoch();

        // layer 2: plan
        let plan_key = PlanKey {
            canon_fp: pat.canon_fp,
            geometry: snap.summary().geometry_token(),
            epoch,
        };
        let (ranked, plan_cache_hit) = match self
            .config
            .plan_cache
            .then(|| self.plans.get(&plan_key))
            .flatten()
        {
            Some(r) => (r, true),
            None => {
                let r = self.rank(&pat.pattern, &snap)?;
                if self.config.plan_cache {
                    self.plans.insert(plan_key, Arc::clone(&r));
                }
                (r, false)
            }
        };
        if plan_cache_hit {
            self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
            smv_obs::counter_add("serve.plan_hits", 1);
        }

        // scheduler: measured cardinality when feedback has seen this
        // plan, the ranking-time estimate otherwise
        let expected_rows = {
            let fb = self.feedback.lock().expect("feedback lock");
            fb.measured_rows(&ranked.plan).unwrap_or(ranked.est.rows)
        };
        let scheduling = self.scheduler.decide(active, &self.pool, expected_rows);
        match scheduling.mode {
            SchedMode::Inter => {
                self.counters.sched_inter.fetch_add(1, Ordering::Relaxed);
                smv_obs::counter_add("serve.sched_inter", 1);
            }
            SchedMode::Intra => {
                self.counters.sched_intra.fetch_add(1, Ordering::Relaxed);
                smv_obs::counter_add("serve.sched_intra", 1);
            }
        }

        // layer 3: result
        let result_key = ResultKey {
            canon_fp: pat.canon_fp,
            plan_fp: ranked.fingerprint,
        };
        if self.config.result_cache {
            if let Some(rows) = self.results.get(&result_key) {
                self.counters.result_hits.fetch_add(1, Ordering::Relaxed);
                smv_obs::counter_add("serve.result_hits", 1);
                return Ok(self.respond(
                    rows,
                    snap,
                    &ranked,
                    pattern_cache_hit,
                    plan_cache_hit,
                    true,
                    scheduling,
                    t0,
                ));
            }
        }

        // execute on the shared pool at the granted parallelism
        let mut exec_opts = ExecOpts {
            threads: scheduling.threads,
            min_par_rows: self.config.min_par_rows,
            pool: (scheduling.threads != 1).then(|| Arc::clone(&self.pool)),
            par_hints: None,
        };
        if scheduling.threads != 1 {
            let fb = self.feedback.lock().expect("feedback lock");
            if !fb.is_empty() {
                let hints = ParHints::for_plan(&ranked.plan, &fb);
                if !hints.is_empty() {
                    exec_opts.par_hints = Some(Arc::new(hints));
                }
            }
        }
        let (rel, profile) = execute_profiled_with(&ranked.plan, &*snap, &exec_opts)?;
        self.feedback
            .lock()
            .expect("feedback lock")
            .ingest(&ranked.plan, &profile);
        let rows = Arc::new(rel);
        if self.config.result_cache {
            self.results.insert_if(
                result_key,
                Arc::clone(&rows),
                ranked.plan.views_used(),
                &|| self.mutation_seq.load(Ordering::Acquire) == seq,
            );
        }
        Ok(self.respond(
            rows,
            snap,
            &ranked,
            pattern_cache_hit,
            plan_cache_hit,
            false,
            scheduling,
            t0,
        ))
    }

    /// Ranks a query's rewritings against a snapshot under the current
    /// feedback — the plan-cache miss path.
    fn rank(
        &self,
        q: &smv_pattern::Pattern,
        snap: &CatalogEpoch,
    ) -> Result<Arc<RankedPlan>, ServeError> {
        let fb = self.feedback.lock().expect("feedback lock");
        let cards = CatalogCards::over(snap, snap.summary());
        let fb_cards = FeedbackCards::new(&cards, &fb);
        let ranked = rewrite_with_feedback(
            q,
            snap.views(),
            snap.summary(),
            &self.rewrite_opts,
            &fb_cards,
            &fb,
        );
        let candidates = ranked.rewritings.len();
        let best = ranked
            .rewritings
            .into_iter()
            .next()
            .ok_or(ServeError::NoRewriting)?;
        Ok(Arc::new(RankedPlan {
            fingerprint: plan_fingerprint(&best.plan),
            plan: best.plan,
            est: best.est,
            candidates,
        }))
    }

    #[allow(clippy::too_many_arguments)]
    fn respond(
        &self,
        rows: Arc<NestedRelation>,
        snapshot: Arc<CatalogEpoch>,
        ranked: &RankedPlan,
        pattern_cache_hit: bool,
        plan_cache_hit: bool,
        result_cache_hit: bool,
        scheduling: SchedDecision,
        t0: Instant,
    ) -> QueryResponse {
        let latency_ns = t0.elapsed().as_nanos() as u64;
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        smv_obs::counter_add("serve.queries", 1);
        smv_obs::observe("serve.latency_ns", latency_ns);
        smv_obs::observe("serve.result_rows", rows.len() as u64);
        QueryResponse {
            rows,
            epoch: snapshot.epoch(),
            snapshot,
            plan_fingerprint: ranked.fingerprint,
            est: ranked.est,
            candidates: ranked.candidates,
            pattern_cache_hit,
            plan_cache_hit,
            result_cache_hit,
            scheduling,
            latency_ns,
        }
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            pattern_hits: self.counters.pattern_hits.load(Ordering::Relaxed),
            plan_hits: self.counters.plan_hits.load(Ordering::Relaxed),
            result_hits: self.counters.result_hits.load(Ordering::Relaxed),
            sched_inter: self.counters.sched_inter.load(Ordering::Relaxed),
            sched_intra: self.counters.sched_intra.load(Ordering::Relaxed),
            results_invalidated: self.counters.results_invalidated.load(Ordering::Relaxed),
            batches_applied: self.counters.batches_applied.load(Ordering::Relaxed),
        }
    }

    /// Number of live result-cache entries (benchmark/test telemetry).
    pub fn cached_results(&self) -> usize {
        self.results.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;
    use smv_xml::StructId;

    fn service(threads: usize) -> QueryService {
        let doc = Document::from_parens(r#"r(a(b="1" b="2" c(b="3")) a(b="4") x(y="9"))"#);
        let svc = QueryService::new(
            doc,
            IdScheme::OrdPath,
            ServiceConfig {
                threads,
                ..ServiceConfig::default()
            },
        );
        svc.add_views(
            vec![
                View::new(
                    "vb",
                    parse_pattern("r(//b{id,v})").unwrap(),
                    IdScheme::OrdPath,
                ),
                View::new(
                    "vy",
                    parse_pattern("r(/x{id}(?/y{id,v}))").unwrap(),
                    IdScheme::OrdPath,
                ),
            ],
            RefreshPolicy::Eager,
        );
        svc
    }

    fn sid(svc: &QueryService, label: &str, nth: usize) -> StructId {
        let cat = svc.catalog.read().unwrap();
        let doc = cat.live().doc();
        let n = doc
            .iter()
            .filter(|&n| doc.label(n).as_str() == label)
            .nth(nth)
            .expect("labeled node");
        cat.live().ids().id(n).clone()
    }

    #[test]
    fn layers_hit_in_order_and_results_match() {
        let svc = service(1);
        let q = "r(//b{id,v})";
        let first = svc.query(q).unwrap();
        assert!(!first.pattern_cache_hit && !first.plan_cache_hit && !first.result_cache_hit);
        assert_eq!(first.rows.len(), 4);
        let second = svc.query(q).unwrap();
        assert!(second.pattern_cache_hit && second.plan_cache_hit && second.result_cache_hit);
        assert_eq!(second.rows.rows, first.rows.rows, "cached bytes identical");
        // a different spelling shares every layer below the text map
        let respelled = svc.query("r ( // b { id , v } )").unwrap();
        assert!(respelled.result_cache_hit);
        assert_eq!(respelled.plan_fingerprint, first.plan_fingerprint);
        let stats = svc.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.result_hits, 2);
    }

    #[test]
    fn maintenance_kills_touched_entries_and_spares_the_rest() {
        let svc = service(1);
        let hot = svc.query("r(//b{id,v})").unwrap();
        let cold = svc.query("r(/x{id}(?/y{id,v}))").unwrap();
        assert_eq!(svc.cached_results(), 2);
        // delete a b-subtree: vb refreshed; vy is Rebuild-class so it
        // refreshes too — target the check at epoch/plan keys instead
        let mut batch = UpdateBatch::new();
        batch.delete(sid(&svc, "c", 0));
        let report = svc.apply(&batch).unwrap();
        assert!(report.refreshed.iter().any(|v| v == "vb"));
        let after = svc.query("r(//b{id,v})").unwrap();
        assert!(!after.result_cache_hit, "touched entry was killed");
        assert_eq!(after.rows.len(), hot.rows.len() - 1);
        assert_eq!(after.epoch, hot.epoch + 1);
        assert!(!cold.rows.is_empty());
    }

    #[test]
    fn untouched_entries_survive_epoch_bumps() {
        let svc = service(1);
        svc.query("r(/x{id}(?/y{id,v}))").unwrap();
        // vy is Rebuild-class: every apply refreshes it. Register a
        // second document region's view and update only the other side.
        let before = svc.query("r(//b{id,v})").unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(sid(&svc, "x", 0), Document::from_parens(r#"y="10""#));
        let report = svc.apply(&batch).unwrap();
        // vb is Incremental and the batch never touches b-rows — but the
        // epoch still advanced
        assert!(report.epoch > before.epoch);
        if report.refreshed.iter().all(|v| v != "vb") {
            let again = svc.query("r(//b{id,v})").unwrap();
            assert!(
                again.result_cache_hit,
                "untouched entry survives the epoch bump"
            );
            assert_eq!(again.rows.rows, before.rows.rows);
            assert_eq!(again.epoch, report.epoch, "served as current");
        }
    }

    #[test]
    fn unknown_patterns_and_unrewritable_queries_error() {
        let svc = service(1);
        assert!(matches!(svc.query("r(//b{"), Err(ServeError::Parse(_))));
        assert!(matches!(
            svc.query("r(//nosuch{id,c})"),
            Err(ServeError::NoRewriting)
        ));
    }

    #[test]
    fn pool_is_shared_and_sized_explicitly() {
        let svc = service(3);
        assert_eq!(svc.pool().size(), 3);
        let r = svc.query("r(//b{id,v})").unwrap();
        assert_eq!(r.rows.len(), 4);
        // an explicitly shared pool serves a second service too
        let pool = Arc::clone(svc.pool());
        let doc = Document::from_parens(r#"r(a(b="7"))"#);
        let other = QueryService::with_pool(
            doc,
            IdScheme::OrdPath,
            ServiceConfig::default(),
            Arc::clone(&pool),
        );
        other.add_views(
            vec![View::new(
                "vb",
                parse_pattern("r(//b{id,v})").unwrap(),
                IdScheme::OrdPath,
            )],
            RefreshPolicy::Eager,
        );
        assert!(Arc::ptr_eq(other.pool(), &pool));
        assert_eq!(other.query("r(//b{id,v})").unwrap().rows.len(), 1);
    }
}
