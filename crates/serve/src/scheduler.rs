//! Admission scheduling: inter- vs intra-query parallelism per request.
//!
//! One worker pool serves every client, so parallelism is a budget to
//! split, not a dial to max out. Fanning a query into morsels helps when
//! workers would otherwise idle; under heavy concurrency the same
//! fan-out just queues behind other clients' morsels and pays the
//! scheduling overhead twice. The policy here mirrors the morsel-driven
//! literature's rule of thumb: **one query per core when cores are
//! contended, morsel fan-out when they are not.**
//!
//! The decision reads three live signals:
//!
//! * the number of in-flight requests (the service's active-client
//!   gauge),
//! * the pool's injector [`WorkerPool::queue_depth`] — a backlog means
//!   workers are already saturated regardless of client count,
//! * the plan's expected output rows (execution feedback when the
//!   [`smv_algebra::FeedbackStore`] has measured this plan, the static
//!   estimate otherwise) — tiny results never repay fan-out, the same
//!   economics as [`smv_algebra::ExecOpts::min_par_rows`].

use smv_xml::par::WorkerPool;

/// Which kind of parallelism a request was granted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedMode {
    /// Inter-query: run this request sequentially (`threads: 1`, the
    /// pool is never touched) and let concurrent requests be the
    /// parallelism.
    Inter,
    /// Intra-query: fan this request's operators into morsels on the
    /// shared pool.
    Intra,
}

impl SchedMode {
    /// Stable lowercase name (used in reports and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            SchedMode::Inter => "inter",
            SchedMode::Intra => "intra",
        }
    }
}

/// The scheduler's verdict for one request.
#[derive(Clone, Copy, Debug)]
pub struct SchedDecision {
    /// Inter- or intra-query parallelism.
    pub mode: SchedMode,
    /// The `ExecOpts::threads` value to execute with (`1` for
    /// [`SchedMode::Inter`]).
    pub threads: usize,
}

/// Per-request admission policy (see the module docs for the signals).
pub struct AdmissionScheduler {
    min_par_rows: usize,
}

impl AdmissionScheduler {
    /// A scheduler that refuses fan-out for plans expected to produce
    /// fewer than `min_par_rows` rows.
    pub fn new(min_par_rows: usize) -> AdmissionScheduler {
        AdmissionScheduler { min_par_rows }
    }

    /// Decides the parallelism for one request. `active` counts this
    /// request itself; `expected_rows` is the plan's expected output
    /// cardinality (measured if available, estimated otherwise).
    pub fn decide(&self, active: usize, pool: &WorkerPool, expected_rows: f64) -> SchedDecision {
        let size = pool.size().max(1);
        let active = active.max(1);
        let inter = SchedDecision {
            mode: SchedMode::Inter,
            threads: 1,
        };
        if size <= 1 {
            return inter; // nothing to fan out onto
        }
        if active >= size {
            return inter; // contended: one query per core
        }
        if pool.queue_depth() >= size {
            return inter; // backlog: workers already saturated
        }
        if expected_rows < self.min_par_rows as f64 {
            return inter; // tiny result: fan-out never repays itself
        }
        // Uncontended: split the pool evenly among the live requests.
        SchedDecision {
            mode: SchedMode::Intra,
            threads: (size / active).max(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_picks_inter_under_contention_and_intra_when_idle() {
        let pool = WorkerPool::new(4);
        let sched = AdmissionScheduler::new(64);

        let idle = sched.decide(1, &pool, 10_000.0);
        assert_eq!(idle.mode, SchedMode::Intra);
        assert_eq!(idle.threads, 4, "sole client gets the whole pool");

        let shared = sched.decide(2, &pool, 10_000.0);
        assert_eq!(shared.mode, SchedMode::Intra);
        assert_eq!(shared.threads, 2, "two clients split the pool");

        let contended = sched.decide(4, &pool, 10_000.0);
        assert_eq!(contended.mode, SchedMode::Inter);
        assert_eq!(contended.threads, 1);

        let oversubscribed = sched.decide(100, &pool, 10_000.0);
        assert_eq!(oversubscribed.mode, SchedMode::Inter);

        let tiny = sched.decide(1, &pool, 8.0);
        assert_eq!(tiny.mode, SchedMode::Inter, "small results stay sequential");

        let solo = WorkerPool::new(1);
        assert_eq!(
            sched.decide(1, &solo, 10_000.0).mode,
            SchedMode::Inter,
            "a size-1 pool has nothing to fan out onto"
        );
    }
}
