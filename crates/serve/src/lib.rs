//! # smv-serve — the multi-client query service
//!
//! The paper's premise is that materialization pays when structural work
//! recurs; PR 2–8 exploited recurrence *within* one query. This crate
//! exploits recurrence *across* a workload: a long-running
//! [`QueryService`] holds [`smv_views::EpochCatalog`] snapshots, serves
//! concurrent clients on one explicitly sized
//! [`smv_xml::par::WorkerPool`], and caches at three layers —
//!
//! 1. a **pattern cache** keyed by the query text and shared across
//!    spellings via [`smv_pattern::canonical_form`] (parse once),
//! 2. a **plan cache** keyed by canonical-form fingerprint ×
//!    [`smv_summary::Summary::geometry_token`] × epoch (rank once per
//!    epoch), and
//! 3. a **result cache** for hot queries, invalidated by maintenance
//!    deltas: each entry is reverse-indexed by the views it read, an
//!    [`smv_views::EpochCatalog::apply`] kills exactly the touched
//!    entries, and untouched entries survive epoch bumps.
//!
//! An [`AdmissionScheduler`] picks inter- vs intra-query parallelism per
//! request from the live client count, the pool's queue depth and the
//! plan's expected cardinality.

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod cache;
pub mod scheduler;
pub mod service;

pub use cache::{text_fingerprint, CachedPattern, PatternCache, PlanCache, ResultCache};
pub use scheduler::{AdmissionScheduler, SchedDecision, SchedMode};
pub use service::{QueryResponse, QueryService, ServeError, ServiceConfig, ServiceStats};
