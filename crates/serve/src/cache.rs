//! The service's three cache layers.
//!
//! Each layer is an independently locked, capacity-bounded map — the
//! service composes them per request, and nothing here knows about
//! epochs beyond what its keys encode:
//!
//! * [`PatternCache`] — query text → parsed pattern, with spellings that
//!   render to the same canonical form sharing one entry;
//! * [`PlanCache`] — keyed by canonical-form fingerprint × summary
//!   geometry token × epoch, so an entry can never outlive the statistics
//!   and view set it was ranked against;
//! * [`ResultCache`] — keyed by canonical-form fingerprint × plan
//!   fingerprint, with a view → keys reverse index (the
//!   `FeedbackStore::invalidate_fingerprints_touching` idea applied to
//!   rows): maintenance kills exactly the entries whose read set was
//!   touched, and untouched entries keep serving across epoch bumps —
//!   their extents are `Arc`-identical to the live ones, so the cached
//!   bytes equal a fresh execution.
//!
//! Eviction is insertion-order (FIFO) everywhere: the service's hot set
//! is refreshed by re-insertion after invalidation, and FIFO avoids
//! per-hit bookkeeping on the fast path.

use smv_algebra::{NestedRelation, Plan, PlanEstimate};
use smv_pattern::{canonical_form, parse_pattern, Pattern, PatternParseError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// FNV-1a over a byte string — the same hash family as
/// [`smv_algebra::plan_fingerprint`], applied to canonical pattern text.
pub fn text_fingerprint(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A parsed, canonicalized query pattern — what the pattern cache hands
/// to the planning layers.
pub struct CachedPattern {
    /// The parsed pattern.
    pub pattern: Pattern,
    /// Its canonical form ([`smv_pattern::canonical_form`]).
    pub canon: String,
    /// [`text_fingerprint`] of the canonical form — the key the plan and
    /// result caches build on.
    pub canon_fp: u64,
}

struct PatternCacheInner {
    by_text: HashMap<String, Arc<CachedPattern>>,
    by_canon: HashMap<String, Arc<CachedPattern>>,
    text_order: VecDeque<String>,
    canon_order: VecDeque<String>,
}

/// Layer 1: query text → parsed pattern. Two spellings with the same
/// canonical form (whitespace, a redundant explicit `ret`) share one
/// [`CachedPattern`].
pub struct PatternCache {
    inner: Mutex<PatternCacheInner>,
    capacity: usize,
}

impl PatternCache {
    /// An empty cache evicting (FIFO) beyond `capacity` entries.
    pub fn new(capacity: usize) -> PatternCache {
        PatternCache {
            inner: Mutex::new(PatternCacheInner {
                by_text: HashMap::new(),
                by_canon: HashMap::new(),
                text_order: VecDeque::new(),
                canon_order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Resolves `text` to a parsed pattern, parsing at most once per
    /// spelling. Returns the entry and whether it was a hit.
    pub fn get_or_parse(
        &self,
        text: &str,
    ) -> Result<(Arc<CachedPattern>, bool), PatternParseError> {
        {
            let inner = self.inner.lock().expect("pattern cache lock");
            if let Some(e) = inner.by_text.get(text) {
                return Ok((Arc::clone(e), true));
            }
        }
        let pattern = parse_pattern(text)?;
        let canon = canonical_form(&pattern);
        let mut inner = self.inner.lock().expect("pattern cache lock");
        // share the entry of an equal-canonical-form spelling seen before
        let entry = match inner.by_canon.get(&canon) {
            Some(e) => Arc::clone(e),
            None => {
                let e = Arc::new(CachedPattern {
                    canon_fp: text_fingerprint(&canon),
                    canon: canon.clone(),
                    pattern,
                });
                if inner.by_canon.len() >= self.capacity {
                    if let Some(old) = inner.canon_order.pop_front() {
                        inner.by_canon.remove(&old);
                    }
                }
                inner.by_canon.insert(canon.clone(), Arc::clone(&e));
                inner.canon_order.push_back(canon);
                e
            }
        };
        if inner.by_text.len() >= self.capacity {
            if let Some(old) = inner.text_order.pop_front() {
                inner.by_text.remove(&old);
            }
        }
        inner.by_text.insert(text.to_string(), Arc::clone(&entry));
        inner.text_order.push_back(text.to_string());
        Ok((entry, false))
    }

    /// Number of distinct spellings cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("pattern cache lock").by_text.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The plan-cache key: which canonical query, ranked against which
/// summary geometry, at which epoch. The epoch component makes every
/// entry stale the moment stats or views change — `apply`, `refresh` and
/// view registration all publish a new epoch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PlanKey {
    /// [`text_fingerprint`] of the pattern's canonical form.
    pub canon_fp: u64,
    /// [`smv_summary::Summary::geometry_token`] of the ranked-against
    /// summary snapshot.
    pub geometry: (u64, u64),
    /// The epoch the ranking saw.
    pub epoch: u64,
}

/// A ranked rewriting, ready to execute.
pub struct RankedPlan {
    /// The cheapest plan found.
    pub plan: Plan,
    /// [`smv_algebra::plan_fingerprint`] of [`Self::plan`].
    pub fingerprint: u64,
    /// Its estimate at ranking time.
    pub est: PlanEstimate,
    /// How many equivalent rewritings were ranked.
    pub candidates: usize,
}

struct PlanCacheInner {
    map: HashMap<PlanKey, Arc<RankedPlan>>,
    order: VecDeque<PlanKey>,
}

/// Layer 2: ranked rewritings, reused until stats or views change.
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    capacity: usize,
}

impl PlanCache {
    /// An empty cache evicting (FIFO) beyond `capacity` entries.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(PlanCacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// The cached ranking for `key`, if present.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<RankedPlan>> {
        self.inner
            .lock()
            .expect("plan cache lock")
            .map
            .get(key)
            .map(Arc::clone)
    }

    /// Caches a ranking.
    pub fn insert(&self, key: PlanKey, plan: Arc<RankedPlan>) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(old) => {
                    inner.map.remove(&old);
                }
                None => break,
            }
        }
        if inner.map.insert(key, plan).is_none() {
            inner.order.push_back(key);
        }
    }

    /// Drops every entry ranked before `epoch` (their key can never be
    /// looked up again — lookups always use the current epoch). Returns
    /// how many entries died.
    pub fn purge_below(&self, epoch: u64) -> usize {
        let mut inner = self.inner.lock().expect("plan cache lock");
        let before = inner.map.len();
        inner.map.retain(|k, _| k.epoch >= epoch);
        let map = std::mem::take(&mut inner.map);
        inner.order.retain(|k| map.contains_key(k));
        inner.map = map;
        before - inner.map.len()
    }

    /// Number of cached rankings.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache lock").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The result-cache key. The *plan* fingerprint is part of the key: a
/// cached row set is the deterministic output of one plan over extents
/// that invalidation guarantees unchanged — if re-ranking after an epoch
/// bump picks a different plan, the key misses and the query recomputes
/// (row order may differ between equivalent plans).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResultKey {
    /// [`text_fingerprint`] of the pattern's canonical form.
    pub canon_fp: u64,
    /// [`smv_algebra::plan_fingerprint`] of the executed plan.
    pub plan_fp: u64,
}

struct ResultEntry {
    rows: Arc<NestedRelation>,
    reads: Vec<String>,
}

struct ResultCacheInner {
    map: HashMap<ResultKey, ResultEntry>,
    by_view: HashMap<String, HashSet<ResultKey>>,
    order: VecDeque<ResultKey>,
}

/// Layer 3: materialized answers of hot queries, killed by maintenance
/// deltas through a view → keys reverse index.
pub struct ResultCache {
    inner: Mutex<ResultCacheInner>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache evicting (FIFO) beyond `capacity` entries.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(ResultCacheInner {
                map: HashMap::new(),
                by_view: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// The cached rows for `key`, if alive.
    pub fn get(&self, key: &ResultKey) -> Option<Arc<NestedRelation>> {
        self.inner
            .lock()
            .expect("result cache lock")
            .map
            .get(key)
            .map(|e| Arc::clone(&e.rows))
    }

    /// Caches `rows` under `key` with its read set, but only if `admit`
    /// still holds under the cache lock. The service passes a
    /// mutation-sequence check: a result computed against a snapshot
    /// that maintenance has since invalidated must not slip in *after*
    /// the invalidation sweep — evaluating the check and inserting as
    /// one critical section closes that race. Returns whether the entry
    /// was admitted.
    pub fn insert_if(
        &self,
        key: ResultKey,
        rows: Arc<NestedRelation>,
        reads: Vec<String>,
        admit: &dyn Fn() -> bool,
    ) -> bool {
        let mut inner = self.inner.lock().expect("result cache lock");
        if !admit() {
            return false;
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(old) => {
                    Self::remove_locked(&mut inner, &old);
                }
                None => break,
            }
        }
        if let Some(prev) = inner.map.insert(key, ResultEntry { rows, reads }) {
            for v in prev.reads {
                if let Some(set) = inner.by_view.get_mut(&v) {
                    set.remove(&key);
                }
            }
        } else {
            inner.order.push_back(key);
        }
        let reads: Vec<String> = inner.map[&key].reads.clone();
        for v in reads {
            inner.by_view.entry(v).or_default().insert(key);
        }
        true
    }

    fn remove_locked(inner: &mut ResultCacheInner, key: &ResultKey) {
        if let Some(e) = inner.map.remove(key) {
            for v in e.reads {
                if let Some(set) = inner.by_view.get_mut(&v) {
                    set.remove(key);
                    if set.is_empty() {
                        inner.by_view.remove(&v);
                    }
                }
            }
        }
    }

    /// Kills every entry whose read set meets `views` — the maintenance
    /// delta → cache invalidation edge. Returns how many entries died.
    pub fn invalidate_views<S: AsRef<str>>(&self, views: &[S]) -> usize {
        let mut inner = self.inner.lock().expect("result cache lock");
        let mut doomed: HashSet<ResultKey> = HashSet::new();
        for v in views {
            if let Some(set) = inner.by_view.get(v.as_ref()) {
                doomed.extend(set.iter().copied());
            }
        }
        for key in &doomed {
            Self::remove_locked(&mut inner, key);
        }
        let map = std::mem::take(&mut inner.map);
        inner.order.retain(|k| map.contains_key(k));
        inner.map = map;
        doomed.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("result cache lock").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_algebra::{Plan, Schema};

    fn rel() -> Arc<NestedRelation> {
        Arc::new(NestedRelation::new(Schema { cols: Vec::new() }, Vec::new()))
    }

    #[test]
    fn pattern_cache_shares_by_canonical_form() {
        let cache = PatternCache::new(8);
        let (a, hit_a) = cache.get_or_parse("a(/b{v})").unwrap();
        assert!(!hit_a);
        let (b, hit_b) = cache.get_or_parse("a ( / b { v } )").unwrap();
        assert!(!hit_b, "different spelling: a text miss");
        assert!(Arc::ptr_eq(&a, &b), "…but the same shared entry");
        let (c, hit_c) = cache.get_or_parse("a(/b{v})").unwrap();
        assert!(hit_c);
        assert!(Arc::ptr_eq(&a, &c));
        assert!(cache.get_or_parse("a(/b{").is_err());
    }

    #[test]
    fn plan_cache_purges_stale_epochs() {
        let cache = PlanCache::new(8);
        let key = |epoch| PlanKey {
            canon_fp: 1,
            geometry: (0, 0),
            epoch,
        };
        for e in 1..=3 {
            cache.insert(
                key(e),
                Arc::new(RankedPlan {
                    plan: Plan::Scan { view: "v".into() },
                    fingerprint: e,
                    est: PlanEstimate {
                        rows: 0.0,
                        cost: 0.0,
                    },
                    candidates: 1,
                }),
            );
        }
        assert_eq!(cache.purge_below(3), 2);
        assert!(cache.get(&key(2)).is_none());
        assert_eq!(cache.get(&key(3)).unwrap().fingerprint, 3);
    }

    #[test]
    fn result_cache_reverse_index_kills_only_touched_entries() {
        let cache = ResultCache::new(8);
        let k1 = ResultKey {
            canon_fp: 1,
            plan_fp: 1,
        };
        let k2 = ResultKey {
            canon_fp: 2,
            plan_fp: 2,
        };
        assert!(cache.insert_if(k1, rel(), vec!["va".into(), "vb".into()], &|| true));
        assert!(cache.insert_if(k2, rel(), vec!["vc".into()], &|| true));
        assert_eq!(cache.invalidate_views(&["vb"]), 1);
        assert!(cache.get(&k1).is_none(), "touched entry dies");
        assert!(cache.get(&k2).is_some(), "untouched entry survives");
        assert!(
            !cache.insert_if(k1, rel(), vec!["va".into()], &|| false),
            "failed admission check rejects the insert"
        );
        assert!(cache.get(&k1).is_none());
    }

    #[test]
    fn result_cache_evicts_fifo_at_capacity() {
        let cache = ResultCache::new(2);
        for i in 0..3u64 {
            let k = ResultKey {
                canon_fp: i,
                plan_fp: i,
            };
            assert!(cache.insert_if(k, rel(), vec![format!("v{i}")], &|| true));
        }
        assert_eq!(cache.len(), 2);
        assert!(
            cache
                .get(&ResultKey {
                    canon_fp: 0,
                    plan_fp: 0
                })
                .is_none(),
            "oldest evicted"
        );
        // the evicted entry's reverse-index edges are gone too
        assert_eq!(cache.invalidate_views(&["v0"]), 0);
    }
}
