//! Intra-operator parallelism: a persistent, morsel-driven worker pool.
//!
//! The algebra executor (`ExecOpts` in `smv-algebra`, which re-exports
//! this module), the summary's batched document ingest, and the catalog's
//! batch materialization all need one primitive: *run `n` independent
//! tasks on up to `t` threads and collect the results in task order*.
//!
//! Two implementations provide it:
//!
//! * [`WorkerPool::pool_map`] — the production path. A pool of long-lived
//!   OS threads (created **once**, parked when idle) watches a shared
//!   injector queue of jobs. Each job is one `pool_map` call: its tasks
//!   are the *morsels*, and idle workers claim morsel indices from the
//!   job's atomic counter, so uneven morsels balance dynamically and a
//!   dispatch costs a queue push + wakeup (single-digit µs) instead of a
//!   thread spawn (~100µs per `std::thread::scope`). The calling thread
//!   participates in its own job, which makes nested/reentrant use
//!   deadlock-free: a job always makes progress even when every worker is
//!   busy elsewhere.
//! * [`par_map`] — the pool-less fallback over [`std::thread::scope`],
//!   kept as the spawn-per-call baseline the dispatch microbench compares
//!   against (and for one-shot callers that don't want pool threads).
//!
//! Both return results in task order, run everything inline when there is
//! nothing to parallelize, and — when a task panics — stop claiming
//! further tasks, drain in-flight ones, and re-raise the *original* panic
//! payload on the calling thread, so one poisoned morsel can neither
//! wedge the pool nor obscure its message. The offline build environment
//! has no `rayon`; this module is the small subset of it the workspace
//! actually uses.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Resolves a user-facing thread count: `0` means "use the host's
/// available parallelism", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        t => t,
    }
}

// ---------------------------------------------------------------------
// scoped fallback
// ---------------------------------------------------------------------

/// Maps `f` over `0..n` on up to `threads` **freshly spawned** scoped
/// workers and returns the results in index order. Workers pull the next
/// task index from a shared counter, so long tasks do not serialize
/// behind short ones. With `threads <= 1` (or fewer than two tasks)
/// everything runs inline on the caller's thread — no spawn,
/// byte-identical to a plain loop.
///
/// This is the spawn-per-call baseline; executor call sites go through
/// [`WorkerPool::pool_map`], which amortizes thread creation across the
/// session. If a task panics, remaining tasks are drained unexecuted and
/// the original panic payload is re-raised on the caller.
///
/// ```
/// let squares = smv_xml::par::par_map(4, 6, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
/// ```
pub fn par_map<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    type Chunk<R> = (Vec<(usize, R)>, Option<Box<dyn Any + Send>>);
    let chunks: Vec<Chunk<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    let mut payload = None;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return (out, payload);
                        }
                        // after a panic anywhere, drain without executing
                        if abort.load(Ordering::Relaxed) {
                            continue;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(r) => out.push((i, r)),
                            Err(p) => {
                                abort.store(true, Ordering::Relaxed);
                                payload.get_or_insert(p);
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool workers catch task panics"))
            .collect()
    });
    let mut first_panic = None;
    for (chunk, payload) in chunks {
        if let Some(p) = payload {
            first_panic.get_or_insert(p);
        }
        for (i, r) in chunk {
            slots[i] = Some(r);
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index produced a result"))
        .collect()
}

// ---------------------------------------------------------------------
// the persistent pool
// ---------------------------------------------------------------------

/// One in-flight `pool_map` call: the shared state workers and the caller
/// cooperate through. Tasks (morsels) are claimed from `next`; `done`
/// counts completions; the caller sleeps on `finished` until
/// `done == n`.
///
/// # Safety invariants
///
/// `data` points into the *caller's stack frame* (the closure and the
/// result slots of the `pool_map` call that created the job), so it is
/// valid only until that call returns. The caller returns only after
/// `done == n`, and every worker's last touch of `data` strictly
/// precedes its increment of `done` for the task in hand — so no access
/// can outlive the frame. The `Arc<Job>` itself (counters, panic slot,
/// condvar) outlives the call safely.
struct Job {
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Completed (or drained) task count.
    done: AtomicUsize,
    /// Total tasks.
    n: usize,
    /// Workers that have joined this job (the caller is not counted).
    helpers: AtomicUsize,
    /// Maximum workers that may join (per-job parallelism cap − 1).
    helper_cap: usize,
    /// Set on the first panic: remaining tasks drain without executing.
    abort: AtomicBool,
    /// The first panic payload, re-raised by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion latch.
    finished: Mutex<bool>,
    finished_cv: Condvar,
    /// Type-erased pointer to the caller-frame closure + result slots.
    data: *const (),
    /// Monomorphized trampoline: runs task `i` against `data`.
    run_one: unsafe fn(*const (), usize),
    /// The owning pool's execution counters (morsels, busy time).
    stats: Arc<PoolStats>,
}

// SAFETY: `data` is shared across threads but only dereferenced through
// `run_one` under the lifetime protocol documented on the struct; all
// other fields are Sync primitives.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// True once every task index has been claimed (the job can accept no
    /// more workers and may be dropped from the queue).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }

    /// Reserves a helper slot; `false` when the job is already at its
    /// parallelism cap.
    fn try_help(&self) -> bool {
        let mut h = self.helpers.load(Ordering::Relaxed);
        loop {
            if h >= self.helper_cap {
                return false;
            }
            match self
                .helpers
                .compare_exchange_weak(h, h + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(cur) => h = cur,
            }
        }
    }

    /// Claims and runs tasks until none remain. Shared by the caller and
    /// every helping worker. Panics inside tasks are captured (first
    /// payload wins) and flip `abort`, after which the remaining indices
    /// are drained — claimed and counted done without executing — so the
    /// job still completes and the pool stays usable.
    fn run(&self) {
        let t0 = Instant::now();
        let mut executed = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            if !self.abort.load(Ordering::Relaxed) {
                executed += 1;
                // SAFETY: task indices are claimed at most once, and the
                // caller keeps `data` alive until `done == n` (see Job).
                if let Err(p) =
                    catch_unwind(AssertUnwindSafe(|| unsafe { (self.run_one)(self.data, i) }))
                {
                    self.abort.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock().expect("panic slot lock");
                    slot.get_or_insert(p);
                }
            }
            // AcqRel: the RMW chain on `done` publishes every prior
            // task's result-slot write to whoever observes `done == n`.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let mut fin = self.finished.lock().expect("finished lock");
                *fin = true;
                self.finished_cv.notify_all();
            }
        }
        // two atomic adds per *participant per job* — not per morsel — so
        // the accounting cost is amortized over the whole job
        self.stats.morsels.fetch_add(executed, Ordering::Relaxed);
        self.stats
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Blocks until every task has completed (or drained).
    fn wait(&self) {
        let mut fin = self.finished.lock().expect("finished lock");
        while !*fin {
            fin = self.finished_cv.wait(fin).expect("finished wait");
        }
    }
}

/// Monotonic execution counters a pool accumulates over its lifetime.
/// Shared (`Arc`) between the pool and every in-flight job so counts
/// survive the job's retirement from the queue.
#[derive(Default)]
struct PoolStats {
    /// Morsels (tasks) actually executed by pool jobs.
    morsels: AtomicU64,
    /// Nanoseconds participants (workers + callers) spent inside jobs.
    busy_ns: AtomicU64,
    /// High-water mark of the injector queue length at dispatch.
    max_queue_depth: AtomicU64,
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    /// The injector queue of active jobs, oldest first.
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Signaled when a job is pushed (and on shutdown).
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Jobs ever dispatched to the queue (telemetry; the
    /// `threads == 1`-never-touches-the-pool regression test reads it).
    dispatched: AtomicU64,
    /// Lifetime execution counters ([`WorkerPool::metrics`]).
    stats: Arc<PoolStats>,
}

/// A point-in-time snapshot of a pool's execution counters
/// ([`WorkerPool::metrics`]). All counts are monotonic over the pool's
/// lifetime; diff two snapshots to meter an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Total parallelism of the pool (workers + caller).
    pub size: usize,
    /// Jobs ever dispatched to the injector queue.
    pub jobs_dispatched: u64,
    /// Morsels (tasks) executed by pool jobs. Inline fast-path calls do
    /// not count, mirroring [`WorkerPool::jobs_dispatched`].
    pub morsels_executed: u64,
    /// Nanoseconds participants spent inside jobs, summed over threads.
    pub busy_ns: u64,
    /// High-water mark of the injector queue length at dispatch.
    pub max_queue_depth: u64,
}

impl PoolMetrics {
    /// Worker utilization over a wall-clock window: the fraction of the
    /// pool's total thread-time (`wall_ns × size`) spent inside jobs.
    /// Clamped to `[0, 1]`; `0` for an empty window.
    pub fn utilization(&self, wall_ns: u64) -> f64 {
        let capacity = wall_ns.saturating_mul(self.size as u64);
        if capacity == 0 {
            return 0.0;
        }
        (self.busy_ns as f64 / capacity as f64).clamp(0.0, 1.0)
    }
}

/// A persistent pool of worker OS threads fed by a shared injector queue
/// of morsel-sized work items.
///
/// The pool is sized **once, at construction** ([`WorkerPool::new`];
/// `threads == 0` resolves to the host's available parallelism) and
/// spawns `size − 1` workers — the thread calling
/// [`pool_map`](WorkerPool::pool_map) is the remaining unit of
/// parallelism, participating in its own jobs. Workers park on a condvar
/// when idle; a dispatch is a queue push plus a wakeup, which is what
/// drops per-join overhead from a ~100µs scope spawn to single-digit µs.
///
/// One pool serves any number of concurrent callers (sessions, ingest,
/// queries) — jobs queue FIFO and each carries its own parallelism cap —
/// and nested `pool_map` calls from inside a task are safe: the inner
/// caller works on its own job rather than parking, so progress never
/// depends on another thread being free. Dropping the pool joins all
/// workers (in-flight jobs finish first; nothing leaks).
///
/// ```
/// use smv_xml::par::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.pool_map(4, 6, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
/// assert_eq!(pool.size(), 4);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Total parallelism including the calling thread.
    size: usize,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of total parallelism `threads` (`0` = the host's
    /// available parallelism), spawning `threads − 1` worker threads.
    /// Thread-count resolution happens here, once — not per operator.
    pub fn new(threads: usize) -> WorkerPool {
        let size = resolve_threads(threads).max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            dispatched: AtomicU64::new(0),
            stats: Arc::new(PoolStats::default()),
        });
        let workers = (0..size - 1)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("smv-pool-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            size,
            workers,
        }
    }

    /// The process-wide shared pool, created lazily at the host's
    /// available parallelism. Executor options that ask for parallelism
    /// without naming a pool draw from this one, so every session in the
    /// process shares one set of worker threads.
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(WorkerPool::new(0)))
    }

    /// Total parallelism (worker threads + the calling thread).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of pool-owned worker threads (`size() − 1`).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs ever dispatched to the injector queue. Inline fast-path calls
    /// (one task, cap 1, or a worker-less pool) do not count — which is
    /// exactly what the "`threads == 1` never touches the pool"
    /// regression test relies on.
    pub fn jobs_dispatched(&self) -> u64 {
        self.shared.dispatched.load(Ordering::Relaxed)
    }

    /// Morsels (tasks) executed by pool jobs so far. Inline fast-path
    /// calls do not count, mirroring [`jobs_dispatched`](Self::jobs_dispatched).
    pub fn morsels_executed(&self) -> u64 {
        self.shared.stats.morsels.load(Ordering::Relaxed)
    }

    /// Current injector queue length (jobs, not morsels). Exhausted
    /// jobs are retired lazily — by the next worker that scans the
    /// queue — so a just-completed job may still be counted here.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("pool queue lock").len()
    }

    /// Snapshots the pool's lifetime execution counters.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            size: self.size,
            jobs_dispatched: self.jobs_dispatched(),
            morsels_executed: self.shared.stats.morsels.load(Ordering::Relaxed),
            busy_ns: self.shared.stats.busy_ns.load(Ordering::Relaxed),
            max_queue_depth: self.shared.stats.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Writes the pool's counters into a metrics registry as
    /// `pool.size`, `pool.jobs_dispatched`, `pool.morsels_executed`,
    /// `pool.busy_ns` and `pool.max_queue_depth` gauges.
    pub fn export_metrics(&self, reg: &smv_obs::MetricsRegistry) {
        let m = self.metrics();
        reg.gauge_set("pool.size", m.size as i64);
        reg.gauge_set("pool.jobs_dispatched", m.jobs_dispatched as i64);
        reg.gauge_set("pool.morsels_executed", m.morsels_executed as i64);
        reg.gauge_set("pool.busy_ns", m.busy_ns as i64);
        reg.gauge_set("pool.max_queue_depth", m.max_queue_depth as i64);
    }

    /// Maps `f` over `0..n` with parallelism at most `cap` (capped by the
    /// pool size; `0` means "the whole pool") and returns the results in
    /// index order — the same ordering/determinism contract as
    /// [`par_map`], so call sites migrate mechanically.
    ///
    /// The tasks become one job on the injector queue; idle workers claim
    /// task indices dynamically, and the caller participates too. With
    /// `cap <= 1`, fewer than two tasks, or no workers, everything runs
    /// inline on the caller — no dispatch, no pool contact. If a task
    /// panics, remaining tasks drain unexecuted and the original payload
    /// is re-raised on the caller; the pool remains usable.
    pub fn pool_map<R, F>(&self, cap: usize, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let cap = if cap == 0 { self.size } else { cap }.min(self.size).min(n);
        if n == 0 {
            return Vec::new();
        }
        if cap <= 1 || n < 2 || self.workers.is_empty() {
            return (0..n).map(f).collect();
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        /// The caller-frame payload `Job::data` points at.
        struct Frame<'a, R, F> {
            f: &'a F,
            slots: *mut Option<R>,
        }
        unsafe fn run_one<R, F: Fn(usize) -> R>(data: *const (), i: usize) {
            let frame = unsafe { &*(data as *const Frame<'_, R, F>) };
            let r = (frame.f)(i);
            // SAFETY: each index is claimed exactly once, so writes to
            // distinct slots never alias.
            unsafe { *frame.slots.add(i) = Some(r) };
        }
        let frame = Frame {
            f: &f,
            slots: slots.as_mut_ptr(),
        };
        let job = Arc::new(Job {
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            n,
            helpers: AtomicUsize::new(0),
            helper_cap: cap - 1,
            abort: AtomicBool::new(false),
            panic: Mutex::new(None),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
            data: &frame as *const Frame<'_, R, F> as *const (),
            run_one: run_one::<R, F>,
            stats: Arc::clone(&self.shared.stats),
        });
        self.shared.dispatched.fetch_add(1, Ordering::Relaxed);
        let depth = {
            let mut q = self.shared.queue.lock().expect("pool queue lock");
            q.push_back(Arc::clone(&job));
            q.len() as u64
        };
        self.shared
            .stats
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
        smv_obs::gauge_max("pool.queue_depth", depth as i64);
        self.shared.work_cv.notify_all();
        job.run(); // the caller is a full participant
        job.wait();
        if let Some(p) = job.panic.lock().expect("panic slot lock").take() {
            resume_unwind(p);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every task index produced a result"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // The store must happen under the queue mutex: worker_loop checks
        // `shutdown` while holding it and then atomically
        // releases-and-parks in `work_cv.wait`, so a store outside the
        // lock could land between that check and the park — the worker
        // would miss the notification and sleep forever (and this join
        // would hang). Holding the lock forces the store to order either
        // before the check (worker sees it) or after the park (the
        // notify_all reaches it).
        {
            let _queue = self.shared.queue.lock().expect("pool queue lock");
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            h.join().expect("pool worker exits cleanly");
        }
    }
}

/// The worker thread body: find the oldest job with an open helper slot,
/// run its tasks, repeat; park when there is nothing runnable.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue lock");
            loop {
                q.retain(|j| !j.exhausted());
                if let Some(j) = q.iter().find(|j| j.try_help()) {
                    break Arc::clone(j);
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    // any job still queued is at its cap or exhausted;
                    // its caller completes it without us
                    return;
                }
                q = shared.work_cv.wait(q).expect("pool queue wait");
            }
        };
        job.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_order_regardless_of_threads() {
        for threads in [0, 1, 2, 4, 9] {
            let out = par_map(threads, 37, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_task() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_tasks_all_complete() {
        // tasks with wildly different costs still land in order
        let out = par_map(3, 16, |i| {
            let mut acc = 0u64;
            for k in 0..((i % 5) * 10_000) as u64 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn pool_map_matches_par_map_across_shapes() {
        let pool = WorkerPool::new(4);
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for cap in [0usize, 1, 2, 4, 16] {
                let got = pool.pool_map(cap, n, |i| i * i + 1);
                let want: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
                assert_eq!(got, want, "n={n} cap={cap}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let out = pool.pool_map(3, 17, move |i| i + round);
            assert_eq!(out, (0..17).map(|i| i + round).collect::<Vec<_>>());
        }
        assert!(pool.jobs_dispatched() >= 1);
    }

    #[test]
    fn concurrent_callers_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for round in 0..20 {
                        let out = pool.pool_map(4, 31, move |i| i * t + round);
                        assert_eq!(out, (0..31).map(|i| i * t + round).collect::<Vec<_>>());
                    }
                });
            }
        });
    }

    #[test]
    fn nested_pool_map_does_not_deadlock() {
        // a task that itself maps on the same pool: the inner caller
        // participates in its own job, so this terminates even when every
        // worker is stuck in the outer job
        let pool = WorkerPool::new(2);
        let out = pool.pool_map(2, 4, |i| pool.pool_map(2, 3, |j| i * 10 + j));
        let want: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..3).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn worker_panic_is_reraised_with_original_message_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.pool_map(4, 100, |i| {
                if i == 41 {
                    panic!("task 41 poisoned the batch");
                }
                i
            })
        }));
        let payload = caught.expect_err("the task panic must surface");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("payload is the original message");
        assert!(msg.contains("task 41 poisoned the batch"), "got: {msg}");
        // the pool is not wedged: the next job completes normally
        let out = pool.pool_map(4, 10, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_panic_is_reraised_with_original_message() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(3, 20, |i| {
                if i == 7 {
                    panic!("morsel 7 went bad");
                }
                i
            })
        }));
        let payload = caught.expect_err("the task panic must surface");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload is the original message");
        assert!(msg.contains("morsel 7 went bad"));
    }

    #[test]
    fn drop_joins_all_workers() {
        // dropping a pool with completed work returns (joining all
        // workers) instead of leaking parked threads; a hang here is the
        // failure mode
        let pool = WorkerPool::new(4);
        let _ = pool.pool_map(4, 100, |i| i);
        assert_eq!(pool.workers(), 3);
        drop(pool);
    }

    #[test]
    fn drop_while_workers_rescan_does_not_hang() {
        // Regression for a lost-wakeup race: shutdown used to be stored
        // outside the queue mutex, so a worker between its shutdown check
        // and the condvar park could miss the notification and sleep
        // forever, hanging Drop's join. Dropping right after dispatch
        // maximizes the odds a worker is mid-rescan at shutdown time.
        for _ in 0..200 {
            let pool = WorkerPool::new(3);
            let _ = pool.pool_map(3, 5, |i| i);
            drop(pool);
        }
    }

    #[test]
    fn inline_fast_path_skips_dispatch() {
        let pool = WorkerPool::new(4);
        let before = pool.jobs_dispatched();
        assert_eq!(pool.pool_map(1, 100, |i| i).len(), 100); // cap 1
        assert_eq!(pool.pool_map(4, 1, |i| i).len(), 1); // one task
        assert_eq!(pool.jobs_dispatched(), before, "inline calls never queue");
    }

    #[test]
    fn metrics_count_morsels_and_busy_time() {
        let pool = WorkerPool::new(3);
        let before = pool.metrics();
        let _ = pool.pool_map(3, 64, |i| {
            let mut acc = 0u64;
            for k in 0..5_000u64 {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            acc
        });
        let after = pool.metrics();
        assert_eq!(
            after.morsels_executed - before.morsels_executed,
            64,
            "every task is one morsel"
        );
        assert_eq!(after.jobs_dispatched - before.jobs_dispatched, 1);
        assert!(after.busy_ns > before.busy_ns, "participants logged time");
        assert!(after.max_queue_depth >= 1);
        assert!(
            pool.queue_depth() <= 1,
            "at most the lazily-retired exhausted job lingers"
        );
        // inline fast-path calls stay invisible, like jobs_dispatched
        let m0 = pool.metrics();
        let _ = pool.pool_map(1, 50, |i| i);
        assert_eq!(pool.metrics().morsels_executed, m0.morsels_executed);
        // utilization is a sane fraction of the wall window
        assert!(after.utilization(u64::MAX / 8) <= 1.0);
        assert_eq!(
            PoolMetrics {
                busy_ns: 0,
                ..after
            }
            .utilization(0),
            0.0
        );
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_the_host() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(Arc::ptr_eq(a, b));
        assert_eq!(a.size(), resolve_threads(0));
    }
}
