//! A minimal scoped worker pool for intra-operator parallelism.
//!
//! The algebra executor's parallel structural joins (`ExecOpts` in
//! `smv-algebra`, which re-exports this module) and the summary's batched
//! document ingest need exactly one primitive: *run `n` independent tasks
//! on up to `t` OS threads and collect the results in task order*.
//! [`par_map`] provides it over
//! [`std::thread::scope`] — no channels, no persistent pool, no unsafe:
//! workers steal task indices from a shared atomic counter (so uneven
//! tasks balance dynamically, the work-stealing that matters here) and
//! return their `(index, result)` pairs, which are scattered back into
//! order after the join. The offline build environment has no `rayon`;
//! this is the few-dozen-line subset of it the workspace actually uses.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a user-facing thread count: `0` means "use the host's
/// available parallelism", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        t => t,
    }
}

/// Maps `f` over `0..n` on up to `threads` scoped workers and returns the
/// results in index order. Workers pull the next task index from a shared
/// counter, so long tasks do not serialize behind short ones. With
/// `threads <= 1` (or fewer than two tasks) everything runs inline on the
/// caller's thread — no spawn, byte-identical to a plain loop.
///
/// ```
/// let squares = smv_xml::par::par_map(4, 6, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
/// ```
pub fn par_map<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return out;
                        }
                        out.push((i, f(i)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel executor worker panicked"))
            .collect()
    });
    for (i, r) in chunks.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_order_regardless_of_threads() {
        for threads in [0, 1, 2, 4, 9] {
            let out = par_map(threads, 37, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_task() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_tasks_all_complete() {
        // tasks with wildly different costs still land in order
        let out = par_map(3, 16, |i| {
            let mut acc = 0u64;
            for k in 0..((i % 5) * 10_000) as u64 {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
