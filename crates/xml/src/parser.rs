//! A from-scratch XML parser for data-oriented documents.
//!
//! Supports elements, attributes (modeled as `@name` child nodes carrying a
//! value), character data with the five predefined entities plus numeric
//! character references, CDATA sections, comments, processing instructions,
//! and a skipped DOCTYPE. This covers all documents the benchmark
//! generators and the paper's examples produce; full XML (namespaces, DTD
//! entity expansion, …) is out of scope and rejected gracefully.

use crate::label::Label;
use crate::tree::{Document, TreeBuilder};
use crate::value::Value;

/// A parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    builder: TreeBuilder,
    text_buf: String,
}

/// Parses an XML document into a [`Document`].
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        builder: TreeBuilder::new(),
        text_buf: String::new(),
    };
    p.parse()?;
    Ok(p.builder.finish())
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn skip_until(&mut self, s: &str) -> Result<(), ParseError> {
        match self.input[self.pos..]
            .windows(s.len())
            .position(|w| w == s.as_bytes())
        {
            Some(i) => {
                self.pos += i + s.len();
                Ok(())
            }
            None => self.err(format!("unterminated construct, `{s}` not found")),
        }
    }

    fn parse(&mut self) -> Result<(), ParseError> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return self.err("expected root element");
        }
        self.parse_element()?;
        self.skip_misc()?;
        if self.pos != self.input.len() {
            return self.err("trailing content after root element");
        }
        Ok(())
    }

    /// Skips whitespace, comments, PIs, XML declaration and DOCTYPE.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // skip to the matching '>' handling one level of [ ... ]
                let mut depth = 0usize;
                while let Some(b) = self.peek() {
                    self.pos += 1;
                    match b {
                        b'[' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' if depth == 0 => break,
                        _ => {}
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| ParseError {
                position: start,
                message: "invalid UTF-8 in name".into(),
            })?
            .to_owned())
    }

    fn flush_text(&mut self) {
        // whitespace-only runs between elements are formatting, not data
        if !self.text_buf.trim().is_empty() {
            let text = std::mem::take(&mut self.text_buf);
            self.builder.append_text(text.trim());
        } else {
            self.text_buf.clear();
        }
    }

    fn parse_element(&mut self) -> Result<(), ParseError> {
        self.expect("<")?;
        let name = self.read_name()?;
        self.builder.open(Label::intern(&name));
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    self.builder.close();
                    return Ok(());
                }
                _ => {
                    let attr = self.read_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => {
                            self.pos += 1;
                            q
                        }
                        _ => return self.err("expected quoted attribute value"),
                    };
                    let start = self.pos;
                    while self.peek() != Some(quote) {
                        if self.peek().is_none() {
                            return self.err("unterminated attribute value");
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| {
                        ParseError {
                            position: start,
                            message: "invalid UTF-8 in attribute".into(),
                        }
                    })?;
                    let decoded = decode_entities(raw, start)?;
                    self.pos += 1; // closing quote
                    self.builder.leaf(
                        Label::intern(&format!("@{attr}")),
                        Some(Value::from_text(&decoded)),
                    );
                }
            }
        }
        // content
        loop {
            if self.starts_with("</") {
                self.flush_text();
                self.pos += 2;
                let close = self.read_name()?;
                if close != name {
                    return self.err(format!("mismatched close tag `{close}` for `{name}`"));
                }
                self.skip_ws();
                self.expect(">")?;
                self.builder.close();
                return Ok(());
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                self.skip_until("]]>")?;
                let text = std::str::from_utf8(&self.input[start..self.pos - 3]).map_err(|_| {
                    ParseError {
                        position: start,
                        message: "invalid UTF-8 in CDATA".into(),
                    }
                })?;
                self.text_buf.push_str(text);
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                self.flush_text();
                self.parse_element()?;
            } else if self.peek().is_none() {
                return self.err(format!("unexpected end of input inside `{name}`"));
            } else {
                let start = self.pos;
                while !matches!(self.peek(), Some(b'<') | None) {
                    self.pos += 1;
                }
                let raw =
                    std::str::from_utf8(&self.input[start..self.pos]).map_err(|_| ParseError {
                        position: start,
                        message: "invalid UTF-8 in text".into(),
                    })?;
                let decoded = decode_entities(raw, start)?;
                self.text_buf.push_str(&decoded);
            }
        }
    }
}

/// Decodes the predefined entities and numeric character references.
/// `base` is the byte offset of `raw` in the whole input; errors point at
/// the `&` of the offending reference, not at the start of the text run.
fn decode_entities(raw: &str, base: usize) -> Result<String, ParseError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let at = base + raw.len() - rest.len(); // offset of this `&`
        let semi = rest.find(';').ok_or(ParseError {
            position: at,
            message: "unterminated entity reference".into(),
        })?;
        let ent = &rest[1..semi];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16).map_err(|_| ParseError {
                    position: at,
                    message: format!("bad character reference `&{ent};`"),
                })?;
                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
            }
            _ if ent.starts_with('#') => {
                let code: u32 = ent[1..].parse().map_err(|_| ParseError {
                    position: at,
                    message: format!("bad character reference `&{ent};`"),
                })?;
                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
            }
            _ => {
                return Err(ParseError {
                    position: at,
                    message: format!("unknown entity `&{ent};`"),
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeId;

    #[test]
    fn parses_simple_document() {
        let d = parse_document("<a><b>1</b><c><d>2</d></c></a>").unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.label(NodeId(0)).as_str(), "a");
        assert_eq!(d.value(NodeId(1)), Some(&Value::Int(1)));
        assert_eq!(d.value(NodeId(3)), Some(&Value::Int(2)));
    }

    #[test]
    fn attributes_become_at_children() {
        let d = parse_document(r#"<item id="7" featured="yes"><name>pen</name></item>"#).unwrap();
        let kids: Vec<&str> = d
            .children(d.root())
            .iter()
            .map(|&c| d.label(c).as_str())
            .collect();
        assert_eq!(kids, vec!["@id", "@featured", "name"]);
        assert_eq!(d.value(NodeId(1)), Some(&Value::Int(7)));
        assert_eq!(d.value(NodeId(2)), Some(&Value::str("yes")));
    }

    #[test]
    fn entities_and_charrefs() {
        let d = parse_document("<t>&lt;a&gt; &amp; &#65;&#x42;</t>").unwrap();
        assert_eq!(d.value(d.root()), Some(&Value::str("<a> & AB")));
    }

    #[test]
    fn entity_errors_point_at_the_offending_ampersand() {
        // a valid reference precedes the bad one: the position must be the
        // second `&`, not the start of the text run
        let src = "<t>&amp; &zz;</t>";
        let e = parse_document(src).unwrap_err();
        assert_eq!(e.position, src.find("&zz;").unwrap(), "{e}");
        // same inside attribute values
        let src = r#"<t a="x&lt;y &#bad; z"/>"#;
        let e = parse_document(src).unwrap_err();
        assert_eq!(e.position, src.find("&#bad;").unwrap(), "{e}");
        // unterminated reference after a decoded one
        let src = "<t>&gt; &broken</t>";
        let e = parse_document(src).unwrap_err();
        assert_eq!(e.position, src.find("&broken").unwrap(), "{e}");
    }

    #[test]
    fn cdata_comments_pis_doctype() {
        let d = parse_document(
            "<?xml version=\"1.0\"?><!DOCTYPE site [<!ELEMENT a (b)>]>\n<a><!-- c --><![CDATA[x<y]]><?pi data?><b/></a>",
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(d.root()), Some(&Value::str("x<y")));
    }

    #[test]
    fn self_closing_and_whitespace() {
        let d = parse_document("<a>\n  <b/>\n  <c></c>\n</a>").unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.value(d.root()), None);
    }

    #[test]
    fn mismatched_tags_error() {
        let e = parse_document("<a><b></c></a>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn trailing_garbage_error() {
        assert!(parse_document("<a/><b/>").is_err());
    }

    #[test]
    fn unterminated_error_positions() {
        let e = parse_document("<a><b>").unwrap_err();
        assert!(e.position > 0);
    }
}
