//! Live documents: batched insert/delete updates with stable node identity.
//!
//! The arena [`Document`] is immutable — [`NodeId`] *is* the pre-order
//! rank, so any structural change renumbers nodes. A [`LiveDoc`] keeps
//! that invariant while supporting updates: each applied [`UpdateBatch`]
//! rebuilds the arena (fresh pre-order ranks) but carries every surviving
//! node's **structural identifier** ([`StructId`]) over unchanged. IDs are
//! the stable identity: extents, shard partitions and summaries key on
//! them, so view maintenance (smv-views) can diff two document versions
//! without positional bookkeeping.
//!
//! Identity rules, which the maintenance layer's correctness proofs rely
//! on:
//!
//! - **survivors keep their ID** — a node untouched by the batch has the
//!   same [`StructId`] before and after, at any [`IdScheme`];
//! - **fresh nodes get fresh IDs** — an inserted fragment root is labeled
//!   `parent_id.child(r)` where `r` comes from a monotone per-parent
//!   counter seeded at the parent's child count when first touched, so a
//!   rank (and hence an ID) is never handed out twice, even after
//!   deletions; fragment interiors hang off that fresh root and inherit
//!   its freshness; sequential IDs draw from a document-global counter;
//! - **deleted IDs are never reused** — consequence of the two rules
//!   above; a deleted subtree's ID set therefore identifies its rows in
//!   any materialized extent forever.

use crate::ids::{IdAssignment, IdScheme, StructId};
use crate::tree::{Document, NodeId, TreeBuilder};
use std::collections::HashMap;

/// One update operation against a live document.
#[derive(Clone, Debug)]
pub enum Update {
    /// Append `fragment` (a well-formed single-rooted tree) as the last
    /// child of the node identified by `parent`.
    Insert {
        /// Structural ID of the surviving node to insert under.
        parent: StructId,
        /// The subtree to graft; its root becomes a new child.
        fragment: Document,
    },
    /// Delete the node identified by `id` together with its whole subtree.
    Delete {
        /// Structural ID of the subtree root to remove.
        id: StructId,
    },
}

/// An ordered batch of updates applied atomically.
///
/// Batch semantics: all deletions resolve against the pre-batch document
/// first; insertions then graft under *surviving* parents, appending as
/// last children in operation order. Inserting under a node the same
/// batch deletes is an error.
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch {
    /// The operations, in application order.
    pub ops: Vec<Update>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> UpdateBatch {
        UpdateBatch::default()
    }

    /// Adds a subtree insertion.
    pub fn insert(&mut self, parent: StructId, fragment: Document) {
        self.ops.push(Update::Insert { parent, fragment });
    }

    /// Adds a subtree deletion.
    pub fn delete(&mut self, id: StructId) {
        self.ops.push(Update::Delete { id });
    }

    /// True when the batch contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// Why a batch could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiveError {
    /// An operation referenced an ID not present in the document.
    UnknownId(StructId),
    /// A deletion targeted the document root.
    DeleteRoot,
    /// An insertion targeted a node deleted by the same batch.
    InsertUnderDeleted(StructId),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::UnknownId(id) => write!(f, "unknown node id {id}"),
            LiveError::DeleteRoot => write!(f, "cannot delete the document root"),
            LiveError::InsertUnderDeleted(id) => {
                write!(f, "insert under {id}, which this batch deletes")
            }
        }
    }
}

impl std::error::Error for LiveError {}

/// What one applied batch did, in terms both document versions understand.
///
/// The pre-batch document and ID assignment are moved out here rather than
/// dropped: subtractive summary maintenance and extent diffing need to
/// walk the subtrees that no longer exist.
#[derive(Debug)]
pub struct AppliedBatch {
    /// The document as it was before the batch.
    pub old_doc: Document,
    /// The ID assignment of `old_doc`.
    pub old_ids: IdAssignment,
    /// For each pre-batch [`NodeId`], the node's post-batch [`NodeId`]
    /// (`None` if deleted). Indexed by the old arena index.
    pub old_to_new: Vec<Option<NodeId>>,
    /// Roots of inserted fragments, as post-batch [`NodeId`]s, in
    /// operation order.
    pub inserted_roots: Vec<NodeId>,
    /// Roots of deleted subtrees, as pre-batch [`NodeId`]s, in document
    /// order; a *cover* — no root is inside another root's subtree.
    pub deleted_roots: Vec<NodeId>,
    /// Every [`StructId`] in any deleted subtree (descendant-closed).
    pub deleted_ids: Vec<StructId>,
}

impl AppliedBatch {
    /// True when the batch changed nothing.
    pub fn is_noop(&self) -> bool {
        self.inserted_roots.is_empty() && self.deleted_roots.is_empty()
    }
}

/// A document that accepts update batches while keeping node identity.
///
/// ```
/// use smv_xml::{Document, IdScheme, LiveDoc, UpdateBatch};
///
/// let mut live = LiveDoc::new(Document::from_parens("r(a b)"), IdScheme::OrdPath);
/// let b_id = live.ids().id(live.doc().children(live.doc().root())[1]).clone();
/// let mut batch = UpdateBatch::new();
/// batch.insert(b_id.clone(), Document::from_parens("c(d)"));
/// let applied = live.apply(&batch).unwrap();
/// assert_eq!(applied.inserted_roots.len(), 1);
/// // the surviving node kept its ID across the arena rebuild
/// assert_eq!(live.node_of(&b_id), Some(live.doc().children(live.doc().root())[1]));
/// ```
#[derive(Clone, Debug)]
pub struct LiveDoc {
    doc: Document,
    ids: IdAssignment,
    /// Reverse index over `ids` (the assignment's own lookup is linear).
    index: HashMap<StructId, NodeId>,
    /// Monotone child-rank counter per parent ID; seeded lazily with the
    /// parent's child count the first time the parent is touched by an
    /// insert-under or delete-from, and never decremented — this is what
    /// makes fresh IDs fresh forever.
    next_child: HashMap<StructId, u64>,
    /// Next sequential ID (only drawn from under [`IdScheme::Sequential`]).
    next_seq: u64,
}

impl LiveDoc {
    /// Wraps a freshly loaded document, assigning IDs under `scheme`.
    pub fn new(doc: Document, scheme: IdScheme) -> LiveDoc {
        let ids = IdAssignment::assign(&doc, scheme);
        let index = ids.index();
        let next_seq = doc.len() as u64;
        LiveDoc {
            doc,
            ids,
            index,
            next_child: HashMap::new(),
            next_seq,
        }
    }

    /// The current document version.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// The current ID assignment.
    pub fn ids(&self) -> &IdAssignment {
        &self.ids
    }

    /// The ID scheme.
    pub fn scheme(&self) -> IdScheme {
        self.ids.scheme()
    }

    /// Resolves an ID to its current [`NodeId`], if the node is alive.
    pub fn node_of(&self, id: &StructId) -> Option<NodeId> {
        self.index.get(id).copied()
    }

    /// The ID of node `n` in the current version.
    pub fn id_of(&self, n: NodeId) -> &StructId {
        self.ids.id(n)
    }

    /// Applies a batch atomically: on error the document is unchanged.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch, LiveError> {
        // -- resolve phase: no mutation until everything checks out --
        let mut delete_targets: Vec<NodeId> = Vec::new();
        for op in &batch.ops {
            if let Update::Delete { id } = op {
                let n = *self
                    .index
                    .get(id)
                    .ok_or_else(|| LiveError::UnknownId(id.clone()))?;
                if n == self.doc.root() {
                    return Err(LiveError::DeleteRoot);
                }
                delete_targets.push(n);
            }
        }
        // reduce to a cover: drop targets inside another target's subtree
        delete_targets.sort_unstable();
        let mut deleted_roots: Vec<NodeId> = Vec::new();
        for n in delete_targets {
            match deleted_roots.last() {
                Some(&r) if n.0 <= self.doc.last_descendant(r).0 => {}
                _ => deleted_roots.push(n),
            }
        }
        let is_deleted = |n: NodeId| -> bool {
            // deleted_roots is sorted by pre-order; the candidate covering
            // root is the last one at or before n
            match deleted_roots.partition_point(|&r| r.0 <= n.0) {
                0 => false,
                i => {
                    let r = deleted_roots[i - 1];
                    n.0 <= self.doc.last_descendant(r).0
                }
            }
        };
        let mut inserts_at: HashMap<NodeId, Vec<&Document>> = HashMap::new();
        let mut insert_parents: Vec<NodeId> = Vec::new(); // op order
        for op in &batch.ops {
            if let Update::Insert { parent, fragment } = op {
                let p = *self
                    .index
                    .get(parent)
                    .ok_or_else(|| LiveError::UnknownId(parent.clone()))?;
                if is_deleted(p) {
                    return Err(LiveError::InsertUnderDeleted(parent.clone()));
                }
                inserts_at.entry(p).or_default().push(fragment);
                insert_parents.push(p);
            }
        }

        // -- commit phase: seed counters, rebuild the arena --
        // Every parent losing or gaining a child gets its rank counter
        // seeded with its *current* child count before any change, so
        // future inserts can never re-issue a rank a deleted child held.
        for &r in &deleted_roots {
            let p = self.doc.parent(r).expect("root deletions rejected above");
            let seed = self.doc.children(p).len() as u64;
            self.next_child
                .entry(self.ids.id(p).clone())
                .or_insert(seed);
        }
        for &p in &insert_parents {
            let seed = self.doc.children(p).len() as u64;
            self.next_child
                .entry(self.ids.id(p).clone())
                .or_insert(seed);
        }

        let mut rb = Rebuild {
            b: TreeBuilder::new(),
            new_ids: Vec::with_capacity(self.doc.len()),
            old_to_new: vec![None; self.doc.len()],
            inserted_roots: Vec::new(),
        };
        rb.copy_surviving(
            self.doc.root(),
            &self.doc,
            &self.ids,
            &is_deleted,
            &inserts_at,
            &mut self.next_child,
            &mut self.next_seq,
        );
        // fragments insert in op order per parent, but `inserted_roots`
        // should be global op order: re-derive it from the per-parent
        // queues' stable ordering
        let mut per_parent_seen: HashMap<NodeId, usize> = HashMap::new();
        let mut op_ordered_roots = Vec::with_capacity(insert_parents.len());
        {
            // group the discovered roots by old parent in discovery order
            let mut roots_by_parent: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for (old_parent, new_root) in rb.inserted_roots.iter().copied() {
                roots_by_parent
                    .entry(old_parent)
                    .or_default()
                    .push(new_root);
            }
            for &p in &insert_parents {
                let k = per_parent_seen.entry(p).or_insert(0);
                op_ordered_roots.push(roots_by_parent[&p][*k]);
                *k += 1;
            }
        }

        let new_doc = rb.b.finish();
        let new_ids = IdAssignment::from_ids(self.ids.scheme(), rb.new_ids);
        let mut deleted_ids = Vec::new();
        for &r in &deleted_roots {
            for n in self.doc.subtree(r) {
                deleted_ids.push(self.ids.id(n).clone());
            }
        }
        let old_doc = std::mem::replace(&mut self.doc, new_doc);
        let old_ids = std::mem::replace(&mut self.ids, new_ids);
        self.index = self.ids.index();
        Ok(AppliedBatch {
            old_doc,
            old_ids,
            old_to_new: rb.old_to_new,
            inserted_roots: op_ordered_roots,
            deleted_roots,
            deleted_ids,
        })
    }
}

/// Working state of one arena rebuild.
struct Rebuild {
    b: TreeBuilder,
    new_ids: Vec<StructId>,
    old_to_new: Vec<Option<NodeId>>,
    /// (old parent, new fragment root), in discovery (document) order.
    inserted_roots: Vec<(NodeId, NodeId)>,
}

impl Rebuild {
    /// Copies the surviving subtree under `old`, then grafts any fragments
    /// queued for it as last children.
    #[allow(clippy::too_many_arguments)]
    fn copy_surviving(
        &mut self,
        old: NodeId,
        doc: &Document,
        ids: &IdAssignment,
        is_deleted: &dyn Fn(NodeId) -> bool,
        inserts_at: &HashMap<NodeId, Vec<&Document>>,
        next_child: &mut HashMap<StructId, u64>,
        next_seq: &mut u64,
    ) {
        let nid = self.b.open(doc.label(old));
        if let Some(v) = doc.value(old) {
            self.b.set_value(v.clone());
        }
        self.new_ids.push(ids.id(old).clone());
        self.old_to_new[old.idx()] = Some(nid);
        for &c in doc.children(old) {
            if !is_deleted(c) {
                self.copy_surviving(c, doc, ids, is_deleted, inserts_at, next_child, next_seq);
            }
        }
        if let Some(frags) = inserts_at.get(&old) {
            let parent_id = ids.id(old).clone();
            for frag in frags {
                let rank = {
                    let c = next_child
                        .get_mut(&parent_id)
                        .expect("counter seeded before rebuild");
                    let r = *c;
                    *c += 1;
                    r
                };
                let root_id = fresh_child_id(&parent_id, rank as usize, next_seq);
                let new_root = self.graft(frag, frag.root(), root_id, next_seq);
                self.inserted_roots.push((old, new_root));
            }
        }
        self.b.close();
    }

    /// Copies a fragment subtree, minting IDs under `my_id`.
    fn graft(
        &mut self,
        frag: &Document,
        fnode: NodeId,
        my_id: StructId,
        next_seq: &mut u64,
    ) -> NodeId {
        let nid = self.b.open(frag.label(fnode));
        if let Some(v) = frag.value(fnode) {
            self.b.set_value(v.clone());
        }
        self.new_ids.push(my_id.clone());
        for (rank, &c) in frag.children(fnode).iter().enumerate() {
            let child_id = fresh_child_id(&my_id, rank, next_seq);
            self.graft(frag, c, child_id, next_seq);
        }
        self.b.close();
        nid
    }
}

/// The ID of a fresh `rank`-th child of `parent` (scheme-aware).
fn fresh_child_id(parent: &StructId, rank: usize, next_seq: &mut u64) -> StructId {
    match parent {
        StructId::Ord(p) => StructId::Ord(p.child(rank)),
        StructId::Dewey(p) => StructId::Dewey(p.child(rank)),
        StructId::Seq(_) => {
            let s = *next_seq;
            *next_seq += 1;
            StructId::Seq(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ord_live(parens: &str) -> LiveDoc {
        LiveDoc::new(Document::from_parens(parens), IdScheme::OrdPath)
    }

    fn id_by_path(live: &LiveDoc, path: &[&str]) -> StructId {
        let mut n = live.doc().root();
        for step in path {
            n = *live
                .doc()
                .children(n)
                .iter()
                .find(|&&c| live.doc().label(c).as_str() == *step)
                .unwrap_or_else(|| panic!("no child {step}"));
        }
        live.id_of(n).clone()
    }

    #[test]
    fn insert_appends_and_keeps_survivor_ids() {
        for scheme in [IdScheme::OrdPath, IdScheme::Dewey, IdScheme::Sequential] {
            let mut live = LiveDoc::new(Document::from_parens("r(a(x) b)"), scheme);
            let before: Vec<StructId> = live.doc().iter().map(|n| live.id_of(n).clone()).collect();
            let a = id_by_path(&live, &["a"]);
            let mut batch = UpdateBatch::new();
            batch.insert(a.clone(), Document::from_parens("c(d)"));
            let applied = live.apply(&batch).unwrap();
            assert_eq!(applied.inserted_roots.len(), 1);
            assert_eq!(live.doc().len(), 6);
            // every pre-batch node survives with its ID intact
            for (old_n, old_id) in before.iter().enumerate() {
                let new_n = applied.old_to_new[old_n].expect("survivor");
                assert_eq!(live.id_of(new_n), old_id, "{scheme:?}");
            }
            // the fragment went in as a's last child
            let a_node = live.node_of(&a).unwrap();
            let kids: Vec<&str> = live
                .doc()
                .children(a_node)
                .iter()
                .map(|&c| live.doc().label(c).as_str())
                .collect();
            assert_eq!(kids, vec!["x", "c"]);
        }
    }

    #[test]
    fn structural_ids_of_fresh_nodes_are_consistent() {
        let mut live = ord_live("r(a b)");
        let r = live.id_of(live.doc().root()).clone();
        let mut batch = UpdateBatch::new();
        batch.insert(r.clone(), Document::from_parens("c(d e)"));
        live.apply(&batch).unwrap();
        let c = id_by_path(&live, &["c"]);
        let d = id_by_path(&live, &["c", "d"]);
        let e = id_by_path(&live, &["c", "e"]);
        // fresh ids still decide structure and order
        assert_eq!(r.is_parent_of(&c), Some(true));
        assert_eq!(c.is_parent_of(&d), Some(true));
        assert_eq!(c.is_ancestor_of(&e), Some(true));
        assert_eq!(d.cmp_doc_order(&e), Some(std::cmp::Ordering::Less));
        // and sort after the existing children, matching document order
        let b = id_by_path(&live, &["b"]);
        assert_eq!(b.cmp_doc_order(&c), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn deleted_ids_are_never_reused() {
        let mut live = ord_live("r(a b c)");
        let c = id_by_path(&live, &["c"]);
        let r = live.id_of(live.doc().root()).clone();
        let mut batch = UpdateBatch::new();
        batch.delete(c.clone());
        let applied = live.apply(&batch).unwrap();
        assert_eq!(applied.deleted_ids, vec![c.clone()]);
        // inserting a new child must NOT resurrect c's id
        let mut batch = UpdateBatch::new();
        batch.insert(r, Document::from_parens("z"));
        live.apply(&batch).unwrap();
        let z = id_by_path(&live, &["z"]);
        assert_ne!(z, c, "rank counter must not re-issue the deleted rank");
        assert!(live.node_of(&c).is_none());
    }

    #[test]
    fn delete_cover_collapses_nested_targets() {
        let mut live = ord_live("r(a(b(c) d) e)");
        let a = id_by_path(&live, &["a"]);
        let b = id_by_path(&live, &["a", "b"]);
        let mut batch = UpdateBatch::new();
        batch.delete(b); // nested inside a — covered
        batch.delete(a);
        let applied = live.apply(&batch).unwrap();
        assert_eq!(applied.deleted_roots.len(), 1);
        assert_eq!(applied.deleted_ids.len(), 4, "a, b, c, d all dead");
        assert_eq!(live.doc().len(), 2); // r, e
    }

    #[test]
    fn batch_errors_leave_the_document_unchanged() {
        let mut live = ord_live("r(a)");
        let before = live.doc().len();
        let a = id_by_path(&live, &["a"]);
        let bogus = StructId::Seq(999);
        let mut batch = UpdateBatch::new();
        batch.insert(bogus.clone(), Document::from_parens("x"));
        assert_eq!(live.apply(&batch).unwrap_err(), LiveError::UnknownId(bogus));
        let mut batch = UpdateBatch::new();
        batch.delete(live.id_of(live.doc().root()).clone());
        assert_eq!(live.apply(&batch).unwrap_err(), LiveError::DeleteRoot);
        let mut batch = UpdateBatch::new();
        batch.delete(a.clone());
        batch.insert(a.clone(), Document::from_parens("x"));
        assert_eq!(
            live.apply(&batch).unwrap_err(),
            LiveError::InsertUnderDeleted(a)
        );
        assert_eq!(live.doc().len(), before);
    }

    #[test]
    fn sequential_ids_stay_unique_across_batches() {
        let mut live = LiveDoc::new(Document::from_parens("r(a b)"), IdScheme::Sequential);
        let r = live.id_of(live.doc().root()).clone();
        let a = id_by_path(&live, &["a"]);
        let mut batch = UpdateBatch::new();
        batch.delete(a);
        batch.insert(r.clone(), Document::from_parens("x(y)"));
        live.apply(&batch).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(r, Document::from_parens("z"));
        live.apply(&batch).unwrap();
        let mut seen = std::collections::HashSet::new();
        for n in live.doc().iter() {
            assert!(seen.insert(live.id_of(n).clone()), "duplicate id");
        }
    }

    #[test]
    fn multiple_inserts_one_batch_keep_op_order() {
        let mut live = ord_live("r(a)");
        let r = live.id_of(live.doc().root()).clone();
        let a = id_by_path(&live, &["a"]);
        let mut batch = UpdateBatch::new();
        batch.insert(r.clone(), Document::from_parens("p"));
        batch.insert(a, Document::from_parens("q"));
        batch.insert(r, Document::from_parens("s"));
        let applied = live.apply(&batch).unwrap();
        let labels: Vec<&str> = applied
            .inserted_roots
            .iter()
            .map(|&n| live.doc().label(n).as_str())
            .collect();
        assert_eq!(labels, vec!["p", "q", "s"], "op order preserved");
        let kids: Vec<&str> = live
            .doc()
            .children(live.doc().root())
            .iter()
            .map(|&c| live.doc().label(c).as_str())
            .collect();
        assert_eq!(kids, vec!["a", "p", "s"]);
    }
}
