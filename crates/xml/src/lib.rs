//! # smv-xml — XML substrate
//!
//! The data-model substrate for the structured-materialized-views system:
//! an arena-based unranked, ordered, labeled tree model for XML documents
//! (paper §2.1), a from-scratch XML parser and serializer, atomic values
//! with a total order, and the two structural node-identifier schemes the
//! paper relies on (ORDPATH and Dewey), which support document-order
//! comparison, ancestor/parent tests, and *parent-ID derivation* — the
//! property exploited by the rewriting algorithm's "virtual ID" step
//! (paper §4.6).
//!
//! Everything higher in the stack (summaries, patterns, algebra, views,
//! containment, rewriting) builds on this crate. That bottom position is
//! also why the [`par`] worker-pool primitive lives here: both the
//! summary's batched ingest and the algebra's parallel structural joins
//! share it without a dependency cycle.

#![deny(clippy::print_stdout, clippy::print_stderr)]
pub mod ids;
pub mod label;
pub mod live;
pub mod par;
pub mod parser;
pub mod tree;
pub mod treelike;
pub mod value;
pub mod writer;

pub use ids::{DeweyId, IdAssignment, IdScheme, OrdPath, StructId};
pub use label::{Label, Symbol};
pub use live::{AppliedBatch, LiveDoc, LiveError, Update, UpdateBatch};
pub use parser::{parse_document, ParseError};
pub use tree::{Document, NodeId, TreeBuilder};
pub use treelike::LabeledTree;
pub use value::Value;
pub use writer::{serialize_document, serialize_subtree};
