//! Process-wide label interning.
//!
//! Element and attribute names come from a small vocabulary (a few hundred
//! distinct names even across all benchmark datasets), so we intern them
//! once into a process-global pool and compare labels as `u32`s everywhere:
//! documents, Dataguides, and tree patterns all share the same `Label`
//! space, which makes cross-structure matching a plain integer compare.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// An interned element/attribute name.
///
/// Two labels are equal iff their names are equal, process-wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u32);

struct Pool {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

fn pool() -> &'static Mutex<Pool> {
    POOL.get_or_init(|| {
        Mutex::new(Pool {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Label {
    /// Interns `name` and returns its label. Idempotent.
    ///
    /// Interned names are leaked; the vocabulary is small and lives for the
    /// whole process, so this is the standard trade-off for `&'static str`
    /// access without lifetimes threading through every structure.
    pub fn intern(name: &str) -> Label {
        let mut p = pool().lock().expect("label pool poisoned");
        if let Some(&id) = p.map.get(name) {
            return Label(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = p.names.len() as u32;
        p.names.push(leaked);
        p.map.insert(leaked, id);
        Label(id)
    }

    /// The interned name.
    pub fn as_str(self) -> &'static str {
        pool().lock().expect("label pool poisoned").names[self.0 as usize]
    }

    /// Raw interner index (stable for the process lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Label::intern("item");
        let b = Label::intern("item");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "item");
    }

    #[test]
    fn distinct_names_distinct_labels() {
        let a = Label::intern("alpha-x");
        let b = Label::intern("alpha-y");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha-x");
        assert_eq!(b.as_str(), "alpha-y");
    }

    #[test]
    fn from_str_matches_intern() {
        let a: Label = "keyword".into();
        assert_eq!(a, Label::intern("keyword"));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Label::intern(&format!("t{}", (i + j) % 10)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Label>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            // same name sequence modulo offset must intern to consistent ids
            for (x, y) in r.iter().zip(results[0].iter()) {
                if x.as_str() == y.as_str() {
                    assert_eq!(x, y);
                }
            }
        }
    }
}
