//! Process-wide string interning: [`Symbol`] and [`Label`].
//!
//! Element/attribute names and relation column names come from small
//! vocabularies (a few hundred distinct names even across all benchmark
//! datasets), so we intern them once into a process-global pool and
//! compare them as `u32`s everywhere: documents, Dataguides, tree
//! patterns, and relation schemas all share the same symbol space, which
//! makes cross-structure matching and column lookup a plain integer
//! compare.
//!
//! [`Symbol`] is the raw interned string; [`Label`] is a newtype over it
//! for element/attribute names, kept distinct so signatures say which
//! vocabulary they mean.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Two symbols are equal iff their strings are equal, process-wide.
/// `Ord` follows interning order (stable within a process), not
/// lexicographic order — sort by [`Symbol::as_str`] when presentation
/// order matters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Pool {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

fn pool() -> &'static Mutex<Pool> {
    POOL.get_or_init(|| {
        Mutex::new(Pool {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol. Idempotent.
    ///
    /// Interned strings are leaked; the vocabulary is small and lives for
    /// the whole process, so this is the standard trade-off for
    /// `&'static str` access without lifetimes threading through every
    /// structure.
    pub fn intern(name: &str) -> Symbol {
        let mut p = pool().lock().expect("symbol pool poisoned");
        if let Some(&id) = p.map.get(name) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = p.names.len() as u32;
        p.names.push(leaked);
        p.map.insert(leaked, id);
        Symbol(id)
    }

    /// The symbol for `name` if it has already been interned — a pure
    /// probe that neither inserts nor leaks. Lookups for strings that may
    /// not be in the vocabulary (e.g. schema column probes) should use
    /// this instead of [`Symbol::intern`].
    pub fn lookup(name: &str) -> Option<Symbol> {
        pool()
            .lock()
            .expect("symbol pool poisoned")
            .map
            .get(name)
            .map(|&id| Symbol(id))
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        pool().lock().expect("symbol pool poisoned").names[self.0 as usize]
    }

    /// Raw interner index (stable for the process lifetime).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

/// An interned element/attribute name.
///
/// Two labels are equal iff their names are equal, process-wide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(Symbol);

impl Label {
    /// Interns `name` and returns its label. Idempotent.
    pub fn intern(name: &str) -> Label {
        Label(Symbol::intern(name))
    }

    /// The interned name.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }

    /// The underlying symbol.
    pub fn symbol(self) -> Symbol {
        self.0
    }

    /// Raw interner index (stable for the process lifetime).
    pub fn index(self) -> u32 {
        self.0.index()
    }
}

impl std::fmt::Debug for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::intern(s)
    }
}

impl From<Symbol> for Label {
    fn from(s: Symbol) -> Self {
        Label(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Label::intern("item");
        let b = Label::intern("item");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "item");
    }

    #[test]
    fn distinct_names_distinct_labels() {
        let a = Label::intern("alpha-x");
        let b = Label::intern("alpha-y");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "alpha-x");
        assert_eq!(b.as_str(), "alpha-y");
    }

    #[test]
    fn from_str_matches_intern() {
        let a: Label = "keyword".into();
        assert_eq!(a, Label::intern("keyword"));
    }

    #[test]
    fn labels_and_symbols_share_the_pool() {
        let l = Label::intern("shared-name");
        let s = Symbol::intern("shared-name");
        assert_eq!(l.symbol(), s);
        assert_eq!(l.index(), s.index());
        // same &'static str, not just equal contents
        assert!(std::ptr::eq(l.as_str(), s.as_str()));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Label::intern(&format!("t{}", (i + j) % 10)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Label>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results[1..] {
            // same name sequence modulo offset must intern to consistent ids
            for (x, y) in r.iter().zip(results[0].iter()) {
                if x.as_str() == y.as_str() {
                    assert_eq!(x, y);
                }
            }
        }
    }
}
