//! XML serialization.
//!
//! Inverse of [`crate::parser`]: `@name` children are written back as
//! attributes, node values as leading text content, and the five predefined
//! entities are escaped. Subtree serialization backs the `C` (content)
//! attribute of patterns — the paper stores a node's content "in a compact
//! encoding, or as a reference to some repository"; we store the serialized
//! form and re-parse when navigating (see `smv-algebra`'s C-navigation).

use crate::tree::{Document, NodeId};

/// Serializes a whole document.
pub fn serialize_document(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, doc.root(), &mut out);
    out
}

/// Serializes the subtree rooted at `n` (used to materialize `C`
/// attributes).
pub fn serialize_subtree(doc: &Document, n: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, n, &mut out);
    out
}

fn escape_into(text: &str, out: &mut String, attr: bool) {
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

fn write_node(doc: &Document, n: NodeId, out: &mut String) {
    let label = doc.label(n).as_str();
    debug_assert!(!label.starts_with('@'), "attribute nodes are inlined");
    out.push('<');
    out.push_str(label);
    let (attrs, elems): (Vec<NodeId>, Vec<NodeId>) = doc
        .children(n)
        .iter()
        .copied()
        .partition(|&c| doc.label(c).as_str().starts_with('@'));
    for a in &attrs {
        out.push(' ');
        out.push_str(&doc.label(*a).as_str()[1..]);
        out.push_str("=\"");
        if let Some(v) = doc.value(*a) {
            escape_into(&v.as_text(), out, true);
        }
        out.push('"');
    }
    let text = doc.value(n);
    if elems.is_empty() && text.is_none() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if let Some(v) = text {
        escape_into(&v.as_text(), out, false);
    }
    for c in elems {
        write_node(doc, c, out);
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn structurally_equal(a: &Document, b: &Document) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.iter().all(|n| {
            a.label(n) == b.label(n) && a.value(n) == b.value(n) && a.parent(n) == b.parent(n)
        })
    }

    #[test]
    fn round_trip_simple() {
        let src = r#"<site><item id="3"><name>pen &amp; ink</name><desc/></item></site>"#;
        let d1 = parse_document(src).unwrap();
        let out = serialize_document(&d1);
        let d2 = parse_document(&out).unwrap();
        assert!(structurally_equal(&d1, &d2), "{out}");
    }

    #[test]
    fn escapes_special_chars() {
        let d = Document::from_parens(r#"a="x<y&z""#);
        let out = serialize_document(&d);
        assert_eq!(out, "<a>x&lt;y&amp;z</a>");
    }

    #[test]
    fn subtree_serialization() {
        let d = parse_document("<a><b><c>1</c></b><d/></a>").unwrap();
        let b = d.iter().find(|&n| d.label(n).as_str() == "b").unwrap();
        assert_eq!(serialize_subtree(&d, b), "<b><c>1</c></b>");
    }
}
