//! Structural node identifiers.
//!
//! The paper's rewriting engine exploits three properties of popular ID
//! schemes (§1, §4.6):
//!
//! 1. **order**: comparing two IDs decides document order;
//! 2. **structure**: comparing two IDs decides parent / ancestor
//!    relationships (enables structural joins, \[1\] in the paper);
//! 3. **parent derivation**: a node's ID can be *computed* from the ID of
//!    any of its children (ORDPATH \[21\], Dewey \[25\]) — this is what makes
//!    "virtual ID" attributes possible during rewriting.
//!
//! We implement ORDPATH (with careting for insertions and a compact
//! zigzag-varint binary encoding), Dewey order IDs, and a plain sequential
//! scheme that has none of the structural properties (useful as a negative
//! baseline in tests and benches).

use crate::tree::{Document, NodeId};
use std::cmp::Ordering;

/// Which identifier scheme a view stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IdScheme {
    /// ORDPATH labels: odd components are real levels, even components are
    /// carets; insert-friendly; prefix-based ancestor test; parent derivable.
    OrdPath,
    /// Dewey order labels: child ranks; parent derivable.
    Dewey,
    /// An opaque sequential identifier: unique but carries no structural
    /// information (cannot be structurally joined).
    Sequential,
}

impl IdScheme {
    /// Does comparing two IDs of this scheme decide document order and
    /// ancestry? (Required for structural joins.)
    pub fn is_structural(self) -> bool {
        !matches!(self, IdScheme::Sequential)
    }

    /// Can a parent's ID be computed from a child's ID? (Required for the
    /// virtual-ID pre-processing of §4.6.)
    pub fn derives_parent(self) -> bool {
        !matches!(self, IdScheme::Sequential)
    }
}

/// An ORDPATH label: a sequence of i64 components; odd components encode
/// levels, even components are carets gluing onto the following component.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct OrdPath {
    components: Vec<i64>,
}

impl OrdPath {
    /// The root label `1`.
    pub fn root() -> OrdPath {
        OrdPath {
            components: vec![1],
        }
    }

    /// Creates an ORDPATH from raw components (odd = level, even = caret).
    pub fn from_components(components: Vec<i64>) -> OrdPath {
        assert!(!components.is_empty(), "empty ORDPATH");
        OrdPath { components }
    }

    /// Raw components.
    pub fn components(&self) -> &[i64] {
        &self.components
    }

    /// The ORDPATH of this node's `rank`-th child (0-based) at initial load:
    /// component `2*rank + 1`.
    pub fn child(&self, rank: usize) -> OrdPath {
        let mut c = self.components.clone();
        c.push(2 * rank as i64 + 1);
        OrdPath { components: c }
    }

    /// Number of levels (count of odd components). The root has 1.
    pub fn level(&self) -> usize {
        self.components.iter().filter(|c| *c % 2 != 0).count()
    }

    /// Derives the parent's ORDPATH: drops the trailing odd component and
    /// any even (caret) components immediately preceding it. Returns `None`
    /// at the root.
    pub fn parent(&self) -> Option<OrdPath> {
        let mut end = self.components.len();
        // skip nothing: last component of a valid ORDPATH is odd
        debug_assert!(self.components[end - 1] % 2 != 0, "ORDPATH must end odd");
        end -= 1; // drop the odd component
        while end > 0 && self.components[end - 1] % 2 == 0 {
            end -= 1; // drop carets
        }
        if end == 0 {
            None
        } else {
            Some(OrdPath {
                components: self.components[..end].to_vec(),
            })
        }
    }

    /// Is `self` a proper ancestor of `other`? Component-prefix test: the
    /// remainder must contain at least one odd (level) component.
    pub fn is_ancestor_of(&self, other: &OrdPath) -> bool {
        if other.components.len() <= self.components.len() {
            return false;
        }
        if other.components[..self.components.len()] != self.components[..] {
            return false;
        }
        other.components[self.components.len()..]
            .iter()
            .any(|c| c % 2 != 0)
    }

    /// Is `self` the parent of `other`?
    pub fn is_parent_of(&self, other: &OrdPath) -> bool {
        other.parent().as_ref() == Some(self)
    }

    /// An ORDPATH strictly between `self` and `next` at the same level,
    /// using careting when the gap is exhausted. `self` and `next` must be
    /// siblings (same parent label) with `self < next`; either may itself
    /// be a careted label. The result always ends in an odd component.
    pub fn between(&self, next: &OrdPath) -> OrdPath {
        assert_eq!(self.parent(), next.parent(), "between() requires siblings");
        assert!(self < next, "between() requires ordered siblings");
        // sibling-local suffixes after the shared parent label: zero or
        // more even carets followed by exactly one odd level component
        let plen = self.parent().map_or(0, |p| p.components.len());
        let l = &self.components[plen..];
        let r = &next.components[plen..];
        let i = l
            .iter()
            .zip(r.iter())
            .position(|(x, y)| x != y)
            .expect("valid sibling labels are never prefixes of one another");
        let (a, b) = (l[i], r[i]);
        debug_assert!(a < b, "first differing component orders the siblings");
        let mut c = self.components[..plen + i].to_vec();
        let lo = if a % 2 == 0 { a + 1 } else { a + 2 }; // smallest odd > a
        if lo < b {
            // room for an odd value in the open interval (a, b): pick one
            // near the middle to keep space on both sides
            let mut mid = a + (b - a) / 2;
            if mid % 2 == 0 {
                mid -= 1;
            }
            let mid = mid.max(lo);
            debug_assert!(a < mid && mid < b && mid % 2 != 0);
            c.push(mid);
            return OrdPath { components: c };
        }
        if b - a >= 2 {
            // only the even value a+1 fits: caret, then a fresh level
            c.push(a + 1);
            c.push(1);
            return OrdPath { components: c };
        }
        // b == a + 1: nothing fits at this position
        if plen + i + 1 == self.components.len() {
            // `a` is self's terminal odd, so b is an even caret in `next`
            // (even components cannot be terminal): descend into next's
            // caret chain and slot in just before it — odd components are
            // unbounded below, so a smaller odd always exists
            c.push(b);
            let t = r[i + 1];
            c.push(if t % 2 == 0 { t - 1 } else { t - 2 });
            OrdPath { components: c }
        } else {
            // `a` is an even caret in self, and next diverges above self's
            // terminal: bumping self's terminal odd stays after self and
            // still before next (they already differ at position `i`)
            self.following_sibling()
        }
    }

    /// The next sibling label after `self` at initial-load spacing.
    pub fn following_sibling(&self) -> OrdPath {
        let mut c = self.components.clone();
        *c.last_mut().unwrap() += 2;
        OrdPath { components: c }
    }

    /// Compact binary encoding: zigzag varint per component. Prefix-free at
    /// component granularity (a deviation from the original bitstring
    /// encoding of \[21\], documented in DESIGN.md; order/ancestor operations
    /// in this library compare decoded components).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.components.len() * 2);
        for &c in &self.components {
            let mut z = ((c << 1) ^ (c >> 63)) as u64;
            loop {
                let byte = (z & 0x7f) as u8;
                z >>= 7;
                if z == 0 {
                    out.push(byte);
                    break;
                }
                out.push(byte | 0x80);
            }
        }
        out
    }

    /// Decodes [`OrdPath::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> OrdPath {
        let mut components = Vec::new();
        let mut z: u64 = 0;
        let mut shift = 0;
        for &b in bytes {
            z |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                let c = ((z >> 1) as i64) ^ -((z & 1) as i64);
                components.push(c);
                z = 0;
                shift = 0;
            } else {
                shift += 7;
            }
        }
        OrdPath::from_components(components)
    }
}

impl PartialOrd for OrdPath {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdPath {
    /// Document order: lexicographic component order (ancestors before
    /// descendants, left siblings before right).
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(&other.components)
    }
}

impl std::fmt::Display for OrdPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A Dewey order identifier: the sequence of 1-based child ranks from the
/// root.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DeweyId {
    ranks: Vec<u32>,
}

impl DeweyId {
    /// The root's Dewey ID (`1`).
    pub fn root() -> DeweyId {
        DeweyId { ranks: vec![1] }
    }

    /// From explicit ranks.
    pub fn from_ranks(ranks: Vec<u32>) -> DeweyId {
        assert!(!ranks.is_empty(), "empty Dewey id");
        DeweyId { ranks }
    }

    /// Ranks from the root.
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// The `rank`-th child (0-based).
    pub fn child(&self, rank: usize) -> DeweyId {
        let mut r = self.ranks.clone();
        r.push(rank as u32 + 1);
        DeweyId { ranks: r }
    }

    /// Parent ID (drop the last rank).
    pub fn parent(&self) -> Option<DeweyId> {
        if self.ranks.len() == 1 {
            None
        } else {
            Some(DeweyId {
                ranks: self.ranks[..self.ranks.len() - 1].to_vec(),
            })
        }
    }

    /// Proper-ancestor test: proper prefix.
    pub fn is_ancestor_of(&self, other: &DeweyId) -> bool {
        other.ranks.len() > self.ranks.len() && other.ranks[..self.ranks.len()] == self.ranks[..]
    }

    /// Parent test.
    pub fn is_parent_of(&self, other: &DeweyId) -> bool {
        other.ranks.len() == self.ranks.len() + 1 && self.is_ancestor_of(other)
    }

    /// Depth (root = 1 component).
    pub fn level(&self) -> usize {
        self.ranks.len()
    }
}

impl PartialOrd for DeweyId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeweyId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ranks.cmp(&other.ranks)
    }
}

impl std::fmt::Display for DeweyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// A concrete structural identifier value, tagged by scheme.
///
/// The derived total order groups by scheme (ORDPATH < Dewey < sequential)
/// and orders by document order within a scheme — so sorting a uniform
/// column of IDs yields document order, which the sort-based structural
/// join relies on. Cross-scheme comparisons are *ordered* (the total order
/// must be total) but carry no document meaning; use
/// [`StructId::cmp_doc_order`] when mixed schemes must be rejected.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StructId {
    /// ORDPATH label.
    Ord(OrdPath),
    /// Dewey label.
    Dewey(DeweyId),
    /// Opaque sequence number.
    Seq(u64),
}

impl StructId {
    /// Document-order comparison; `None` when the schemes differ or the
    /// scheme is non-structural (sequential IDs do still order by load
    /// sequence, which *happens* to be document order at initial load, but
    /// the scheme does not guarantee it — we allow it and document this).
    pub fn cmp_doc_order(&self, other: &StructId) -> Option<Ordering> {
        match (self, other) {
            (StructId::Ord(a), StructId::Ord(b)) => Some(a.cmp(b)),
            (StructId::Dewey(a), StructId::Dewey(b)) => Some(a.cmp(b)),
            (StructId::Seq(a), StructId::Seq(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Proper-ancestor test; `None` when undecidable from the IDs alone.
    pub fn is_ancestor_of(&self, other: &StructId) -> Option<bool> {
        match (self, other) {
            (StructId::Ord(a), StructId::Ord(b)) => Some(a.is_ancestor_of(b)),
            (StructId::Dewey(a), StructId::Dewey(b)) => Some(a.is_ancestor_of(b)),
            _ => None,
        }
    }

    /// Parent test; `None` when undecidable from the IDs alone.
    pub fn is_parent_of(&self, other: &StructId) -> Option<bool> {
        match (self, other) {
            (StructId::Ord(a), StructId::Ord(b)) => Some(a.is_parent_of(b)),
            (StructId::Dewey(a), StructId::Dewey(b)) => Some(a.is_parent_of(b)),
            _ => None,
        }
    }

    /// Derives the parent's ID; `None` when the scheme cannot, or at root.
    pub fn derive_parent(&self) -> Option<StructId> {
        match self {
            StructId::Ord(a) => a.parent().map(StructId::Ord),
            StructId::Dewey(a) => a.parent().map(StructId::Dewey),
            StructId::Seq(_) => None,
        }
    }

    /// Depth-like level (number of levels encoded in the ID), when defined.
    pub fn level(&self) -> Option<usize> {
        match self {
            StructId::Ord(a) => Some(a.level()),
            StructId::Dewey(a) => Some(a.level()),
            StructId::Seq(_) => None,
        }
    }
}

impl std::fmt::Display for StructId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructId::Ord(a) => write!(f, "{a}"),
            StructId::Dewey(a) => write!(f, "{a}"),
            StructId::Seq(a) => write!(f, "#{a}"),
        }
    }
}

/// A full assignment of identifiers to every node of a document — the
/// paper's labeling function `f_ID : nodes(t) → A`.
#[derive(Clone, Debug)]
pub struct IdAssignment {
    scheme: IdScheme,
    ids: Vec<StructId>,
}

impl IdAssignment {
    /// Assigns IDs to every node of `doc` in document order.
    pub fn assign(doc: &Document, scheme: IdScheme) -> IdAssignment {
        let mut ids: Vec<Option<StructId>> = vec![None; doc.len()];
        for n in doc.iter() {
            let id = match scheme {
                IdScheme::Sequential => StructId::Seq(n.0 as u64),
                IdScheme::OrdPath => match doc.parent(n) {
                    None => StructId::Ord(OrdPath::root()),
                    Some(p) => {
                        let StructId::Ord(pid) = ids[p.idx()].as_ref().unwrap() else {
                            unreachable!()
                        };
                        StructId::Ord(pid.child(doc.child_rank(n) as usize))
                    }
                },
                IdScheme::Dewey => match doc.parent(n) {
                    None => StructId::Dewey(DeweyId::root()),
                    Some(p) => {
                        let StructId::Dewey(pid) = ids[p.idx()].as_ref().unwrap() else {
                            unreachable!()
                        };
                        StructId::Dewey(pid.child(doc.child_rank(n) as usize))
                    }
                },
            };
            ids[n.idx()] = Some(id);
        }
        IdAssignment {
            scheme,
            ids: ids.into_iter().map(|o| o.unwrap()).collect(),
        }
    }

    /// Wraps an explicit per-node ID vector (document order). Used by the
    /// live-update rebuild, which carries surviving IDs across re-ingest
    /// instead of re-deriving them positionally.
    pub fn from_ids(scheme: IdScheme, ids: Vec<StructId>) -> IdAssignment {
        IdAssignment { scheme, ids }
    }

    /// The scheme used.
    pub fn scheme(&self) -> IdScheme {
        self.scheme
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Builds a hash index from ID to node for O(1) reverse lookup.
    pub fn index(&self) -> std::collections::HashMap<StructId, NodeId> {
        self.ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), NodeId(i as u32)))
            .collect()
    }

    /// The ID of node `n`.
    pub fn id(&self, n: NodeId) -> &StructId {
        &self.ids[n.idx()]
    }

    /// Reverse lookup (linear; intended for tests and plan evaluation over
    /// moderate documents — production stores would index this).
    pub fn node_of(&self, id: &StructId) -> Option<NodeId> {
        self.ids
            .iter()
            .position(|x| x == id)
            .map(|i| NodeId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Document;

    #[test]
    fn ordpath_assignment_matches_figure2() {
        // Figure 2 labels nodes 1, 1.1, 1.3, 1.3.1, 1.3.3, 1.3.3.1, 1.5, ...
        let d = Document::from_parens(r#"a(b="1" c(b="2" d(e="3")) d(c(b) b b e) c(d e))"#);
        let ids = IdAssignment::assign(&d, IdScheme::OrdPath);
        assert_eq!(ids.id(NodeId(0)).to_string(), "1");
        assert_eq!(ids.id(NodeId(1)).to_string(), "1.1");
        assert_eq!(ids.id(NodeId(2)).to_string(), "1.3");
        assert_eq!(ids.id(NodeId(3)).to_string(), "1.3.1");
        assert_eq!(ids.id(NodeId(4)).to_string(), "1.3.3");
        assert_eq!(ids.id(NodeId(5)).to_string(), "1.3.3.1");
        assert_eq!(ids.id(NodeId(6)).to_string(), "1.5");
    }

    #[test]
    fn ordpath_parent_derivation() {
        let p = OrdPath::from_components(vec![1, 5, 3]);
        assert_eq!(p.parent().unwrap().to_string(), "1.5");
        assert_eq!(p.parent().unwrap().parent().unwrap().to_string(), "1");
        assert_eq!(OrdPath::root().parent(), None);
        // careted path 1.5.2.3: parent drops the caret too
        let c = OrdPath::from_components(vec![1, 5, 2, 3]);
        assert_eq!(c.parent().unwrap().to_string(), "1.5");
        assert_eq!(c.level(), 3);
    }

    #[test]
    fn ordpath_ancestor_and_order() {
        let a = OrdPath::from_components(vec![1, 3]);
        let b = OrdPath::from_components(vec![1, 3, 5]);
        let c = OrdPath::from_components(vec![1, 5]);
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&c));
        assert!(a < b && b < c);
        // caret child is still a descendant
        let caret = OrdPath::from_components(vec![1, 3, 2, 1]);
        assert!(a.is_ancestor_of(&caret));
        assert!(a.is_parent_of(&caret));
    }

    #[test]
    fn ordpath_between_makes_room() {
        let a = OrdPath::from_components(vec![1, 3]);
        let b = OrdPath::from_components(vec![1, 9]);
        let m = a.between(&b);
        assert!(a < m && m < b);
        assert_eq!(m.level(), a.level());
        // adjacent odds force a caret
        let c = OrdPath::from_components(vec![1, 5]);
        let m2 = a.between(&c);
        assert!(a < m2 && m2 < c);
        assert_eq!(m2.level(), 2);
        assert_eq!(m2.parent().unwrap().to_string(), "1");
    }

    #[test]
    fn ordpath_between_careted_siblings() {
        let root = OrdPath::root();
        // careted right sibling (1.4.1 sits between 1.3 and 1.5)
        let a = OrdPath::from_components(vec![1, 3]);
        let caret = a.between(&OrdPath::from_components(vec![1, 5]));
        assert_eq!(caret.components(), &[1, 4, 1]);
        let m = a.between(&caret);
        assert!(a < m && m < caret, "{a} < {m} < {caret}");
        assert!(root.is_parent_of(&m));
        // careted left sibling, plain right sibling
        let b = OrdPath::from_components(vec![1, 5]);
        let m2 = caret.between(&b);
        assert!(caret < m2 && m2 < b, "{caret} < {m2} < {b}");
        assert!(root.is_parent_of(&m2));
        // both careted, different lengths
        let c1 = OrdPath::from_components(vec![1, 4, 1]);
        let c2 = OrdPath::from_components(vec![1, 4, 2, 5]);
        let m3 = c1.between(&c2);
        assert!(c1 < m3 && m3 < c2, "{c1} < {m3} < {c2}");
        assert!(root.is_parent_of(&m3));
        // even trailing component before the terminal on both sides
        let d1 = OrdPath::from_components(vec![1, 4, 3]);
        let m4 = c1.between(&d1);
        assert!(c1 < m4 && m4 < d1, "{c1} < {m4} < {d1}");
        assert!(root.is_parent_of(&m4));
        // repeated splitting between the same neighbors keeps converging
        let mut left = a;
        let right = OrdPath::from_components(vec![1, 5]);
        for _ in 0..12 {
            let mid = left.between(&right);
            assert!(left < mid && mid < right, "{left} < {mid} < {right}");
            assert!(root.is_parent_of(&mid), "mid {mid} stays a sibling");
            assert!(mid.components().last().unwrap() % 2 != 0, "ends odd");
            left = mid;
        }
    }

    #[test]
    fn ordpath_bytes_round_trip() {
        for comps in [vec![1], vec![1, 3, 5], vec![1, 2000001, 7], vec![1, -4, 1]] {
            let p = OrdPath::from_components(comps);
            assert_eq!(OrdPath::from_bytes(&p.to_bytes()), p);
        }
    }

    #[test]
    fn dewey_basics() {
        let d = Document::from_parens("a(b(c) d)");
        let ids = IdAssignment::assign(&d, IdScheme::Dewey);
        assert_eq!(ids.id(NodeId(0)).to_string(), "1");
        assert_eq!(ids.id(NodeId(1)).to_string(), "1.1");
        assert_eq!(ids.id(NodeId(2)).to_string(), "1.1.1");
        assert_eq!(ids.id(NodeId(3)).to_string(), "1.2");
        let b = ids.id(NodeId(1));
        let c = ids.id(NodeId(2));
        assert_eq!(b.is_parent_of(c), Some(true));
        assert_eq!(c.derive_parent().as_ref(), Some(b));
    }

    #[test]
    fn ids_agree_with_tree_relations() {
        let d = Document::from_parens("a(b(c(e) d) f(g h(i)))");
        for scheme in [IdScheme::OrdPath, IdScheme::Dewey] {
            let ids = IdAssignment::assign(&d, scheme);
            for x in d.iter() {
                for y in d.iter() {
                    let ix = ids.id(x);
                    let iy = ids.id(y);
                    assert_eq!(
                        ix.is_ancestor_of(iy),
                        Some(d.is_ancestor(x, y)),
                        "{scheme:?} ancestor mismatch {x:?} {y:?}"
                    );
                    assert_eq!(
                        ix.cmp_doc_order(iy),
                        Some(x.0.cmp(&y.0)),
                        "{scheme:?} order mismatch {x:?} {y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sequential_scheme_is_opaque() {
        assert!(!IdScheme::Sequential.is_structural());
        assert!(!IdScheme::Sequential.derives_parent());
        let a = StructId::Seq(1);
        let b = StructId::Seq(2);
        assert_eq!(a.is_ancestor_of(&b), None);
        assert_eq!(a.derive_parent(), None);
    }
}
