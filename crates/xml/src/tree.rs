//! Arena-based unranked ordered labeled trees (the paper's data model, §2.1).
//!
//! A [`Document`] stores nodes in **document (pre-)order**: [`NodeId`] is the
//! arena index and simultaneously the node's pre-order rank, so document
//! order is integer comparison. Each node additionally records the index of
//! its last descendant, making ancestor tests O(1): `a ≺≺ b` iff
//! `a < b && b <= last_descendant(a)`.
//!
//! Attributes are modeled as children labeled `@name` carrying a value, per
//! the paper's remark that a node's label "corresponds to the element or
//! attribute name".

use crate::label::Label;
use crate::treelike::LabeledTree;
use crate::value::Value;

/// Index of a node in a [`Document`] arena; equals the node's pre-order rank.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root of every document.
    pub const ROOT: NodeId = NodeId(0);

    /// Arena index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Node {
    label: Label,
    parent: Option<NodeId>,
    /// Pre-order rank of this node's last descendant (itself if a leaf).
    last_desc: u32,
    value: Option<Value>,
    children: Vec<NodeId>,
    /// 0-based position among the parent's children.
    child_rank: u32,
    depth: u32,
}

/// An XML document: an unranked, ordered, labeled tree with optional atomic
/// values on nodes.
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has no nodes (only possible before building).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// The node's label.
    pub fn label(&self, n: NodeId) -> Label {
        self.nodes[n.idx()].label
    }

    /// The node's atomic value, if any.
    pub fn value(&self, n: NodeId) -> Option<&Value> {
        self.nodes[n.idx()].value.as_ref()
    }

    /// The node's parent (`None` for the root).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.idx()].parent
    }

    /// The node's children, in document order.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.idx()].children
    }

    /// 0-based rank of `n` among its siblings.
    pub fn child_rank(&self, n: NodeId) -> u32 {
        self.nodes[n.idx()].child_rank
    }

    /// Depth of `n` (root = 0).
    pub fn depth(&self, n: NodeId) -> u32 {
        self.nodes[n.idx()].depth
    }

    /// Pre-order rank of the last descendant of `n`.
    pub fn last_descendant(&self, n: NodeId) -> NodeId {
        NodeId(self.nodes[n.idx()].last_desc)
    }

    /// `a ≺ b`: is `a` the parent of `b`?
    pub fn is_parent(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes[b.idx()].parent == Some(a)
    }

    /// `a ≺≺ b`: is `a` a proper ancestor of `b`? O(1).
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        a.0 < b.0 && b.0 <= self.nodes[a.idx()].last_desc
    }

    /// Iterates over all nodes in document order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over the descendants of `n` (excluding `n`), document order.
    pub fn descendants(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (n.0 + 1..=self.nodes[n.idx()].last_desc).map(NodeId)
    }

    /// Iterates over `n` plus its descendants, in document order.
    pub fn subtree(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (n.0..=self.nodes[n.idx()].last_desc).map(NodeId)
    }

    /// The sequence of labels from the root down to `n` (the node's *rooted
    /// simple path*, §2.3).
    pub fn path_labels(&self, n: NodeId) -> Vec<Label> {
        let mut labels = Vec::with_capacity(self.depth(n) as usize + 1);
        let mut cur = Some(n);
        while let Some(c) = cur {
            labels.push(self.label(c));
            cur = self.parent(c);
        }
        labels.reverse();
        labels
    }

    /// Builds a document from a parenthesized notation like `a(b c(d))`,
    /// with optional `label="value"` values: `a(b="1" c(d="2"))`.
    ///
    /// This is the notation the paper uses for examples; handy in tests.
    pub fn from_parens(s: &str) -> Document {
        let mut b = TreeBuilder::new();
        let mut chars = s.chars().peekable();
        parse_parens(&mut chars, &mut b, true);
        b.finish()
    }
}

fn parse_parens(chars: &mut std::iter::Peekable<std::str::Chars>, b: &mut TreeBuilder, _top: bool) {
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None | Some(')') => return,
            _ => {}
        }
        let mut name = String::new();
        while matches!(chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_' || *c == '@' || *c == '-')
        {
            name.push(chars.next().unwrap());
        }
        assert!(!name.is_empty(), "expected node label in parens notation");
        let mut value = None;
        if matches!(chars.peek(), Some('=')) {
            chars.next();
            assert_eq!(chars.next(), Some('"'), "expected opening quote");
            let mut v = String::new();
            for c in chars.by_ref() {
                if c == '"' {
                    break;
                }
                v.push(c);
            }
            value = Some(Value::from_text(&v));
        }
        b.open(Label::intern(&name));
        if let Some(v) = value {
            b.set_value(v);
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if matches!(chars.peek(), Some('(')) {
            chars.next();
            parse_parens(chars, b, false);
            assert_eq!(chars.next(), Some(')'), "unbalanced parens");
        }
        b.close();
    }
}

/// Incremental builder producing nodes in document order.
///
/// Call [`TreeBuilder::open`] / [`TreeBuilder::close`] in well-nested pairs;
/// the first `open` creates the root.
#[derive(Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> TreeBuilder {
        TreeBuilder::default()
    }

    /// Opens a new element as the next child of the currently open element
    /// (or as the root). Returns its id.
    pub fn open(&mut self, label: Label) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let (parent, child_rank, depth) = match self.stack.last() {
            Some(&p) => {
                let rank = self.nodes[p.idx()].children.len() as u32;
                let depth = self.nodes[p.idx()].depth + 1;
                (Some(p), rank, depth)
            }
            None => {
                assert!(
                    self.nodes.is_empty(),
                    "a document has exactly one root element"
                );
                (None, 0, 0)
            }
        };
        self.nodes.push(Node {
            label,
            parent,
            last_desc: id.0,
            value: None,
            children: Vec::new(),
            child_rank,
            depth,
        });
        if let Some(p) = parent {
            self.nodes[p.idx()].children.push(id);
        }
        self.stack.push(id);
        id
    }

    /// Sets the atomic value of the currently open element.
    pub fn set_value(&mut self, v: Value) {
        let &n = self.stack.last().expect("no open element");
        self.nodes[n.idx()].value = Some(v);
    }

    /// Appends text to the currently open element's value (concatenating
    /// mixed content).
    pub fn append_text(&mut self, text: &str) {
        let &n = self.stack.last().expect("no open element");
        let node = &mut self.nodes[n.idx()];
        match &mut node.value {
            None => node.value = Some(Value::from_text(text)),
            Some(v) => {
                let mut s = v.as_text();
                s.push_str(text);
                *v = Value::from_text(&s);
            }
        }
    }

    /// Convenience: `open`, set value, `close`.
    pub fn leaf(&mut self, label: Label, value: Option<Value>) -> NodeId {
        let id = self.open(label);
        if let Some(v) = value {
            self.set_value(v);
        }
        self.close();
        id
    }

    /// Closes the currently open element, fixing its descendant interval.
    pub fn close(&mut self) {
        let n = self.stack.pop().expect("close without open");
        let last = (self.nodes.len() - 1) as u32;
        self.nodes[n.idx()].last_desc = last;
    }

    /// Current nesting depth of open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Finishes the build; panics if elements remain open or nothing was
    /// built.
    pub fn finish(self) -> Document {
        assert!(self.stack.is_empty(), "unclosed elements remain");
        assert!(!self.nodes.is_empty(), "empty document");
        Document { nodes: self.nodes }
    }
}

impl LabeledTree for Document {
    fn tree_root(&self) -> NodeId {
        self.root()
    }
    fn tree_label(&self, n: NodeId) -> Label {
        self.label(n)
    }
    fn tree_children(&self, n: NodeId) -> &[NodeId] {
        self.children(n)
    }
    fn tree_parent(&self, n: NodeId) -> Option<NodeId> {
        self.parent(n)
    }
    fn tree_value(&self, n: NodeId) -> Option<&Value> {
        self.value(n)
    }
    fn tree_is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.is_ancestor(a, b)
    }
    fn tree_len(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        // Figure 2's document: a(b="1" c(b="2" d(e="3")) d(c(b="4") b(d="5") b e="6") ... )
        Document::from_parens(r#"a(b="1" c(b="2" d(e="3")) d(c(b="4")) c(d="6"))"#)
    }

    #[test]
    fn builds_in_document_order() {
        let d = sample();
        assert_eq!(d.label(NodeId(0)).as_str(), "a");
        assert_eq!(d.label(NodeId(1)).as_str(), "b");
        assert_eq!(d.value(NodeId(1)), Some(&Value::Int(1)));
        // children of root
        let kids: Vec<&str> = d
            .children(d.root())
            .iter()
            .map(|&c| d.label(c).as_str())
            .collect();
        assert_eq!(kids, vec!["b", "c", "d", "c"]);
    }

    #[test]
    fn ancestor_and_parent_tests() {
        let d = sample();
        let root = d.root();
        for n in d.iter().skip(1) {
            assert!(d.is_ancestor(root, n));
            assert!(!d.is_ancestor(n, root));
        }
        assert!(!d.is_ancestor(root, root));
        // c (node 2) is parent of b (node 3)
        assert!(d.is_parent(NodeId(2), NodeId(3)));
        assert!(d.is_ancestor(NodeId(2), NodeId(5)));
        assert!(!d.is_parent(NodeId(2), NodeId(5)));
    }

    #[test]
    fn descendant_intervals() {
        let d = sample();
        let c = NodeId(2); // first c child
        let desc: Vec<u32> = d.descendants(c).map(|n| n.0).collect();
        assert_eq!(desc, vec![3, 4, 5]);
        assert_eq!(d.last_descendant(c), NodeId(5));
    }

    #[test]
    fn path_labels_walk_to_root() {
        let d = sample();
        let e = d
            .iter()
            .find(|&n| d.label(n).as_str() == "e")
            .expect("e node");
        let path: Vec<&str> = d.path_labels(e).iter().map(|l| l.as_str()).collect();
        assert_eq!(path, vec!["a", "c", "d", "e"]);
    }

    #[test]
    fn depth_and_rank() {
        let d = sample();
        assert_eq!(d.depth(d.root()), 0);
        assert_eq!(d.depth(NodeId(1)), 1);
        assert_eq!(d.child_rank(NodeId(1)), 0);
        assert_eq!(d.child_rank(NodeId(2)), 1);
    }

    #[test]
    fn append_text_concatenates() {
        let mut b = TreeBuilder::new();
        b.open(Label::intern("t"));
        b.append_text("hello ");
        b.append_text("world");
        b.close();
        let d = b.finish();
        assert_eq!(d.value(d.root()), Some(&Value::str("hello world")));
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_build_panics() {
        let mut b = TreeBuilder::new();
        b.open(Label::intern("x"));
        let _ = b.finish();
    }
}
