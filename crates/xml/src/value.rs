//! Atomic values.
//!
//! The paper assumes a totally ordered, enumerable domain `A` of atomic
//! values (§4.2). We model it as the disjoint union of 64-bit integers and
//! strings, with all integers ordering before all strings; integers order
//! numerically and strings lexicographically. Numeric-looking text parses
//! to the integer variant so that value predicates like `v > 3` behave the
//! way the paper's examples (Fig. 2, Fig. 9) expect.

use std::cmp::Ordering;

/// An atomic XML value: the content of a text node / attribute.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer value (numeric text content).
    Int(i64),
    /// A string value.
    Str(Box<str>),
}

impl Value {
    /// Parses text into a value: integers when the whole trimmed text is a
    /// valid `i64`, strings otherwise.
    pub fn from_text(text: &str) -> Value {
        let t = text.trim();
        match t.parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Str(text.into()),
        }
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Value {
        Value::Str(s.into())
    }

    /// Renders the value back to text.
    pub fn as_text(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Str(s) => s.to_string(),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_text())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::from_text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_text_parses_to_int() {
        assert_eq!(Value::from_text("42"), Value::Int(42));
        assert_eq!(Value::from_text("  -7 "), Value::Int(-7));
        assert_eq!(Value::from_text("4.2"), Value::Str("4.2".into()));
        assert_eq!(Value::from_text("pen"), Value::Str("pen".into()));
    }

    #[test]
    fn total_order_ints_before_strings() {
        assert!(Value::int(999) < Value::str("a"));
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::str("") > Value::int(i64::MAX));
    }

    #[test]
    fn round_trip_text() {
        for t in ["42", "hello", "-5"] {
            let v = Value::from_text(t);
            assert_eq!(v.as_text(), t);
        }
    }
}
