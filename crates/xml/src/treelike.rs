//! A common read-only tree abstraction.
//!
//! Tree-pattern embeddings (paper §2.2) are defined both into XML
//! *documents* and into *summaries* (Dataguides are trees too, §2.3-2.4),
//! and the containment algorithm additionally embeds patterns into
//! *canonical-model trees*. [`LabeledTree`] lets all that matching code be
//! written once, generically.

use crate::label::Label;
use crate::tree::NodeId;
use crate::value::Value;

/// Read-only access to an ordered labeled tree whose nodes are [`NodeId`]s.
pub trait LabeledTree {
    /// The root node.
    fn tree_root(&self) -> NodeId;
    /// Label of a node.
    fn tree_label(&self, n: NodeId) -> Label;
    /// Children in document order.
    fn tree_children(&self, n: NodeId) -> &[NodeId];
    /// Parent (`None` at the root).
    fn tree_parent(&self, n: NodeId) -> Option<NodeId>;
    /// Atomic value if the node carries one (summaries carry none).
    fn tree_value(&self, n: NodeId) -> Option<&Value>;
    /// Proper-ancestor test.
    fn tree_is_ancestor(&self, a: NodeId, b: NodeId) -> bool;
    /// Total number of nodes.
    fn tree_len(&self) -> usize;

    /// All nodes of the subtree rooted at `n`, pre-order. Default recursive
    /// implementation; implementors with interval encodings may override.
    fn tree_subtree(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            out.push(x);
            // push children reversed so pre-order pops left-to-right
            for &c in self.tree_children(x).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Depth of `n` (root = 0) by parent chasing.
    fn tree_depth(&self, n: NodeId) -> u32 {
        let mut d = 0;
        let mut cur = n;
        while let Some(p) = self.tree_parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Chain of nodes from `a` (exclusive) down to `b` (inclusive), assuming
    /// `a` is an ancestor of `b`. Used when materializing canonical-model
    /// trees (§2.4): the chain of labels connecting `e(n)` to `e(m)`.
    fn tree_chain_down(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut chain = Vec::new();
        let mut cur = b;
        while cur != a {
            chain.push(cur);
            cur = self
                .tree_parent(cur)
                .expect("tree_chain_down: a is not an ancestor of b");
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Document;

    #[test]
    fn subtree_preorder_matches_interval() {
        let d = Document::from_parens("a(b(c d) e(f))");
        let b = d
            .iter()
            .find(|&n| d.label(n).as_str() == "b")
            .expect("b node");
        let via_trait = d.tree_subtree(b);
        let via_interval: Vec<NodeId> = d.subtree(b).collect();
        assert_eq!(via_trait, via_interval);
    }

    #[test]
    fn chain_down() {
        let d = Document::from_parens("a(b(c(d)))");
        let a = d.root();
        let dd = d.iter().find(|&n| d.label(n).as_str() == "d").unwrap();
        let chain: Vec<&str> = d
            .tree_chain_down(a, dd)
            .iter()
            .map(|&n| d.label(n).as_str())
            .collect();
        assert_eq!(chain, vec!["b", "c", "d"]);
    }

    #[test]
    fn depth_by_parent_chasing() {
        let d = Document::from_parens("a(b(c(d)) e)");
        let dd = d.iter().find(|&n| d.label(n).as_str() == "d").unwrap();
        assert_eq!(d.tree_depth(dd), 3);
        assert_eq!(d.tree_depth(d.root()), 0);
    }
}
