//! Incremental summary maintenance equals from-scratch summarization.

use smv_summary::Summary;
use smv_xml::{Document, IdScheme, LiveDoc, StructId, UpdateBatch};

/// Asserts the maintained summary agrees with `Summary::of(new_doc)` on
/// every path the new document still uses: counts, value counts,
/// distinct values, fan-outs and edge classes. (The maintained summary
/// may additionally hold dead paths at count zero — append-only by
/// design.)
fn assert_stats_match(maintained: &Summary, doc: &Document) {
    let fresh = Summary::of(doc);
    for n in fresh.iter() {
        let path = fresh.path_string(n);
        let m = maintained
            .node_by_path(&path)
            .unwrap_or_else(|| panic!("maintained summary lost path {path}"));
        assert_eq!(maintained.count(m), fresh.count(n), "count at {path}");
        assert_eq!(
            maintained.value_count(m),
            fresh.value_count(n),
            "values at {path}"
        );
        assert_eq!(
            maintained.distinct_values(m),
            fresh.distinct_values(n),
            "distinct at {path}"
        );
        assert_eq!(
            maintained.is_strong_edge(m),
            fresh.is_strong_edge(n),
            "strong at {path}"
        );
        assert_eq!(
            maintained.is_one_to_one_edge(m),
            fresh.is_one_to_one_edge(n),
            "one-to-one at {path}"
        );
        assert!(
            (maintained.avg_fanout(m) - fresh.avg_fanout(n)).abs() < 1e-12,
            "fanout at {path}"
        );
    }
    // dead paths carry no mass
    for n in maintained.iter() {
        if fresh.node_by_path(&maintained.path_string(n)).is_none() {
            assert_eq!(maintained.count(n), 0, "live path missing from fresh");
        }
    }
}

fn id_by_path(live: &LiveDoc, path: &[&str]) -> StructId {
    let mut n = live.doc().root();
    for step in path {
        n = *live
            .doc()
            .children(n)
            .iter()
            .find(|&&c| live.doc().label(c).as_str() == *step)
            .unwrap_or_else(|| panic!("no child {step}"));
    }
    live.ids().id(n).clone()
}

#[test]
fn insert_maintains_stats_exactly() {
    let mut live = LiveDoc::new(
        Document::from_parens(r#"r(a(b="1" c) a(b="2" c))"#),
        IdScheme::OrdPath,
    );
    let mut s = Summary::of(live.doc());
    let a0 = id_by_path(&live, &["a"]);
    let mut batch = UpdateBatch::new();
    // grows an existing path (b), adds a new path (d/e), revisits c
    batch.insert(a0, Document::from_parens(r#"d(e="9")"#));
    batch.insert(
        live.ids().id(live.doc().root()).clone(),
        Document::from_parens(r#"a(b="3" c)"#),
    );
    let applied = live.apply(&batch).unwrap();
    let created = s.apply_update(&applied, live.doc());
    assert!(created, "d/e are new paths");
    assert_stats_match(&s, live.doc());
}

#[test]
fn delete_maintains_stats_and_keeps_dead_paths() {
    let mut live = LiveDoc::new(
        Document::from_parens(r#"r(a(b="1" c(d="7")) a(b="2" c(d="8")) a(b="2"))"#),
        IdScheme::Dewey,
    );
    let mut s = Summary::of(live.doc());
    let token_before = s.geometry_token();
    // delete both c subtrees: path /r/a/c/d dies entirely
    let mut batch = UpdateBatch::new();
    for n in live.doc().iter() {
        if live.doc().label(n).as_str() == "c" {
            batch.delete(live.ids().id(n).clone());
        }
    }
    let applied = live.apply(&batch).unwrap();
    let created = s.apply_update(&applied, live.doc());
    assert!(!created, "deletions never create paths");
    assert_eq!(
        s.geometry_token(),
        token_before,
        "count-only maintenance must not invalidate the geometry"
    );
    assert_stats_match(&s, live.doc());
    let dead = s
        .node_by_path("/r/a/c/d")
        .expect("path survives at count 0");
    assert_eq!(s.count(dead), 0);
}

#[test]
fn mixed_batches_match_from_scratch_across_schemes() {
    for scheme in [IdScheme::OrdPath, IdScheme::Dewey, IdScheme::Sequential] {
        let mut live = LiveDoc::new(
            Document::from_parens(r#"r(a(b="1" b="1" c) a(b="2" c) x(y="5"))"#),
            scheme,
        );
        let mut s = Summary::of(live.doc());
        // batch 1: delete one b (a value duplicated elsewhere), insert under x
        let b0 = id_by_path(&live, &["a", "b"]);
        let x = id_by_path(&live, &["x"]);
        let mut batch = UpdateBatch::new();
        batch.delete(b0);
        batch.insert(x.clone(), Document::from_parens(r#"y="6""#));
        let applied = live.apply(&batch).unwrap();
        s.apply_update(&applied, live.doc());
        assert_stats_match(&s, live.doc());
        // batch 2: modify = delete + insert under the same parent
        let y = id_by_path(&live, &["x", "y"]);
        let mut batch = UpdateBatch::new();
        batch.delete(y);
        batch.insert(x, Document::from_parens(r#"y="7""#));
        let applied = live.apply(&batch).unwrap();
        s.apply_update(&applied, live.doc());
        assert_stats_match(&s, live.doc());
    }
}

#[test]
fn snapshot_preserves_token_and_freezes_stats() {
    let mut live = LiveDoc::new(
        Document::from_parens(r#"r(a="1" a="2")"#),
        IdScheme::OrdPath,
    );
    let mut s = Summary::of(live.doc());
    let snap = s.snapshot();
    assert_eq!(snap.geometry_token(), s.geometry_token());
    // maintenance that creates a path bumps the live token, not the snapshot
    let r = live.ids().id(live.doc().root()).clone();
    let mut batch = UpdateBatch::new();
    batch.insert(r, Document::from_parens("z"));
    let applied = live.apply(&batch).unwrap();
    assert!(s.apply_update(&applied, live.doc()));
    assert_ne!(snap.geometry_token(), s.geometry_token());
    let a = snap.node_by_path("/r/a").unwrap();
    assert_eq!(snap.count(a), 2, "snapshot stats frozen");
}
