//! # smv-summary — structural summaries (strong Dataguides)
//!
//! The paper's containment and rewriting algorithms operate *under the
//! constraints of a structural summary* (§2.3): the strong Dataguide \[15\]
//! of a document `d` is the tree `S(d)` containing exactly the rooted
//! simple paths occurring in `d`. We build it in a single linear pass, and
//! simultaneously derive the **enhanced summary** information of §4.1:
//!
//! * **strong edges** — every document node on the parent path has at
//!   least one child on the child path (a parent-child integrity
//!   constraint; drawn as thick edges in the paper's figures);
//! * **one-to-one edges** — every document node on the parent path has
//!   *exactly* one child on the child path (used to relax the nesting
//!   condition 2(b) of Proposition 4.2).
//!
//! The crate also provides conformance testing (`S |= d`), path lookup and
//! pretty-printing, incremental extension, and the statistics reported in
//! the paper's Table 1.

#![deny(clippy::print_stdout, clippy::print_stderr)]
pub mod dataguide;
pub mod stats;

pub use dataguide::{Summary, ValueHistogram};
pub use stats::SummaryStats;
