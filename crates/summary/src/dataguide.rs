//! Strong Dataguide construction and queries.

use smv_xml::{Document, Label, LabeledTree, NodeId, Value};
use std::collections::{HashMap, HashSet};

/// Distinct atomic values seen on a path are tracked exactly up to this
/// cap; beyond it the sketch saturates and reports the value count as an
/// upper bound (good enough for selectivity estimation).
const DISTINCT_CAP: usize = 1024;

/// Buckets of a saturated path's equi-width histogram.
const HIST_BUCKETS: usize = 64;

/// An end-biased equi-width histogram over a path's integer values,
/// built from the accepted distinct-value sample the moment its sketch
/// saturates and updated with every value seen afterwards.
///
/// The bucket range `[lo, hi]` is pinned to the sample's true extremes
/// (end-biased: the extreme values anchor the ends exactly); later
/// values falling outside land in dedicated overflow counters rather
/// than smearing the interior buckets. String values — unorderable
/// against the integer axis — are counted separately.
#[derive(Clone, Debug)]
pub struct ValueHistogram {
    lo: i64,
    /// Inclusive width of one bucket (≥ 1).
    width: i64,
    /// Bucket masses. Fractional because merging two histograms
    /// apportions source buckets across target boundaries exactly
    /// (mass-preserving) instead of rounding to integer counts.
    buckets: Vec<f64>,
    /// Values observed strictly below `lo` after the build, with the
    /// smallest seen (their mass is apportioned over `[below_min, lo)`).
    below: f64,
    below_min: i64,
    /// Values observed strictly above the bucketed range after the
    /// build, with the largest seen.
    above: f64,
    above_max: i64,
    strings: u64,
    total: u64,
}

impl ValueHistogram {
    /// Builds a histogram from the saturated sketch's sample; `None` when
    /// the sample holds no integers (an all-string path has no axis).
    fn build<'v>(sample: impl Iterator<Item = &'v Value>) -> Option<ValueHistogram> {
        let mut ints: Vec<i64> = Vec::new();
        let mut strings = 0u64;
        for v in sample {
            match v {
                Value::Int(i) => ints.push(*i),
                Value::Str(_) => strings += 1,
            }
        }
        let (&lo, &hi) = (ints.iter().min()?, ints.iter().max()?);
        // inclusive span, computed in u128 to survive extreme samples
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let width = span.div_ceil(HIST_BUCKETS as u128).max(1) as i64;
        let mut h = ValueHistogram {
            lo,
            width,
            buckets: vec![0.0; HIST_BUCKETS],
            below: 0.0,
            below_min: lo,
            above: 0.0,
            above_max: hi,
            strings,
            total: strings,
        };
        for i in ints {
            h.add_int(i);
            h.total += 1;
        }
        Some(h)
    }

    fn bucket_of(&self, v: i64) -> Option<usize> {
        if v < self.lo {
            return None;
        }
        let idx = ((v as i128 - self.lo as i128) / self.width as i128) as u128;
        (idx < self.buckets.len() as u128).then_some(idx as usize)
    }

    fn add_int(&mut self, v: i64) {
        match self.bucket_of(v) {
            Some(b) => self.buckets[b] += 1.0,
            None if v < self.lo => {
                self.below += 1.0;
                self.below_min = self.below_min.min(v);
            }
            None => {
                self.above += 1.0;
                self.above_max = self.above_max.max(v);
            }
        }
    }

    /// Folds one post-saturation value in.
    fn add(&mut self, v: &Value) {
        match v {
            Value::Int(i) => self.add_int(*i),
            Value::Str(_) => self.strings += 1,
        }
        self.total += 1;
    }

    /// Total values folded in (integers + strings).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// String values folded in (not on the integer axis).
    pub fn string_count(&self) -> u64 {
        self.strings
    }

    /// Estimated number of values inside the inclusive integer range
    /// `[a, b]`: full buckets count whole, partially overlapped buckets
    /// contribute their overlap fraction (uniform-within-bucket), and the
    /// overflow masses are apportioned uniformly over the observed
    /// overflow spans (`[below_min, lo)` and `(top, above_max]`).
    pub fn mass_in(&self, a: i64, b: i64) -> f64 {
        if a > b {
            return 0.0;
        }
        // fraction of `count` mass spread uniformly over [slo, shi] that
        // lands inside [a, b]
        let spread = |count: f64, slo: i128, shi: i128| -> f64 {
            if count == 0.0 || slo > shi {
                return 0.0;
            }
            let olo = (a as i128).max(slo);
            let ohi = (b as i128).min(shi);
            if olo > ohi {
                return 0.0;
            }
            count * ((ohi - olo + 1) as f64 / (shi - slo + 1) as f64)
        };
        let mut mass = 0.0;
        for (k, &count) in self.buckets.iter().enumerate() {
            let blo = self.lo as i128 + k as i128 * self.width as i128;
            mass += spread(count, blo, blo + self.width as i128 - 1);
        }
        mass += spread(self.below, self.below_min as i128, self.lo as i128 - 1);
        let top = self.lo as i128 + self.buckets.len() as i128 * self.width as i128 - 1;
        mass += spread(self.above, top + 1, self.above_max as i128);
        mass
    }

    /// Smallest integer any mass of this histogram covers.
    fn span_lo(&self) -> i64 {
        self.below_min.min(self.lo)
    }

    /// Largest integer any mass of this histogram covers.
    fn span_hi(&self) -> i64 {
        let top = self.lo as i128 + self.buckets.len() as i128 * self.width as i128 - 1;
        (self.above_max as i128).max(top).min(i64::MAX as i128) as i64
    }

    /// Spreads `count` mass uniformly over the inclusive integer span
    /// `[slo, shi]` into this histogram's buckets. The target range is
    /// assumed to cover the span (merge construction guarantees it).
    fn fold_span(&mut self, count: f64, slo: i128, shi: i128) {
        if count == 0.0 || slo > shi {
            return;
        }
        let span = (shi - slo + 1) as f64;
        for k in 0..self.buckets.len() {
            let blo = self.lo as i128 + k as i128 * self.width as i128;
            let bhi = blo + self.width as i128 - 1;
            let olo = slo.max(blo);
            let ohi = shi.min(bhi);
            if olo <= ohi {
                self.buckets[k] += count * ((ohi - olo + 1) as f64 / span);
            }
        }
    }

    /// Merges two histograms into one spanning both ranges,
    /// **mass-exactly**: the merged `total`, `string_count` and overall
    /// integer mass are the sums of the inputs'; sub-range masses agree
    /// with the inputs' up to the uniform-within-bucket re-apportioning
    /// that re-bucketing implies. Used when two independently built
    /// per-shard summaries are merged.
    pub fn merge(&self, other: &ValueHistogram) -> ValueHistogram {
        let lo = self.span_lo().min(other.span_lo());
        let hi = self.span_hi().max(other.span_hi());
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let width = span.div_ceil(HIST_BUCKETS as u128).max(1) as i64;
        let mut h = ValueHistogram {
            lo,
            width,
            buckets: vec![0.0; HIST_BUCKETS],
            below: 0.0,
            below_min: lo,
            above: 0.0,
            above_max: hi,
            strings: self.strings + other.strings,
            total: self.total + other.total,
        };
        for src in [self, other] {
            for (k, &count) in src.buckets.iter().enumerate() {
                let blo = src.lo as i128 + k as i128 * src.width as i128;
                h.fold_span(count, blo, blo + src.width as i128 - 1);
            }
            h.fold_span(src.below, src.below_min as i128, src.lo as i128 - 1);
            let top = src.lo as i128 + src.buckets.len() as i128 * src.width as i128 - 1;
            h.fold_span(src.above, top + 1, src.above_max as i128);
        }
        h
    }
}

/// A capped distinct-value sketch for one summary path. While unsaturated
/// it is the exact distinct-value set; on saturation it converts its
/// sample into a [`ValueHistogram`] and keeps folding subsequent values
/// into the buckets.
#[derive(Clone, Debug, Default)]
struct ValueSketch {
    seen: HashSet<Value>,
    saturated: bool,
    hist: Option<ValueHistogram>,
}

impl ValueSketch {
    fn insert(&mut self, v: &Value) {
        if self.saturated {
            if let Some(h) = &mut self.hist {
                h.add(v);
            }
            return;
        }
        if self.seen.contains(v) {
            return; // duplicates never saturate an exactly-tracked set
        }
        if self.seen.len() >= DISTINCT_CAP {
            self.saturated = true;
            self.hist = ValueHistogram::build(self.seen.iter());
            self.seen = HashSet::new(); // release the memory
            if let Some(h) = &mut self.hist {
                h.add(v);
            }
            return;
        }
        self.seen.insert(v.clone());
    }

    /// Merges another sketch in. Two unsaturated sketches union their
    /// exact sets (order-independent, hence *exactly* what sequential
    /// ingest of the combined streams would hold), saturating if the
    /// union overflows the cap; a saturated side contributes its
    /// histogram, with the unsaturated side's sample folded in; two
    /// saturated sides merge histograms mass-exactly
    /// ([`ValueHistogram::merge`]).
    ///
    /// A side that saturated **without an integer axis** (`hist:
    /// None` — its sample was all strings) poisons the merge to
    /// `None`: sequential ingest would have kept that path
    /// histogram-free, so estimators fall back to the blanket range
    /// selectivity instead of trusting a histogram fabricated from the
    /// other side's (unrepresentative) values.
    fn merge(&mut self, other: &ValueSketch) {
        match (self.saturated, other.saturated) {
            (false, false) => {
                self.seen.extend(other.seen.iter().cloned());
                if self.seen.len() > DISTINCT_CAP {
                    self.saturated = true;
                    self.hist = ValueHistogram::build(self.seen.iter());
                    self.seen = HashSet::new();
                }
            }
            (false, true) => {
                let mut hist = other.hist.clone();
                if let Some(h) = &mut hist {
                    for v in &self.seen {
                        h.add(v);
                    }
                }
                self.hist = hist;
                self.saturated = true;
                self.seen = HashSet::new();
            }
            (true, false) => {
                if let Some(h) = &mut self.hist {
                    for v in &other.seen {
                        h.add(v);
                    }
                }
            }
            (true, true) => {
                self.hist = match (&self.hist, &other.hist) {
                    (Some(a), Some(b)) => Some(a.merge(b)),
                    _ => None,
                };
            }
        }
    }
}

#[derive(Clone, Debug)]
struct SNode {
    label: Label,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Pre-order rank (node *ids* are creation-order, which interleaves
    /// sibling subtrees when paths are discovered out of order, so the
    /// ancestor test needs explicit ranks).
    pre: u32,
    /// Pre-order rank of the last descendant.
    last_desc: u32,
    depth: u32,
    /// Number of document nodes on this path.
    count: u64,
    /// Number of document nodes on the *parent* path having at least one
    /// child on this path.
    parents_with: u64,
    /// Number of document nodes on this path carrying an atomic value.
    values: u64,
    /// Distinct atomic values seen on this path (capped sketch).
    distinct: ValueSketch,
    /// Edge from the parent is strong (§4.1).
    strong: bool,
    /// Edge from the parent is one-to-one (§4.5).
    one_to_one: bool,
}

/// The strong Dataguide of one or more documents, with enhanced-summary
/// (integrity-constraint) annotations.
///
/// Summary nodes are [`NodeId`]s into the summary's own arena, in
/// pre-order; the paper's "paths" *are* these nodes (§2.3 identifies a path
/// with its summary node).
#[derive(Debug)]
pub struct Summary {
    nodes: Vec<SNode>,
    /// Documents folded into this summary (for conformance bookkeeping).
    docs: usize,
    /// Process-unique instance identity (see [`Summary::geometry_token`]).
    id: u64,
    /// Bumped on every structural mutation (extension / merge), so a
    /// geometry snapshot taken before a mutation can be detected as
    /// stale.
    geometry_gen: u64,
}

/// Process-unique summary instance ids; clones get fresh ones so two
/// lineages that diverge after a clone can never share a token.
fn next_summary_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Clone for Summary {
    fn clone(&self) -> Summary {
        Summary {
            nodes: self.nodes.clone(),
            docs: self.docs,
            id: next_summary_id(),
            geometry_gen: self.geometry_gen,
        }
    }
}

impl Summary {
    /// Builds the summary of a document in one linear pass.
    pub fn of(doc: &Document) -> Summary {
        let mut s = Summary {
            nodes: Vec::new(),
            docs: 0,
            id: next_summary_id(),
            geometry_gen: 0,
        };
        s.extend_with(doc);
        s
    }

    /// An opaque token identifying this summary's current geometry (the
    /// pre-order ranks behind [`Summary::pre_rank`] /
    /// [`Summary::last_descendant_rank`]). Equal tokens guarantee the
    /// two snapshots were taken from the *same summary instance in the
    /// same state* — extensions and merges renumber the ranks and bump
    /// the token, and clones get a fresh identity. The sharded catalog
    /// stamps extent partitions with it so the parallel executor only
    /// compares path geometry across partitions it is actually valid to
    /// compare.
    pub fn geometry_token(&self) -> (u64, u64) {
        (self.id, self.geometry_gen)
    }

    /// Folds another document into the summary (linear time, as \[15\]
    /// promises for Dataguides over tree data). The root labels must agree.
    ///
    /// ```
    /// use smv_summary::Summary;
    /// use smv_xml::Document;
    ///
    /// let mut s = Summary::of(&Document::from_parens(r#"r(a(b="1"))"#));
    /// s.extend_with(&Document::from_parens(r#"r(a(b="2" c))"#));
    /// let b = s.node_by_path("/r/a/b").unwrap();
    /// assert_eq!(s.count(b), 2, "counts accumulate across documents");
    /// assert!(s.node_by_path("/r/a/c").is_some(), "new paths are added");
    /// ```
    pub fn extend_with(&mut self, doc: &Document) {
        if self.nodes.is_empty() {
            self.nodes.push(SNode {
                label: doc.label(doc.root()),
                parent: None,
                children: Vec::new(),
                pre: 0,
                last_desc: 0,
                depth: 0,
                count: 0,
                parents_with: 0,
                values: 0,
                distinct: ValueSketch::default(),
                strong: false,
                one_to_one: false,
            });
        }
        assert_eq!(
            self.nodes[0].label,
            doc.label(doc.root()),
            "summary and document root labels must agree"
        );
        self.docs += 1;
        // map document node -> summary node, exploiting document order:
        // a node's parent is processed before the node itself.
        let mut doc2sum: Vec<NodeId> = vec![NodeId(0); doc.len()];
        // (summary parent, label) -> summary child
        let mut edge: HashMap<(u32, Label), NodeId> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            for &c in &n.children {
                edge.insert((i as u32, self.nodes[c.idx()].label), c);
            }
        }
        self.nodes[0].count += 1;
        for dn in doc.iter().skip(1) {
            let sp = doc2sum[doc.parent(dn).expect("non-root has parent").idx()];
            let label = doc.label(dn);
            let sn = match edge.get(&(sp.0, label)) {
                Some(&sn) => sn,
                None => {
                    let sn = NodeId(self.nodes.len() as u32);
                    self.nodes.push(SNode {
                        label,
                        parent: Some(sp),
                        children: Vec::new(),
                        pre: 0,
                        last_desc: 0,
                        depth: self.nodes[sp.idx()].depth + 1,
                        count: 0,
                        parents_with: 0,
                        values: 0,
                        distinct: ValueSketch::default(),
                        strong: false,
                        one_to_one: false,
                    });
                    self.nodes[sp.idx()].children.push(sn);
                    edge.insert((sp.0, label), sn);
                    sn
                }
            };
            doc2sum[dn.idx()] = sn;
            self.nodes[sn.idx()].count += 1;
        }
        // per-path value statistics (selectivity estimation)
        for dn in doc.iter() {
            if let Some(v) = doc.value(dn) {
                let sn = doc2sum[dn.idx()];
                self.nodes[sn.idx()].values += 1;
                self.nodes[sn.idx()].distinct.insert(v);
            }
        }
        // strong / one-to-one detection: for every document node, count its
        // children per summary child.
        let mut with_child: HashMap<(u32, u32), u64> = HashMap::new(); // (doc node, summary child) -> #children
        for dn in doc.iter() {
            for &c in doc.children(dn) {
                *with_child.entry((dn.0, doc2sum[c.idx()].0)).or_insert(0) += 1;
            }
        }
        let mut parents_with: HashMap<u32, u64> = HashMap::new();
        for &(_, sc) in with_child.keys() {
            *parents_with.entry(sc).or_insert(0) += 1;
        }
        for (sc, pw) in parents_with {
            self.nodes[sc as usize].parents_with += pw;
        }
        self.refresh_edge_classes();
        self.recompute_order();
        self.geometry_gen += 1;
    }

    /// Folds a batch of documents into the summary, building per-shard
    /// partial summaries on `threads` workers and merging them — the
    /// batched/streaming counterpart of [`Summary::extend_with`] for
    /// multi-document stores. Each worker summarizes a contiguous slice
    /// of `docs` independently ([`Summary::of`] + [`Summary::extend_with`]),
    /// and the partials are merged in slice order
    /// ([`Summary::merge_from`]).
    ///
    /// Paths, edge classes, node/value counts, fan-outs, and
    /// *unsaturated* distinct sketches come out exactly equal to
    /// sequential ingest, whatever `threads` is. The one
    /// thread-count-sensitive artifact is a **saturated** sketch's
    /// histogram: its bucket geometry derives from the sample each
    /// shard saturated on, so different shard boundaries can bucket the
    /// same mass differently (just as sequential ingest's histogram
    /// depends on document order). Total mass is preserved exactly
    /// either way ([`ValueHistogram::merge`]).
    ///
    /// `threads == 0` uses the host's available parallelism; `1` ingests
    /// sequentially.
    ///
    /// ```
    /// use smv_summary::Summary;
    /// use smv_xml::Document;
    ///
    /// let docs: Vec<Document> = (0..8)
    ///     .map(|i| Document::from_parens(&format!(r#"r(a(b="{i}"))"#)))
    ///     .collect();
    /// let mut parallel = Summary::of(&docs[0]);
    /// parallel.extend_with_batch(&docs[1..], 4);
    ///
    /// let mut sequential = Summary::of(&docs[0]);
    /// for d in &docs[1..] {
    ///     sequential.extend_with(d);
    /// }
    /// let b = parallel.node_by_path("/r/a/b").unwrap();
    /// assert_eq!(parallel.count(b), sequential.count(b));
    /// assert_eq!(parallel.distinct_values(b), sequential.distinct_values(b));
    /// ```
    pub fn extend_with_batch(&mut self, docs: &[Document], threads: usize) {
        let threads = smv_xml::par::resolve_threads(threads).min(docs.len().max(1));
        if threads <= 1 {
            // sequential ingest never touches the pool
            for d in docs {
                self.extend_with(d);
            }
            return;
        }
        self.extend_with_batch_on(docs, threads, smv_xml::par::WorkerPool::global());
    }

    /// [`extend_with_batch`](Summary::extend_with_batch) drawing its
    /// parallelism from an explicit [`WorkerPool`](smv_xml::par::WorkerPool)
    /// — the same queue query execution runs on, so ingest and queries
    /// interleave at morsel granularity instead of fighting over cores
    /// with a second thread set. `threads` is clamped to the batch size;
    /// `0` means the whole pool.
    pub fn extend_with_batch_on(
        &mut self,
        docs: &[Document],
        threads: usize,
        pool: &smv_xml::par::WorkerPool,
    ) {
        let threads = match threads {
            0 => pool.size(),
            n => n,
        }
        .min(docs.len().max(1));
        if threads <= 1 {
            for d in docs {
                self.extend_with(d);
            }
            return;
        }
        let slices: Vec<&[Document]> = docs.chunks(docs.len().div_ceil(threads)).collect();
        let partials = pool.pool_map(threads, slices.len(), |i| {
            let slice = slices[i];
            let mut s = Summary::of(&slice[0]);
            for d in &slice[1..] {
                s.extend_with(d);
            }
            s
        });
        for p in &partials {
            self.merge_from(p);
        }
    }

    /// Merges another summary (built over *other* documents of the same
    /// root label) into this one: paths are unioned, per-path statistics
    /// (node counts, valued-node counts, parent-with-child counts) add up
    /// exactly, distinct-value sketches union exactly while unsaturated,
    /// and saturated sketches merge their histograms mass-exactly.
    /// Strong/one-to-one edge classes and pre-order ranks are recomputed
    /// from the merged counts.
    pub fn merge_from(&mut self, other: &Summary) {
        if other.nodes.is_empty() {
            return;
        }
        if self.nodes.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.nodes[0].label, other.nodes[0].label,
            "summaries being merged must share the root label"
        );
        // other's nodes are in creation order, so a node's parent is
        // always mapped before the node itself
        let mut map: Vec<NodeId> = vec![NodeId(0); other.nodes.len()];
        for (i, on) in other.nodes.iter().enumerate() {
            let sn = match on.parent {
                None => NodeId(0),
                Some(op) => {
                    let sp = map[op.idx()];
                    match self
                        .children(sp)
                        .iter()
                        .copied()
                        .find(|&c| self.label(c) == on.label)
                    {
                        Some(c) => c,
                        None => {
                            let c = NodeId(self.nodes.len() as u32);
                            self.nodes.push(SNode {
                                label: on.label,
                                parent: Some(sp),
                                children: Vec::new(),
                                pre: 0,
                                last_desc: 0,
                                depth: self.nodes[sp.idx()].depth + 1,
                                count: 0,
                                parents_with: 0,
                                values: 0,
                                distinct: ValueSketch::default(),
                                strong: false,
                                one_to_one: false,
                            });
                            self.nodes[sp.idx()].children.push(c);
                            c
                        }
                    }
                }
            };
            map[i] = sn;
            let tn = &mut self.nodes[sn.idx()];
            tn.count += on.count;
            tn.parents_with += on.parents_with;
            tn.values += on.values;
            tn.distinct.merge(&on.distinct);
        }
        self.docs += other.docs;
        self.refresh_edge_classes();
        self.recompute_order();
        self.geometry_gen += 1;
    }

    /// Recomputes strong/one-to-one flags from counts.
    fn refresh_edge_classes(&mut self) {
        for i in 1..self.nodes.len() {
            let parent = self.nodes[i].parent.expect("non-root").idx();
            let parent_count = self.nodes[parent].count;
            let n = &mut self.nodes[i];
            n.strong = n.parents_with == parent_count && parent_count > 0;
            n.one_to_one = n.strong && n.count == parent_count;
        }
    }

    /// Rebuilds the pre-order ranks and descendant intervals after
    /// extension. Node ids remain stable (creation order); ancestor tests
    /// use the ranks.
    fn recompute_order(&mut self) {
        fn walk(nodes: &mut Vec<SNode>, n: usize, next: &mut u32) -> u32 {
            let pre = *next;
            *next += 1;
            nodes[n].pre = pre;
            let mut last = pre;
            let children = nodes[n].children.clone();
            for c in children {
                last = last.max(walk(nodes, c.idx(), next));
            }
            nodes[n].last_desc = last;
            last
        }
        let mut next = 0;
        walk(&mut self.nodes, 0, &mut next);
    }

    /// Number of summary nodes (`|S|`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no document has been summarized yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root path node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Label of a summary node.
    pub fn label(&self, n: NodeId) -> Label {
        self.nodes[n.idx()].label
    }

    /// Parent path.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.idx()].parent
    }

    /// Child paths.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.idx()].children
    }

    /// Depth (root = 0); also the number of `/`-steps in the path.
    pub fn depth(&self, n: NodeId) -> u32 {
        self.nodes[n.idx()].depth
    }

    /// Number of document nodes on this path.
    pub fn count(&self, n: NodeId) -> u64 {
        self.nodes[n.idx()].count
    }

    /// Number of document nodes on this path carrying an atomic value.
    pub fn value_count(&self, n: NodeId) -> u64 {
        self.nodes[n.idx()].values
    }

    /// Estimated number of distinct atomic values on this path. Exact up
    /// to an internal cap; saturated paths report the value count (an
    /// upper bound, which makes equality selectivities conservative).
    pub fn distinct_values(&self, n: NodeId) -> u64 {
        let nd = &self.nodes[n.idx()];
        if nd.distinct.saturated {
            nd.values
        } else {
            nd.distinct.seen.len() as u64
        }
    }

    /// The exact distinct-value sample for a path, when the sketch has
    /// not saturated (`None` once it has). While unsaturated the sketch
    /// *is* the full distinct-value set — in particular its extremes are
    /// the true min/max — so callers can derive end-biased range
    /// selectivities from it instead of guessing.
    pub fn distinct_sample(&self, n: NodeId) -> Option<impl Iterator<Item = &Value> + '_> {
        let nd = &self.nodes[n.idx()];
        (!nd.distinct.saturated).then(|| nd.distinct.seen.iter())
    }

    /// The end-biased equi-width histogram of a path whose distinct
    /// sketch has saturated (`None` while the exact sample is still
    /// available via [`Summary::distinct_sample`], or when the saturated
    /// sample held no integers to span an axis with).
    pub fn value_histogram(&self, n: NodeId) -> Option<&ValueHistogram> {
        self.nodes[n.idx()].distinct.hist.as_ref()
    }

    /// Average number of children on path `n` per document node on the
    /// parent path (the child fan-out of the summary edge into `n`). For
    /// the root this is the node count itself (one root per document).
    pub fn avg_fanout(&self, n: NodeId) -> f64 {
        let nd = &self.nodes[n.idx()];
        match nd.parent {
            None => nd.count as f64,
            Some(p) => {
                let pc = self.nodes[p.idx()].count;
                if pc == 0 {
                    0.0
                } else {
                    nd.count as f64 / pc as f64
                }
            }
        }
    }

    /// Total document nodes summarized — the sum of the per-path counts,
    /// the single source of truth for Table 1's node totals.
    pub fn doc_node_count(&self) -> u64 {
        self.nodes.iter().map(|n| n.count).sum()
    }

    /// Is the edge from `n`'s parent to `n` strong (§4.1)?
    pub fn is_strong_edge(&self, n: NodeId) -> bool {
        self.nodes[n.idx()].strong
    }

    /// Is the edge from `n`'s parent to `n` one-to-one (§4.5)?
    pub fn is_one_to_one_edge(&self, n: NodeId) -> bool {
        self.nodes[n.idx()].one_to_one
    }

    /// Overrides the strong flag (used by tests and by DTD-derived
    /// constraints that are not observable from one sample document).
    pub fn set_strong_edge(&mut self, n: NodeId, strong: bool) {
        self.nodes[n.idx()].strong = strong;
        if !strong {
            self.nodes[n.idx()].one_to_one = false;
        }
    }

    /// Overrides the one-to-one flag.
    pub fn set_one_to_one_edge(&mut self, n: NodeId, one: bool) {
        self.nodes[n.idx()].one_to_one = one;
        if one {
            self.nodes[n.idx()].strong = true;
        }
    }

    /// Pre-order rank of a path node (recomputed after every extension).
    /// Together with [`Summary::last_descendant_rank`] this is the O(1)
    /// interval geometry behind [`Summary::is_ancestor`]; the sharded
    /// catalog copies it into extent shards so the executor can decide
    /// path-pair joinability without a summary in hand.
    pub fn pre_rank(&self, n: NodeId) -> u32 {
        self.nodes[n.idx()].pre
    }

    /// Pre-order rank of the path's last descendant: `a` is a proper
    /// ancestor of `b` iff `pre_rank(a) < pre_rank(b) &&
    /// pre_rank(b) <= last_descendant_rank(a)`.
    pub fn last_descendant_rank(&self, n: NodeId) -> u32 {
        self.nodes[n.idx()].last_desc
    }

    /// Proper-ancestor test between paths, O(1) via pre-order intervals.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let an = &self.nodes[a.idx()];
        let bp = self.nodes[b.idx()].pre;
        an.pre < bp && bp <= an.last_desc
    }

    /// Parent test between paths.
    pub fn is_parent(&self, a: NodeId, b: NodeId) -> bool {
        self.nodes[b.idx()].parent == Some(a)
    }

    /// Iterates all paths in pre-order... of creation order; use
    /// [`Summary::children`] for structure.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The `/l1/l2/.../lk` string for a path node.
    pub fn path_string(&self, n: NodeId) -> String {
        let mut labels = Vec::new();
        let mut cur = Some(n);
        while let Some(c) = cur {
            labels.push(self.label(c));
            cur = self.parent(c);
        }
        labels.reverse();
        let mut out = String::new();
        for l in labels {
            out.push('/');
            out.push_str(l.as_str());
        }
        out
    }

    /// Looks up a path node by its `/l1/l2/...` string.
    pub fn node_by_path(&self, path: &str) -> Option<NodeId> {
        let mut cur = self.root();
        let mut steps = path.split('/').filter(|s| !s.is_empty());
        match steps.next() {
            Some(first) if first == self.label(cur).as_str() => {}
            _ => return None,
        }
        for step in steps {
            let label = Label::intern(step);
            cur = *self
                .children(cur)
                .iter()
                .find(|&&c| self.label(c) == label)?;
        }
        Some(cur)
    }

    /// The summary node for each document node — the mapping `φ : d → S(d)`
    /// of §2.3. Returns `None` if some document path is absent from the
    /// summary (the document does not conform).
    pub fn classify(&self, doc: &Document) -> Option<Vec<NodeId>> {
        if self.nodes.is_empty() || self.nodes[0].label != doc.label(doc.root()) {
            return None;
        }
        let mut map = vec![NodeId(0); doc.len()];
        for dn in doc.iter().skip(1) {
            let sp = map[doc.parent(dn).unwrap().idx()];
            let label = doc.label(dn);
            let sn = self
                .children(sp)
                .iter()
                .copied()
                .find(|&c| self.label(c) == label)?;
            map[dn.idx()] = sn;
        }
        Some(map)
    }

    /// `S |= d` in the *plain* sense: every path of `d` occurs in `S`.
    ///
    /// Note the paper defines conformance as `S(d) = S` exactly; for
    /// containment soundness only the ⊆ direction matters (a document
    /// using fewer paths cannot create new matches), and the ⊆ form is
    /// what the rewriting engine needs when a store holds many documents.
    /// [`Summary::conforms_exactly`] provides the strict check.
    pub fn conforms(&self, doc: &Document) -> bool {
        self.classify(doc).is_some()
    }

    /// Strict `S(d) = S` conformance.
    pub fn conforms_exactly(&self, doc: &Document) -> bool {
        match self.classify(doc) {
            None => false,
            Some(map) => {
                let mut seen = vec![false; self.nodes.len()];
                for s in map {
                    seen[s.idx()] = true;
                }
                seen.into_iter().all(|b| b)
            }
        }
    }

    /// Enhanced conformance: plain conformance plus every strong /
    /// one-to-one constraint holds in `d` (§4.1).
    pub fn conforms_enhanced(&self, doc: &Document) -> bool {
        let Some(map) = self.classify(doc) else {
            return false;
        };
        for dn in doc.iter() {
            let sn = map[dn.idx()];
            for &sc in self.children(sn) {
                let need_strong = self.is_strong_edge(sc);
                let need_one = self.is_one_to_one_edge(sc);
                if !need_strong && !need_one {
                    continue;
                }
                let k = doc
                    .children(dn)
                    .iter()
                    .filter(|&&c| map[c.idx()] == sc)
                    .count();
                if need_strong && k == 0 {
                    return false;
                }
                if need_one && k != 1 {
                    return false;
                }
            }
        }
        true
    }

    /// Number of documents folded in.
    pub fn document_count(&self) -> usize {
        self.docs
    }

    // ---- incremental maintenance (live document updates) ----
    //
    // The methods below keep a summary exact while its document changes
    // in place, instead of re-summarizing from scratch. They are the
    // smv-summary half of epoch maintenance (see smv-views): counts,
    // value counts and interior fan-out statistics update additively /
    // subtractively; distinct sketches — which cannot subtract — are
    // rebuilt per dirty path from the surviving values. Summary paths
    // are **append-only**: a path whose count drops to zero keeps its
    // node, so summary `NodeId`s (which shard partitions and classify
    // maps key on) stay stable across maintenance. This trades a little
    // precision (a dead path admits more documents, which is sound for
    // containment — conformance is a ⊆ check) for never invalidating a
    // partition that didn't structurally change.

    /// A token-preserving copy: same instance id, same geometry
    /// generation, so [`Summary::geometry_token`] of the snapshot equals
    /// the original's *at this moment*. Used by the epoch catalog to
    /// freeze per-epoch statistics: the live summary keeps mutating (and
    /// bumps its generation on any structural change), while the
    /// snapshot stays comparable to partitions stamped before the
    /// mutation. Contrast [`Clone`], which deliberately severs the
    /// lineage with a fresh id.
    pub fn snapshot(&self) -> Summary {
        Summary {
            nodes: self.nodes.clone(),
            docs: self.docs,
            id: self.id,
            geometry_gen: self.geometry_gen,
        }
    }

    /// Folds the subtree of `doc` rooted at `root` into the summary,
    /// hanging the root's path under the existing path `under` (the
    /// summary node of the root's *parent* in `doc`). Node counts, value
    /// counts, distinct sketches and **interior** fan-out statistics
    /// (`parents_with` for edges whose parent node lies inside the
    /// subtree) update exactly; the boundary edge — whether `root`'s
    /// document parent newly gained a child on the root's path — is the
    /// caller's to settle via [`Summary::adjust_parents_with`], because
    /// only the caller can see the before/after child sets of the
    /// parent.
    ///
    /// Returns `true` when the subtree introduced paths the summary had
    /// never seen (the geometry generation is bumped and pre-order ranks
    /// recomputed).
    pub fn graft_subtree(&mut self, doc: &Document, root: NodeId, under: NodeId) -> bool {
        let mut created = false;
        // map for the grafted subtree only, keyed by arena index
        let mut sub2sum: HashMap<u32, NodeId> = HashMap::new();
        for dn in doc.subtree(root) {
            let sp = if dn == root {
                under
            } else {
                sub2sum[&doc.parent(dn).expect("subtree interior").0]
            };
            let label = doc.label(dn);
            let sn = match self
                .children(sp)
                .iter()
                .copied()
                .find(|&c| self.label(c) == label)
            {
                Some(c) => c,
                None => {
                    created = true;
                    let c = NodeId(self.nodes.len() as u32);
                    self.nodes.push(SNode {
                        label,
                        parent: Some(sp),
                        children: Vec::new(),
                        pre: 0,
                        last_desc: 0,
                        depth: self.nodes[sp.idx()].depth + 1,
                        count: 0,
                        parents_with: 0,
                        values: 0,
                        distinct: ValueSketch::default(),
                        strong: false,
                        one_to_one: false,
                    });
                    self.nodes[sp.idx()].children.push(c);
                    c
                }
            };
            sub2sum.insert(dn.0, sn);
            self.nodes[sn.idx()].count += 1;
            if let Some(v) = doc.value(dn) {
                self.nodes[sn.idx()].values += 1;
                self.nodes[sn.idx()].distinct.insert(v);
            }
        }
        // interior fan-out: every subtree node is brand new, so it "has a
        // child on path sc" for each distinct child path exactly once
        for dn in doc.subtree(root) {
            let mut seen: Vec<NodeId> = Vec::new();
            for &c in doc.children(dn) {
                if c.0 > doc.last_descendant(root).0 || c.0 < root.0 {
                    continue; // outside the graft (cannot happen for a subtree)
                }
                let sc = sub2sum[&c.0];
                if !seen.contains(&sc) {
                    seen.push(sc);
                    self.nodes[sc.idx()].parents_with += 1;
                }
            }
        }
        if created {
            self.recompute_order();
            self.geometry_gen += 1;
        }
        created
    }

    /// Subtracts the subtree of `doc` (a *previous* document version)
    /// rooted at `root` from the summary. `map` is a classify map of
    /// that document version against this summary
    /// ([`Summary::classify`]); paths stay in place even at count zero.
    /// Interior fan-out statistics subtract exactly (a dying node "had a
    /// child on path sc" exactly once per distinct child path); the
    /// boundary edge is again the caller's, via
    /// [`Summary::adjust_parents_with`].
    ///
    /// Distinct-value sketches cannot subtract; instead the summary
    /// paths that lost valued nodes are returned (deduplicated) so the
    /// caller can re-derive them from the surviving document with
    /// [`Summary::rebuild_path_values`].
    pub fn prune_subtree(&mut self, doc: &Document, map: &[NodeId], root: NodeId) -> Vec<NodeId> {
        let mut dirty: Vec<NodeId> = Vec::new();
        for dn in doc.subtree(root) {
            let sn = map[dn.idx()];
            let node = &mut self.nodes[sn.idx()];
            debug_assert!(node.count > 0, "pruning below zero on {sn:?}");
            node.count -= 1;
            if doc.value(dn).is_some() {
                node.values -= 1;
                if !dirty.contains(&sn) {
                    dirty.push(sn);
                }
            }
            let mut seen: Vec<NodeId> = Vec::new();
            for &c in doc.children(dn) {
                let sc = map[c.idx()];
                if !seen.contains(&sc) {
                    seen.push(sc);
                    self.nodes[sc.idx()].parents_with -= 1;
                }
            }
        }
        dirty
    }

    /// Adjusts the `parents_with` statistic of `path` by `delta` — the
    /// boundary bookkeeping for [`Summary::graft_subtree`] /
    /// [`Summary::prune_subtree`]: +1 when a surviving parent gained its
    /// first child on `path`, −1 when it lost its last, 0 when it had
    /// children on the path both before and after the batch.
    pub fn adjust_parents_with(&mut self, path: NodeId, delta: i64) {
        let n = &mut self.nodes[path.idx()];
        n.parents_with = n
            .parents_with
            .checked_add_signed(delta)
            .expect("parents_with underflow");
    }

    /// Rebuilds the distinct-value sketch (and re-derives the valued-node
    /// count) of each path in `dirty` from the current document — the
    /// exact-subtraction escape hatch for deletions: while a sketch is
    /// unsaturated this reproduces precisely what from-scratch ingest of
    /// `doc` would hold for that path.
    pub fn rebuild_path_values(&mut self, dirty: &[NodeId], doc: &Document) {
        if dirty.is_empty() {
            return;
        }
        let map = self
            .classify(doc)
            .expect("maintained document conforms to its summary");
        self.rebuild_path_values_classified(dirty, doc, &map);
    }

    /// [`Self::rebuild_path_values`] against a precomputed classification
    /// of `doc` (`map[node] = summary path`).
    pub fn rebuild_path_values_classified(
        &mut self,
        dirty: &[NodeId],
        doc: &Document,
        map: &[NodeId],
    ) {
        let mut is_dirty = vec![false; self.nodes.len()];
        for &p in dirty {
            self.nodes[p.idx()].distinct = ValueSketch::default();
            self.nodes[p.idx()].values = 0;
            is_dirty[p.idx()] = true;
        }
        for dn in doc.iter() {
            let sn = map[dn.idx()];
            if !is_dirty[sn.idx()] {
                continue;
            }
            if let Some(v) = doc.value(dn) {
                self.nodes[sn.idx()].values += 1;
                self.nodes[sn.idx()].distinct.insert(v);
            }
        }
    }

    /// Recomputes the strong / one-to-one edge classes from the current
    /// counts. Call once after a round of maintenance deltas (the delta
    /// methods leave classes untouched so a batch pays the O(|S|) sweep
    /// once, not per operation).
    pub fn refresh_stats(&mut self) {
        self.refresh_edge_classes();
    }

    /// Maintains this summary across one applied live-document batch
    /// ([`smv_xml::LiveDoc::apply`]): prunes deleted subtrees, grafts
    /// inserted fragments, settles the boundary fan-out deltas from the
    /// parents' before/after child sets, rebuilds dirty value sketches
    /// from the surviving document, and refreshes edge classes. Returns
    /// `true` when the batch introduced new paths (geometry changed, so
    /// anything stamped with the old [`Summary::geometry_token`] is now
    /// stale).
    ///
    /// Statistics come out exactly as additive arithmetic dictates:
    /// counts, value counts, fan-outs and unsaturated distinct sets all
    /// equal what from-scratch summarization of `new_doc` yields on the
    /// paths `new_doc` still uses. The one deliberate difference is that
    /// paths are append-only — a path whose last node died keeps its
    /// summary node at count zero, preserving summary `NodeId` stability
    /// for everything keyed on it.
    pub fn apply_update(&mut self, applied: &smv_xml::AppliedBatch, new_doc: &Document) -> bool {
        let old_map = self
            .classify(&applied.old_doc)
            .expect("the maintained document conforms to its summary");
        self.apply_update_with(applied, new_doc, &old_map).0
    }

    /// [`Self::apply_update`] with the pre-update document's
    /// classification supplied by the caller — maintainers that keep the
    /// live document's classification across batches (e.g. to derive
    /// shard-pruning intervals for deletions) skip an O(doc) pass. Hands
    /// back the post-update classification of `new_doc`, derived
    /// incrementally rather than re-searched: paths are append-only, so
    /// surviving nodes keep their summary nodes, and only inserted
    /// subtrees classify against the freshly grafted geometry. The
    /// returned map is taken after all prune/graft geometry changes and
    /// stays valid afterwards — callers can cache it for the next batch
    /// and re-shard extents against the updated summary with it.
    pub fn apply_update_with(
        &mut self,
        applied: &smv_xml::AppliedBatch,
        new_doc: &Document,
        old_map: &[NodeId],
    ) -> (bool, Vec<NodeId>) {
        let old_doc = &applied.old_doc;
        let mut new_to_old: Vec<Option<NodeId>> = vec![None; new_doc.len()];
        for (o, n) in applied.old_to_new.iter().enumerate() {
            if let Some(n) = n {
                new_to_old[n.idx()] = Some(NodeId(o as u32));
            }
        }
        let mut dirty: Vec<NodeId> = Vec::new();
        for &r in &applied.deleted_roots {
            for p in self.prune_subtree(old_doc, old_map, r) {
                if !dirty.contains(&p) {
                    dirty.push(p);
                }
            }
        }
        let mut created = false;
        for &r in &applied.inserted_roots {
            let p_new = new_doc.parent(r).expect("fragment root has a parent");
            let p_old = new_to_old[p_new.idx()].expect("insert parents survive");
            created |= self.graft_subtree(new_doc, r, old_map[p_old.idx()]);
        }
        // boundary fan-out: for every (surviving parent, child label)
        // touched by the batch, compare had-a-child before vs after
        let mut touched: Vec<(NodeId, Label)> = Vec::new();
        for &r in &applied.deleted_roots {
            let p_old = old_doc.parent(r).expect("cover roots keep their parent");
            let pair = (p_old, old_doc.label(r));
            if !touched.contains(&pair) {
                touched.push(pair);
            }
        }
        for &r in &applied.inserted_roots {
            let p_new = new_doc.parent(r).expect("fragment root has a parent");
            let p_old = new_to_old[p_new.idx()].expect("insert parents survive");
            let pair = (p_old, new_doc.label(r));
            if !touched.contains(&pair) {
                touched.push(pair);
            }
        }
        for (p_old, label) in touched {
            let before = old_doc
                .children(p_old)
                .iter()
                .any(|&c| old_doc.label(c) == label);
            let p_new = applied.old_to_new[p_old.idx()].expect("parent survives");
            let after = new_doc
                .children(p_new)
                .iter()
                .any(|&c| new_doc.label(c) == label);
            if before != after {
                let q = self
                    .children(old_map[p_old.idx()])
                    .iter()
                    .copied()
                    .find(|&c| self.label(c) == label)
                    .expect("touched path exists after prune/graft");
                self.adjust_parents_with(q, if after { 1 } else { -1 });
            }
        }
        // post-update classification, derived incrementally: survivors
        // keep their summary node (paths are append-only), and inserted
        // subtrees classify top-down — pre-order guarantees a node's
        // parent is mapped first, and fragment roots hang under survivors
        let mut new_map = vec![NodeId(0); new_doc.len()];
        for (o, n) in applied.old_to_new.iter().enumerate() {
            if let Some(n) = n {
                new_map[n.idx()] = old_map[o];
            }
        }
        for &r in &applied.inserted_roots {
            for dn in (r.0..=new_doc.last_descendant(r).0).map(NodeId) {
                let sp = new_map[new_doc
                    .parent(dn)
                    .expect("inserted nodes have parents")
                    .idx()];
                let label = new_doc.label(dn);
                new_map[dn.idx()] = self
                    .children(sp)
                    .iter()
                    .copied()
                    .find(|&c| self.label(c) == label)
                    .expect("grafted path exists");
            }
        }
        if !dirty.is_empty() {
            self.rebuild_path_values_classified(&dirty, new_doc, &new_map);
        }
        self.refresh_edge_classes();
        (created, new_map)
    }
}

impl LabeledTree for Summary {
    fn tree_root(&self) -> NodeId {
        self.root()
    }
    fn tree_label(&self, n: NodeId) -> Label {
        self.label(n)
    }
    fn tree_children(&self, n: NodeId) -> &[NodeId] {
        self.children(n)
    }
    fn tree_parent(&self, n: NodeId) -> Option<NodeId> {
        self.parent(n)
    }
    fn tree_value(&self, _n: NodeId) -> Option<&Value> {
        None
    }
    fn tree_is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.is_ancestor(a, b)
    }
    fn tree_len(&self) -> usize {
        self.len()
    }
}

// ---- persistence ------------------------------------------------------
//
// A self-contained binary serialization so the summary can be published
// to the on-disk store (smv-store wraps these bytes in a checksummed
// file). The format is structural and deterministic: node vectors in
// arena order, sketch samples sorted, histogram masses as exact f64 bit
// patterns. The process-unique instance id is deliberately NOT stored —
// a deserialized summary is a new instance and gets a fresh id, exactly
// like [`Clone`].

mod wire {
    //! Minimal varint byte stream, private to the summary serializer.

    pub fn put_uv(buf: &mut Vec<u8>, mut x: u64) {
        loop {
            let b = (x & 0x7f) as u8;
            x >>= 7;
            if x == 0 {
                buf.push(b);
                return;
            }
            buf.push(b | 0x80);
        }
    }

    pub fn put_iv(buf: &mut Vec<u8>, x: i64) {
        put_uv(buf, ((x << 1) ^ (x >> 63)) as u64);
    }

    pub fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_uv(buf, s.len() as u64);
        buf.extend_from_slice(s.as_bytes());
    }

    pub fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, String> {
        let b = *buf.get(*pos).ok_or("truncated stream")?;
        *pos += 1;
        Ok(b)
    }

    pub fn get_uv(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let b = get_u8(buf, pos)?;
            if shift >= 64 {
                return Err("varint overflow".into());
            }
            x |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    }

    pub fn get_iv(buf: &[u8], pos: &mut usize) -> Result<i64, String> {
        let z = get_uv(buf, pos)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    pub fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, String> {
        let n = get_uv(buf, pos)? as usize;
        let end = pos.checked_add(n).ok_or("length overflow")?;
        let s = buf.get(*pos..end).ok_or("truncated string")?;
        *pos = end;
        String::from_utf8(s.to_vec()).map_err(|_| "invalid utf-8".to_string())
    }

    pub fn put_f64(buf: &mut Vec<u8>, x: f64) {
        buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    pub fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, String> {
        let end = *pos + 8;
        let s = buf.get(*pos..end).ok_or("truncated f64")?;
        *pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(s.try_into().unwrap())))
    }
}

const WIRE_VERSION: u8 = 1;

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(0);
            wire::put_iv(buf, *i);
        }
        Value::Str(s) => {
            buf.push(1);
            wire::put_str(buf, s);
        }
    }
}

fn get_value(buf: &[u8], pos: &mut usize) -> Result<Value, String> {
    match wire::get_u8(buf, pos)? {
        0 => Ok(Value::Int(wire::get_iv(buf, pos)?)),
        1 => Ok(Value::Str(wire::get_str(buf, pos)?.into())),
        t => Err(format!("bad value tag {t}")),
    }
}

impl ValueHistogram {
    fn encode(&self, buf: &mut Vec<u8>) {
        wire::put_iv(buf, self.lo);
        wire::put_iv(buf, self.width);
        wire::put_uv(buf, self.buckets.len() as u64);
        for &b in &self.buckets {
            wire::put_f64(buf, b);
        }
        wire::put_f64(buf, self.below);
        wire::put_iv(buf, self.below_min);
        wire::put_f64(buf, self.above);
        wire::put_iv(buf, self.above_max);
        wire::put_uv(buf, self.strings);
        wire::put_uv(buf, self.total);
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<ValueHistogram, String> {
        let lo = wire::get_iv(buf, pos)?;
        let width = wire::get_iv(buf, pos)?;
        if width < 1 {
            return Err("histogram width < 1".into());
        }
        let n = wire::get_uv(buf, pos)? as usize;
        if n > 1 << 20 {
            return Err("implausible bucket count".into());
        }
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(wire::get_f64(buf, pos)?);
        }
        Ok(ValueHistogram {
            lo,
            width,
            buckets,
            below: wire::get_f64(buf, pos)?,
            below_min: wire::get_iv(buf, pos)?,
            above: wire::get_f64(buf, pos)?,
            above_max: wire::get_iv(buf, pos)?,
            strings: wire::get_uv(buf, pos)?,
            total: wire::get_uv(buf, pos)?,
        })
    }
}

impl ValueSketch {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.saturated as u8);
        if self.saturated {
            match &self.hist {
                Some(h) => {
                    buf.push(1);
                    h.encode(buf);
                }
                None => buf.push(0),
            }
        } else {
            // the exact set is a HashSet: sort for deterministic bytes
            let mut vals: Vec<&Value> = self.seen.iter().collect();
            vals.sort_by(|a, b| match (a, b) {
                (Value::Int(x), Value::Int(y)) => x.cmp(y),
                (Value::Str(x), Value::Str(y)) => x.cmp(y),
                (Value::Int(_), Value::Str(_)) => std::cmp::Ordering::Less,
                (Value::Str(_), Value::Int(_)) => std::cmp::Ordering::Greater,
            });
            wire::put_uv(buf, vals.len() as u64);
            for v in vals {
                put_value(buf, v);
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<ValueSketch, String> {
        let saturated = wire::get_u8(buf, pos)? != 0;
        if saturated {
            let hist = match wire::get_u8(buf, pos)? {
                0 => None,
                1 => Some(ValueHistogram::decode(buf, pos)?),
                t => return Err(format!("bad histogram flag {t}")),
            };
            Ok(ValueSketch {
                seen: HashSet::new(),
                saturated: true,
                hist,
            })
        } else {
            let n = wire::get_uv(buf, pos)? as usize;
            if n > DISTINCT_CAP {
                return Err("unsaturated sketch above the distinct cap".into());
            }
            let mut seen = HashSet::with_capacity(n);
            for _ in 0..n {
                seen.insert(get_value(buf, pos)?);
            }
            Ok(ValueSketch {
                seen,
                saturated: false,
                hist: None,
            })
        }
    }
}

impl Summary {
    /// Serializes the summary for persistence. Deterministic for a given
    /// summary state; the process-unique instance id is not stored (a
    /// reloaded summary is a fresh instance, like a clone).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(WIRE_VERSION);
        wire::put_uv(&mut buf, self.docs as u64);
        wire::put_uv(&mut buf, self.geometry_gen);
        wire::put_uv(&mut buf, self.nodes.len() as u64);
        for n in &self.nodes {
            wire::put_str(&mut buf, n.label.as_str());
            match n.parent {
                None => wire::put_uv(&mut buf, 0),
                Some(p) => wire::put_uv(&mut buf, p.0 as u64 + 1),
            }
            wire::put_uv(&mut buf, n.children.len() as u64);
            for c in &n.children {
                wire::put_uv(&mut buf, c.0 as u64);
            }
            wire::put_uv(&mut buf, n.pre as u64);
            wire::put_uv(&mut buf, n.last_desc as u64);
            wire::put_uv(&mut buf, n.depth as u64);
            wire::put_uv(&mut buf, n.count);
            wire::put_uv(&mut buf, n.parents_with);
            wire::put_uv(&mut buf, n.values);
            buf.push(n.strong as u8);
            buf.push(n.one_to_one as u8);
            n.distinct.encode(&mut buf);
        }
        buf
    }

    /// Reconstructs a summary serialized by [`Summary::to_bytes`]. The
    /// result carries a fresh instance id, so its
    /// [`Summary::geometry_token`] differs from the publisher's — shard
    /// partitions persisted alongside it keep their original (mutually
    /// equal) tokens, which is all the sharded executor compares.
    pub fn from_bytes(bytes: &[u8]) -> Result<Summary, String> {
        let pos = &mut 0usize;
        let version = wire::get_u8(bytes, pos)?;
        if version != WIRE_VERSION {
            return Err(format!("unsupported summary wire version {version}"));
        }
        let docs = wire::get_uv(bytes, pos)? as usize;
        let geometry_gen = wire::get_uv(bytes, pos)?;
        let n_nodes = wire::get_uv(bytes, pos)? as usize;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let label = Label::intern(&wire::get_str(bytes, pos)?);
            let parent = match wire::get_uv(bytes, pos)? {
                0 => None,
                p => Some(NodeId((p - 1) as u32)),
            };
            let n_children = wire::get_uv(bytes, pos)? as usize;
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                children.push(NodeId(wire::get_uv(bytes, pos)? as u32));
            }
            let pre = wire::get_uv(bytes, pos)? as u32;
            let last_desc = wire::get_uv(bytes, pos)? as u32;
            let depth = wire::get_uv(bytes, pos)? as u32;
            let count = wire::get_uv(bytes, pos)?;
            let parents_with = wire::get_uv(bytes, pos)?;
            let values = wire::get_uv(bytes, pos)?;
            let strong = wire::get_u8(bytes, pos)? != 0;
            let one_to_one = wire::get_u8(bytes, pos)? != 0;
            let distinct = ValueSketch::decode(bytes, pos)?;
            nodes.push(SNode {
                label,
                parent,
                children,
                pre,
                last_desc,
                depth,
                count,
                parents_with,
                values,
                distinct,
                strong,
                one_to_one,
            });
        }
        if *pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after summary",
                bytes.len() - *pos
            ));
        }
        // structural sanity: every referenced node id must be in range
        for (i, n) in nodes.iter().enumerate() {
            let in_range = |id: NodeId| (id.0 as usize) < nodes.len();
            if n.parent.is_some_and(|p| !in_range(p)) || n.children.iter().any(|&c| !in_range(c)) {
                return Err(format!("summary node {i} references out-of-range ids"));
            }
        }
        Ok(Summary {
            nodes,
            docs,
            id: next_summary_id(),
            geometry_gen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        // every `a` has a `b` child (strong), exactly one `c` child
        // (one-to-one); `d` appears under only some `c`s (weak edge).
        Document::from_parens("r(a(b b c(d)) a(b c))")
    }

    #[test]
    fn builds_all_paths_once() {
        let d = doc();
        let s = Summary::of(&d);
        // paths: /r /r/a /r/a/b /r/a/c /r/a/c/d
        assert_eq!(s.len(), 5);
        assert_eq!(s.path_string(NodeId(2)), "/r/a/b");
        assert_eq!(s.node_by_path("/r/a/c/d"), Some(NodeId(4)));
        assert_eq!(s.node_by_path("/r/z"), None);
        assert_eq!(s.count(s.node_by_path("/r/a/b").unwrap()), 3);
    }

    #[test]
    fn strong_and_one_to_one_edges() {
        let s = Summary::of(&doc());
        let b = s.node_by_path("/r/a/b").unwrap();
        let c = s.node_by_path("/r/a/c").unwrap();
        let d = s.node_by_path("/r/a/c/d").unwrap();
        let a = s.node_by_path("/r/a").unwrap();
        assert!(s.is_strong_edge(b), "every a has a b child");
        assert!(!s.is_one_to_one_edge(b), "one a has two b children");
        assert!(s.is_one_to_one_edge(c), "every a has exactly one c");
        assert!(!s.is_strong_edge(d), "only one c has a d child");
        assert!(s.is_strong_edge(a), "r has a children");
    }

    #[test]
    fn per_path_cardinality_statistics() {
        let d = Document::from_parens(r#"r(a(b="1" b="2" c(d)) a(b="1" c))"#);
        let mut s = Summary::of(&d);
        let a = s.node_by_path("/r/a").unwrap();
        let b = s.node_by_path("/r/a/b").unwrap();
        let c = s.node_by_path("/r/a/c").unwrap();
        assert_eq!(s.count(b), 3);
        assert_eq!(s.value_count(b), 3);
        assert_eq!(s.distinct_values(b), 2, r#""1" twice, "2" once"#);
        assert_eq!(s.value_count(c), 0);
        assert_eq!(s.avg_fanout(b), 1.5, "3 b's over 2 a's");
        assert_eq!(s.avg_fanout(a), 2.0);
        assert_eq!(s.avg_fanout(s.root()), 1.0, "one root per document");
        assert_eq!(s.doc_node_count(), d.len() as u64);
        // incremental extension keeps the stats consistent
        s.extend_with(&Document::from_parens(r#"r(a(b="7" c))"#));
        assert_eq!(s.value_count(b), 4);
        assert_eq!(s.distinct_values(b), 3);
        assert_eq!(s.doc_node_count(), (d.len() + 4) as u64);
    }

    #[test]
    fn distinct_sketch_ignores_duplicates_and_saturates_on_distincts() {
        // duplicates beyond the cap never saturate the sketch
        let dupes = format!("r({})", vec![r#"b="7""#; 1500].join(" "));
        let s = Summary::of(&Document::from_parens(&dupes));
        let b = s.node_by_path("/r/b").unwrap();
        assert_eq!(s.distinct_values(b), 1, "1500 copies of one value");
        // genuinely distinct values past the cap saturate to the value
        // count (an upper bound)
        let distinct = format!(
            "r({})",
            (0..1500)
                .map(|i| format!(r#"b="{i}""#))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let s = Summary::of(&Document::from_parens(&distinct));
        let b = s.node_by_path("/r/b").unwrap();
        assert_eq!(s.distinct_values(b), 1500);
    }

    #[test]
    fn saturation_builds_a_histogram_over_the_sample() {
        let distinct = format!(
            "r({})",
            (0..1500)
                .map(|i| format!(r#"b="{i}""#))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let s = Summary::of(&Document::from_parens(&distinct));
        let b = s.node_by_path("/r/b").unwrap();
        assert!(s.distinct_sample(b).is_none(), "sketch saturated");
        let h = s.value_histogram(b).expect("histogram built");
        // every value was folded in: the 1024-sample at build time plus
        // each post-saturation insert
        assert_eq!(h.total(), 1500);
        assert_eq!(h.string_count(), 0);
        // uniform values: mass tracks range width
        let half = h.mass_in(0, 749);
        assert!(
            (half / h.total() as f64 - 0.5).abs() < 0.1,
            "half-range holds about half the mass, got {half}"
        );
        assert_eq!(h.mass_in(10_000, 20_000), 0.0, "outside the range");
        // an unsaturated path has no histogram
        let s2 = Summary::of(&Document::from_parens(r#"r(b="1" b="2")"#));
        assert!(s2
            .value_histogram(s2.node_by_path("/r/b").unwrap())
            .is_none());
    }

    #[test]
    fn all_string_saturation_yields_no_histogram() {
        let strs = format!(
            "r({})",
            (0..1200)
                .map(|i| format!(r#"b="s{i}x""#))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let s = Summary::of(&Document::from_parens(&strs));
        let b = s.node_by_path("/r/b").unwrap();
        assert!(s.distinct_sample(b).is_none());
        assert!(s.value_histogram(b).is_none(), "no integer axis");
    }

    #[test]
    fn ancestor_relations_between_paths() {
        let s = Summary::of(&doc());
        let r = s.root();
        let d = s.node_by_path("/r/a/c/d").unwrap();
        let c = s.node_by_path("/r/a/c").unwrap();
        assert!(s.is_ancestor(r, d));
        assert!(s.is_parent(c, d));
        assert!(!s.is_ancestor(d, c));
    }

    #[test]
    fn conformance() {
        let s = Summary::of(&doc());
        assert!(s.conforms(&doc()));
        assert!(s.conforms_exactly(&doc()));
        assert!(s.conforms_enhanced(&doc()));
        // fewer paths: conforms (plain) but not exactly
        let d2 = Document::from_parens("r(a(b))");
        assert!(s.conforms(&d2));
        assert!(!s.conforms_exactly(&d2));
        // violates one-to-one for c
        let d3 = Document::from_parens("r(a(b c c))");
        assert!(!s.conforms_enhanced(&d3));
        // violates strong for b
        let d4 = Document::from_parens("r(a(c))");
        assert!(!s.conforms_enhanced(&d4));
        // unknown path: does not conform at all
        let d5 = Document::from_parens("r(a(z))");
        assert!(!s.conforms(&d5));
    }

    #[test]
    fn extension_keeps_summary_stable_when_no_new_paths() {
        let mut s = Summary::of(&doc());
        let before = s.len();
        s.extend_with(&Document::from_parens("r(a(b c))"));
        assert_eq!(s.len(), before);
        // b is still strong (the new a has a b child)
        assert!(s.is_strong_edge(s.node_by_path("/r/a/b").unwrap()));
    }

    #[test]
    fn extension_adds_new_paths_and_weakens_edges() {
        let mut s = Summary::of(&doc());
        s.extend_with(&Document::from_parens("r(a(c x))"));
        assert!(s.node_by_path("/r/a/x").is_some());
        // b no longer strong: the new a lacks a b child
        assert!(!s.is_strong_edge(s.node_by_path("/r/a/b").unwrap()));
        // c remains one-to-one
        assert!(s.is_one_to_one_edge(s.node_by_path("/r/a/c").unwrap()));
    }

    #[test]
    fn classify_maps_nodes_to_paths() {
        let d = doc();
        let s = Summary::of(&d);
        let map = s.classify(&d).unwrap();
        for n in d.iter() {
            assert_eq!(s.label(map[n.idx()]), d.label(n));
            let expect: Vec<_> = d.path_labels(n);
            let got_path = s.path_string(map[n.idx()]);
            let expect_path: String = expect.iter().map(|l| format!("/{}", l.as_str())).collect();
            assert_eq!(got_path, expect_path);
        }
    }

    #[test]
    fn merge_matches_sequential_ingest_exactly() {
        // two document shards with overlapping and new paths
        let shard1 = [
            Document::from_parens(r#"r(a(b="1" b="2" c(d)) a(b="1" c))"#),
            Document::from_parens(r#"r(a(b="3" c))"#),
        ];
        let shard2 = [
            Document::from_parens(r#"r(a(c x) e="9")"#),
            Document::from_parens(r#"r(a(b="2" c))"#),
        ];
        let mut merged = Summary::of(&shard1[0]);
        merged.extend_with(&shard1[1]);
        let mut part2 = Summary::of(&shard2[0]);
        part2.extend_with(&shard2[1]);
        merged.merge_from(&part2);

        let mut seq = Summary::of(&shard1[0]);
        for d in shard1[1..].iter().chain(shard2.iter()) {
            seq.extend_with(d);
        }
        assert_eq!(merged.len(), seq.len(), "same path set");
        assert_eq!(merged.doc_node_count(), seq.doc_node_count());
        assert_eq!(merged.document_count(), seq.document_count());
        for n in seq.iter() {
            let p = seq.path_string(n);
            let m = merged.node_by_path(&p).expect("path present after merge");
            assert_eq!(merged.count(m), seq.count(n), "count of {p}");
            assert_eq!(merged.value_count(m), seq.value_count(n), "values of {p}");
            assert_eq!(
                merged.distinct_values(m),
                seq.distinct_values(n),
                "distincts of {p}"
            );
            assert_eq!(
                merged.is_strong_edge(m),
                seq.is_strong_edge(n),
                "strong flag of {p}"
            );
            assert_eq!(
                merged.is_one_to_one_edge(m),
                seq.is_one_to_one_edge(n),
                "one-to-one flag of {p}"
            );
            assert_eq!(merged.avg_fanout(m), seq.avg_fanout(n), "fanout of {p}");
        }
    }

    #[test]
    fn batched_extension_matches_sequential() {
        let docs: Vec<Document> = (0..10)
            .map(|i| Document::from_parens(&format!(r#"r(a(b="{i}" c) a(b="{}"))"#, i * 7 % 5)))
            .collect();
        let mut batched = Summary::of(&docs[0]);
        batched.extend_with_batch(&docs[1..], 3);
        let mut seq = Summary::of(&docs[0]);
        for d in &docs[1..] {
            seq.extend_with(d);
        }
        assert_eq!(batched.len(), seq.len());
        for n in seq.iter() {
            let m = batched.node_by_path(&seq.path_string(n)).unwrap();
            assert_eq!(batched.count(m), seq.count(n));
            assert_eq!(batched.distinct_values(m), seq.distinct_values(n));
            assert_eq!(batched.is_strong_edge(m), seq.is_strong_edge(n));
        }
        // threads=0 (auto) and threads > docs also work
        let mut auto = Summary::of(&docs[0]);
        auto.extend_with_batch(&docs[1..], 0);
        assert_eq!(auto.len(), seq.len());
    }

    #[test]
    fn unsaturated_sketches_union_and_saturate_on_merge() {
        let mk = |lo: usize, n: usize| {
            let body = (lo..lo + n)
                .map(|i| format!(r#"b="{i}""#))
                .collect::<Vec<_>>()
                .join(" ");
            Summary::of(&Document::from_parens(&format!("r({body})")))
        };
        // union below the cap stays exact
        let mut a = mk(0, 400);
        a.merge_from(&mk(200, 400)); // overlap: 200..400
        let b = a.node_by_path("/r/b").unwrap();
        assert_eq!(a.distinct_values(b), 600, "union dedups the overlap");
        assert!(a.distinct_sample(b).is_some(), "still exact");
        // union above the cap saturates to the (upper-bound) value count
        let mut big = mk(0, 700);
        big.merge_from(&mk(1000, 700));
        let b = big.node_by_path("/r/b").unwrap();
        assert!(big.distinct_sample(b).is_none(), "saturated by the merge");
        assert_eq!(big.distinct_values(b), 1400);
        assert!(big.value_histogram(b).is_some(), "histogram built on merge");
    }

    #[test]
    fn axisless_saturation_poisons_merged_histograms() {
        // a path saturated on all-string values has no integer axis
        // (hist None); merging must not fabricate a histogram from the
        // other side's sample — sequential ingest would have kept None
        let strs = format!(
            "r({})",
            (0..1200)
                .map(|i| format!(r#"b="s{i}x""#))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let string_side = Summary::of(&Document::from_parens(&strs));
        let int_side = Summary::of(&Document::from_parens(r#"r(b="1" b="2")"#));
        let b = |s: &Summary| s.node_by_path("/r/b").unwrap();
        for (mut a, z) in [
            (string_side.clone(), &int_side),
            (int_side.clone(), &string_side),
        ] {
            a.merge_from(z);
            assert!(a.distinct_sample(b(&a)).is_none(), "merged side saturated");
            assert!(
                a.value_histogram(b(&a)).is_none(),
                "no histogram invented from 2 integers against 1200 strings"
            );
        }
        // saturated-with-axis + saturated-without-axis → also None
        let ints = format!(
            "r({})",
            (0..1500)
                .map(|i| format!(r#"b="{i}""#))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let mut with_axis = Summary::of(&Document::from_parens(&ints));
        with_axis.merge_from(&string_side);
        assert!(with_axis.value_histogram(b(&with_axis)).is_none());
    }

    #[test]
    fn saturated_histograms_merge_mass_exactly() {
        let mk = |lo: i64, n: i64| {
            let body = (lo..lo + n)
                .map(|i| format!(r#"b="{i}""#))
                .collect::<Vec<_>>()
                .join(" ");
            Summary::of(&Document::from_parens(&format!("r({body})")))
        };
        let (s1, s2) = (mk(0, 1500), mk(10_000, 1500));
        let path = |s: &Summary| s.node_by_path("/r/b").unwrap();
        let (h1, h2) = (
            s1.value_histogram(path(&s1)).unwrap().clone(),
            s2.value_histogram(path(&s2)).unwrap().clone(),
        );
        let mut merged = s1;
        merged.merge_from(&s2);
        let h = merged.value_histogram(path(&merged)).expect("merged hist");
        // total mass is exactly the sum
        assert_eq!(h.total(), h1.total() + h2.total());
        assert_eq!(h.string_count(), 0);
        let full = h.mass_in(i64::MIN, i64::MAX);
        assert!(
            (full - 3000.0).abs() < 1e-6,
            "all integer mass preserved, got {full}"
        );
        // sub-range mass agrees with the components to bucket precision
        for (a, b) in [(0, 1499), (10_000, 11_499), (0, 700), (10_500, 12_000)] {
            let want = h1.mass_in(a, b) + h2.mass_in(a, b);
            let got = h.mass_in(a, b);
            assert!(
                (got - want).abs() <= 0.15 * want.max(50.0),
                "mass_in({a},{b}): merged {got} vs components {want}"
            );
        }
        // nothing leaks into the gap beyond re-bucketing spill
        let gap = h.mass_in(2000, 9000);
        assert!(gap < 800.0, "gap mass only from coarse buckets, got {gap}");
    }

    #[test]
    fn recursion_unfolds_into_distinct_paths() {
        // recursive listitem-like structure: each nesting level is its own
        // Dataguide path (the paper's point about DTD recursion vs
        // Dataguides, §1).
        let d = Document::from_parens("a(p(l(p(l))) p(l))");
        let s = Summary::of(&d);
        assert!(s.node_by_path("/a/p/l/p/l").is_some());
        assert_eq!(s.len(), 5);
    }
}
