//! Summary statistics — the quantities of the paper's Table 1.

use crate::dataguide::Summary;

/// The per-dataset statistics reported in Table 1 of the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryStats {
    /// `|S|` — number of summary nodes (distinct rooted paths).
    pub nodes: usize,
    /// `n_s` — number of strong edges.
    pub strong_edges: usize,
    /// `n_1` — number of one-to-one edges.
    pub one_to_one_edges: usize,
    /// Maximum path depth.
    pub max_depth: u32,
    /// Total document nodes summarized (the sum of the per-path counts —
    /// [`Summary::doc_node_count`] is the single source of truth).
    pub doc_nodes: u64,
    /// Document nodes carrying an atomic value.
    pub value_nodes: u64,
}

impl SummaryStats {
    /// Computes the statistics of a summary.
    ///
    /// Table 1 counts *edges*: `n_s` and `n_1` classify the parent→child
    /// edges of `S`, so we walk each node's children rather than special-
    /// casing the root (which has no incoming edge and is therefore
    /// neither strong nor one-to-one by definition, while still counting
    /// toward `|S|`, depth and node totals).
    pub fn of(s: &Summary) -> SummaryStats {
        let mut strong = 0;
        let mut one = 0;
        let mut max_depth = 0;
        let mut value_nodes = 0;
        for n in s.iter() {
            for &c in s.children(n) {
                if s.is_strong_edge(c) {
                    strong += 1;
                }
                if s.is_one_to_one_edge(c) {
                    one += 1;
                }
            }
            max_depth = max_depth.max(s.depth(n));
            value_nodes += s.value_count(n);
        }
        SummaryStats {
            nodes: s.len(),
            strong_edges: strong,
            one_to_one_edges: one,
            max_depth,
            doc_nodes: s.doc_node_count(),
            value_nodes,
        }
    }
}

impl std::fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|S|={} ns={} (n1={}) depth={} nodes={} values={}",
            self.nodes,
            self.strong_edges,
            self.one_to_one_edges,
            self.max_depth,
            self.doc_nodes,
            self.value_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_xml::Document;

    #[test]
    fn stats_count_edges() {
        let d = Document::from_parens(r#"r(a(b b c(d)) a(b c))"#);
        let s = Summary::of(&d);
        let st = SummaryStats::of(&s);
        assert_eq!(st.nodes, 5);
        // strong: a (r has a), b (both a's have b), c (both a's have c)
        assert_eq!(st.strong_edges, 3);
        // one-to-one: c only (a is 2-per-r, b is sometimes 2)
        assert_eq!(st.one_to_one_edges, 1);
        assert_eq!(st.max_depth, 3);
        assert_eq!(st.doc_nodes, d.len() as u64);
        assert_eq!(st.value_nodes, 0);
    }

    #[test]
    fn one_to_one_is_counted_as_strong_too() {
        let d = Document::from_parens("r(a(c))");
        let st = SummaryStats::of(&Summary::of(&d));
        assert_eq!(st.strong_edges, 2);
        assert_eq!(st.one_to_one_edges, 2);
    }

    #[test]
    fn doc_nodes_agree_with_per_path_counts() {
        let d = Document::from_parens(r#"r(a(b="1" b="2") a(b="3"))"#);
        let mut s = Summary::of(&d);
        s.extend_with(&Document::from_parens(r#"r(a(b="4"))"#));
        let st = SummaryStats::of(&s);
        assert_eq!(st.doc_nodes, s.doc_node_count());
        assert_eq!(st.doc_nodes, (d.len() + 3) as u64);
        assert_eq!(st.value_nodes, 4);
        // the root contributes to node totals but never to edge classes
        let root_children_strong = s
            .children(s.root())
            .iter()
            .filter(|&&c| s.is_strong_edge(c))
            .count();
        assert!(st.strong_edges >= root_children_strong);
    }
}
