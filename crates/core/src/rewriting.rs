//! View-based rewriting under summary constraints — Algorithm 1.
//!
//! Given a query pattern `q`, a set of materialized views and a summary
//! `S`, produce algebraic plans over the views that are `S`-equivalent to
//! `q`.
//!
//! ## Search-space representation
//!
//! Following Proposition 3.3, every join plan over views is `S`-equivalent
//! to a **union of conjunctive patterns**; under the paper's §4.2
//! simplification these are *S-subtrees with per-path formulas* — exactly
//! canonical-model trees. We therefore represent the pattern side of each
//! (plan, pattern) pair as a union of `Member`s: ancestor-closed sets of
//! summary paths with formulas, plus the per-column binding (`None` = the
//! column is `⊥` in rows of this member). Scanning a view yields one
//! member per canonical tree of its (unnested) pattern; joins merge
//! members pairwise — and because every node carries a single summary
//! path, the Fig. 5 merge ambiguity disappears: the structural relation
//! between any two paths is determined by `S`.
//!
//! ## Algorithm 1 correspondence
//!
//! * line 1 — `M0` = per-view base pairs, pre-pruned by Proposition 3.4,
//!   extended with virtual-ID columns (§4.6, `nav_fID`) and C-navigation
//!   columns (§4.6 unfolding, restricted to query-relevant paths);
//! * lines 2-11 — left-deep join enumeration over `⋈_=`, `⋈_≺`, `⋈_≺≺`,
//!   with satisfiability pruning (dead member sets), the Proposition 3.5
//!   fingerprint test, and the Proposition 3.6 size bound;
//! * line 7 — the `≡_S q` test runs both directions on members: every
//!   member (strong-closed) must realize its designated tuple in `q`
//!   (Prop 3.1 / §4.2 decorated embeddings), and every tree of
//!   `mod_S(q)` must be covered by some member with value coverage
//!   (Prop 3.2 / §4.2 condition 2);
//! * line 7 adaptations — `σ_{L=l}` and `σ_{φ(v)}` selections are inserted
//!   per §4.6 before testing;
//! * lines 13-14 — minimal unions of pairs that jointly cover `mod_S(q)`;
//! * output — plans are completed with the §4.6 nesting adaptation: a
//!   group-by (`Nest`) per nested query edge, keyed on the nesting
//!   anchor's ID (the anchor must store `ID`, per the paper's "otherwise
//!   this nesting step cannot be obtained").

use crate::containment::{implies_disjunction, tuple_in, FormulaMode};
use smv_algebra::{
    AttrKind, CardSource, ColKind, CostModel, FeedbackStore, NavStep, Plan, PlanEstimate,
    Predicate, StructRel,
};
use smv_pattern::canonical::{canonical_model, CTree, CanonOpts};
use smv_pattern::{associated_paths, Axis, Formula, PNodeId, Pattern};
use smv_summary::Summary;
use smv_views::{schema_of, DefCards, View};
use smv_xml::{IdScheme, NodeId, Symbol};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Options bounding the rewriting search.
#[derive(Clone, Debug)]
pub struct RewriteOpts {
    /// Canonical-model options.
    pub canon: CanonOpts,
    /// Cap on members per (plan, pattern) pair.
    pub max_members: usize,
    /// Cap on view scans per plan (min-ed with the Prop 3.6 bound).
    pub max_scans: usize,
    /// Cap on the working set `M`.
    pub max_pairs: usize,
    /// Stop after this many rewritings.
    pub max_rewritings: usize,
    /// Stop at the first rewriting (the "stopped early" mode of §5).
    pub first_only: bool,
    /// Derive virtual ancestor IDs (§4.6).
    pub enable_virtual_ids: bool,
    /// Unfold stored `C` content by navigation (§4.6), restricted to
    /// query-relevant paths.
    pub enable_content_navigation: bool,
    /// Build union rewritings (lines 13-14).
    pub enable_unions: bool,
    /// Rank results by estimated cost (cheapest first) and explore base
    /// pairs cheapest-first, shrinking time-to-first-rewriting.
    pub rank_by_cost: bool,
    /// Branch-and-bound: once a rewriting is known, prune every left-deep
    /// prefix whose estimated cost already exceeds the best complete
    /// plan's — its extensions can only cost more.
    pub cost_prune: bool,
}

impl Default for RewriteOpts {
    fn default() -> Self {
        RewriteOpts {
            canon: CanonOpts::default(),
            max_members: 64,
            max_scans: 4,
            max_pairs: 4000,
            max_rewritings: 8,
            first_only: false,
            enable_virtual_ids: true,
            enable_content_navigation: true,
            enable_unions: true,
            rank_by_cost: true,
            cost_prune: true,
        }
    }
}

/// One produced rewriting.
#[derive(Clone, Debug)]
pub struct Rewriting {
    /// The executable plan (output schema = the query's schema).
    pub plan: Plan,
    /// Number of view scans (plan size in the Prop 3.6 sense).
    pub scans: usize,
    /// Estimated output rows and work for the plan (summary-driven cost
    /// model; extent sizes are estimates unless a [`CardSource`] backed by
    /// a materialized catalog was supplied).
    pub est: PlanEstimate,
}

/// Timings and counters matching the paper's Figure 15.
#[derive(Clone, Debug, Default)]
pub struct RewriteStats {
    /// Views before Proposition 3.4 pruning.
    pub views_total: usize,
    /// Views kept after pruning.
    pub views_kept: usize,
    /// Setup time (canonical models, pruning, derived columns).
    pub setup: Duration,
    /// Time until the first rewriting was found.
    pub first_rewriting: Option<Duration>,
    /// Total rewriting time.
    pub total: Duration,
    /// (plan, pattern) pairs explored.
    pub pairs_explored: usize,
    /// (plan, pattern) pairs pruned by the cost bound before exploration.
    pub pairs_pruned: usize,
}

/// The outcome of a rewriting run.
#[derive(Clone, Debug, Default)]
pub struct RewriteResult {
    /// Equivalent rewritings — ranked cheapest-first when
    /// [`RewriteOpts::rank_by_cost`] is set, discovery order otherwise.
    pub rewritings: Vec<Rewriting>,
    /// Run statistics.
    pub stats: RewriteStats,
}

/// A column of a flattened view plan.
#[derive(Clone, Debug)]
struct ColInfo {
    attr: AttrKind,
    scheme: IdScheme,
}

/// One instantiated conjunctive pattern of a pair's union.
#[derive(Clone, Debug)]
struct Member {
    /// Ancestor-closed `(summary path, formula)` set, sorted by path.
    nodes: Vec<(NodeId, Formula)>,
    /// Per plan column: the path its values sit on (`None` = `⊥`).
    col_path: Vec<Option<NodeId>>,
}

impl Member {
    fn formula_map(&self) -> HashMap<NodeId, Formula> {
        self.nodes
            .iter()
            .filter(|(_, f)| !f.is_top())
            .map(|(n, f)| (*n, f.clone()))
            .collect()
    }

    fn signature(&self) -> String {
        let mut s = String::new();
        for (n, f) in &self.nodes {
            s.push_str(&n.0.to_string());
            if !f.is_top() {
                s.push('[');
                s.push_str(&f.to_string());
                s.push(']');
            }
            s.push(' ');
        }
        s
    }
}

/// A (plan, pattern) pair of Algorithm 1.
#[derive(Clone, Debug)]
struct Pair {
    plan: Plan,
    cols: Vec<ColInfo>,
    /// Same-node equivalence classes over columns (merged by `⋈_=`).
    groups: Vec<u32>,
    members: Vec<Member>,
    views: Vec<usize>,
    /// Estimated work of the raw (pre-output-adaptation) plan — the
    /// branch-and-bound bound for this left-deep prefix.
    cost: f64,
}

impl Pair {
    /// Prop 3.5-style identity: members + per-group offered (attr, path)
    /// sets; a join that does not change this opens no new rewritings.
    fn fingerprint(&self) -> String {
        let mut msigs: Vec<String> = self
            .members
            .iter()
            .map(|m| {
                let mut s = m.signature();
                s.push('|');
                // per group: attrs offered and member binding
                let mut per_group: HashMap<u32, Vec<String>> = HashMap::new();
                for (c, info) in self.cols.iter().enumerate() {
                    per_group
                        .entry(self.groups[c])
                        .or_default()
                        .push(format!("{}@{:?}", info.attr, m.col_path[c]));
                }
                let mut gs: Vec<String> = per_group
                    .into_values()
                    .map(|mut v| {
                        v.sort();
                        v.join(",")
                    })
                    .collect();
                gs.sort();
                s.push_str(&gs.join(";"));
                s
            })
            .collect();
        msigs.sort();
        msigs.join("\n")
    }
}

/// Context precomputed from the query.
struct QueryCtx<'a> {
    /// The original query (with nesting).
    q: &'a Pattern,
    /// The unnested query.
    qf: Pattern,
    /// `mod_S(qf)` with strong closure.
    qmodel: Vec<CTree>,
    /// Flat output columns: (return node, attr) in schema order.
    out_cols: Vec<(PNodeId, AttrKind)>,
    /// Return nodes in order.
    returns: Vec<PNodeId>,
    /// Associated paths per qf node.
    qpaths: Vec<Vec<NodeId>>,
    /// Whether any query node carries a predicate.
    decorated: bool,
}

/// Rewrites `q` over `views` under `s`. See module docs. Scan
/// cardinalities are *estimated* from the summary (definition-only
/// [`DefCards`]); use [`rewrite_with_cards`] when materialized extent
/// sizes are available.
///
/// ```
/// use smv_core::{rewrite, RewriteOpts};
/// use smv_pattern::parse_pattern;
/// use smv_summary::Summary;
/// use smv_views::View;
/// use smv_xml::{Document, IdScheme};
///
/// let doc = Document::from_parens(r#"site(item(name="pen") item(name="ink"))"#);
/// let summary = Summary::of(&doc);
/// let view = View::new("v", parse_pattern("site(//*{id,l,v})").unwrap(), IdScheme::OrdPath);
/// let query = parse_pattern("site(//name{id,v})").unwrap();
/// let result = rewrite(&query, &[view], &summary, &RewriteOpts::default());
/// assert!(!result.rewritings.is_empty(), "the wildcard view serves the query");
/// ```
pub fn rewrite(q: &Pattern, views: &[View], s: &Summary, opts: &RewriteOpts) -> RewriteResult {
    Rewriter::new(q, views, s, opts.clone()).run()
}

/// Rewrites `q` with an explicit cardinality source (e.g.
/// `smv_views::CatalogCards` over a materialized catalog), making the
/// cost ranking and branch-and-bound bound use actual extent sizes.
pub fn rewrite_with_cards(
    q: &Pattern,
    views: &[View],
    s: &Summary,
    opts: &RewriteOpts,
    cards: &dyn CardSource,
) -> RewriteResult {
    Rewriter::new(q, views, s, opts.clone())
        .with_card_source(cards)
        .run()
}

/// Rewrites `q` with a cardinality source *and* a runtime-feedback store:
/// scan rows, selection pass-rates and join selectivities observed by
/// `smv_algebra::execute_profiled` correct the static estimates wherever
/// a memo exists, so re-ranking a repeated query converges on the plan
/// that actually ran cheapest. Pass a `FeedbackCards`-wrapped source as
/// `cards` to also apply the per-view scan corrections.
pub fn rewrite_with_feedback(
    q: &Pattern,
    views: &[View],
    s: &Summary,
    opts: &RewriteOpts,
    cards: &dyn CardSource,
    feedback: &FeedbackStore,
) -> RewriteResult {
    Rewriter::new(q, views, s, opts.clone())
        .with_card_source(cards)
        .with_feedback(feedback)
        .run()
}

/// Estimated work of the cheapest S-equivalent rewriting of `q` over
/// `views`, or `None` when the bounded search finds no rewriting.
///
/// This is the probe the view advisor drives while scoring candidate
/// view sets: cost ranking and the branch-and-bound bound are forced on,
/// nothing is materialized (pass `DefCards` for definition-only pricing),
/// and only the winning plan's estimate is returned.
pub fn best_rewriting_cost(
    q: &Pattern,
    views: &[View],
    s: &Summary,
    opts: &RewriteOpts,
    cards: &dyn CardSource,
) -> Option<f64> {
    if views.is_empty() {
        return None;
    }
    let mut o = opts.clone();
    o.rank_by_cost = true;
    o.cost_prune = true;
    o.first_only = false; // the contract is *cheapest*, not first-found
    let r = Rewriter::new(q, views, s, o).with_card_source(cards).run();
    r.rewritings.first().map(|rw| rw.est.cost)
}

/// The rewriting engine (reusable across runs for benchmarks).
pub struct Rewriter<'a> {
    q: &'a Pattern,
    views: &'a [View],
    s: &'a Summary,
    opts: RewriteOpts,
    cards: Option<&'a dyn CardSource>,
    feedback: Option<&'a FeedbackStore>,
}

impl<'a> Rewriter<'a> {
    /// Creates an engine.
    pub fn new(q: &'a Pattern, views: &'a [View], s: &'a Summary, opts: RewriteOpts) -> Self {
        Rewriter {
            q,
            views,
            s,
            opts,
            cards: None,
            feedback: None,
        }
    }

    /// Supplies scan cardinalities (defaults to definition-only
    /// estimates).
    pub fn with_card_source(mut self, cards: &'a dyn CardSource) -> Self {
        self.cards = Some(cards);
        self
    }

    /// Supplies runtime feedback: the cost model prefers the store's
    /// memoized selectivities over its static guesses.
    pub fn with_feedback(mut self, feedback: &'a FeedbackStore) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// Runs Algorithm 1.
    pub fn run(&self) -> RewriteResult {
        let t0 = Instant::now();
        let mut run_span = smv_obs::SpanGuard::enter("rewrite.run");
        let mut setup_span = smv_obs::SpanGuard::enter("rewrite.setup");
        let mut result = RewriteResult::default();
        result.stats.views_total = self.views.len();

        let qf = self.q.unnest_copy();
        let qmodel_full = canonical_model(&qf, self.s, &self.opts.canon);
        let qpaths = associated_paths(&qf, self.s);
        let out_cols = flat_out_cols(&qf);
        let ctx = QueryCtx {
            q: self.q,
            qf: qf.clone(),
            qmodel: qmodel_full.trees,
            out_cols,
            returns: qf.return_nodes(),
            qpaths,
            decorated: qf.iter().any(|n| !qf.node(n).predicate.is_top()),
        };
        if ctx.qmodel.is_empty() {
            // unsatisfiable query: rewriting is the empty plan; report none
            result.stats.total = t0.elapsed();
            return result;
        }

        // cost model: supplied cardinalities, or definition-only estimates
        let def_cards = DefCards::new(self.views, self.s);
        let cards: &dyn CardSource = self.cards.unwrap_or(&def_cards);
        let mut model = CostModel::new(self.s, cards);
        if let Some(fb) = self.feedback {
            model = model.with_feedback(fb);
        }

        // ---- setup: base pairs (M0), Prop 3.4 pruning, derived columns
        let mut m0: Vec<Pair> = Vec::new();
        for (vi, v) in self.views.iter().enumerate() {
            if let Some(mut pair) = self.base_pair(vi, v, &ctx) {
                pair.cost = model.estimate(&pair.plan).cost;
                m0.push(pair);
            }
        }
        if self.opts.rank_by_cost {
            // cheapest-first exploration: the first rewriting found is
            // already a good one, shrinking time-to-first-rewriting and
            // tightening the branch-and-bound bound early
            m0.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        }
        result.stats.views_kept = m0.len();
        result.stats.setup = t0.elapsed();
        setup_span.field("views_total", self.views.len() as u64);
        setup_span.field("views_kept", m0.len() as u64);
        drop(setup_span);

        // Prop 3.6 plan-size bound
        let bound = ((self.q.len().saturating_sub(1)) * self.s.len()).max(1);
        let max_scans = self.opts.max_scans.min(bound);

        // collect union candidates: (pair, designations, coverage bitset)
        let mut union_candidates: Vec<(Plan, Vec<bool>)> = Vec::new();

        let mut seen: HashSet<String> = HashSet::new();
        let mut m: Vec<Pair> = Vec::new();
        for p in &m0 {
            seen.insert(p.fingerprint());
            m.push(p.clone());
        }

        // best complete rewriting's estimated work — the B&B upper bound
        let mut best_cost = f64::INFINITY;

        // line 7 test on the initial single-view pairs first
        let emit = |pair: &Pair,
                    result: &mut RewriteResult,
                    union_candidates: &mut Vec<(Plan, Vec<bool>)>,
                    best_cost: &mut f64|
         -> bool {
            result.stats.pairs_explored += 1;
            for plan_or_cand in self.try_pair(pair, &ctx) {
                match plan_or_cand {
                    Candidate::Equivalent(plan) => {
                        if result.stats.first_rewriting.is_none() {
                            result.stats.first_rewriting = Some(t0.elapsed());
                        }
                        let est = model.estimate(&plan);
                        *best_cost = best_cost.min(est.cost);
                        result.rewritings.push(Rewriting {
                            scans: plan.scan_count(),
                            plan,
                            est,
                        });
                        if self.opts.first_only
                            || result.rewritings.len() >= self.opts.max_rewritings
                        {
                            return true; // stop the whole search
                        }
                    }
                    Candidate::Partial(plan, coverage) => {
                        if self.opts.enable_unions && union_candidates.len() < 64 {
                            union_candidates.push((plan, coverage));
                        }
                    }
                }
            }
            false
        };

        let mut stop = false;
        for pair in &m0 {
            if emit(pair, &mut result, &mut union_candidates, &mut best_cost) {
                stop = true;
                break;
            }
        }

        // ---- lines 2-11: left-deep join enumeration to a fixpoint
        let mut frontier = 0usize;
        while !stop && frontier < m.len() {
            let i = frontier;
            frontier += 1;
            if m[i].plan.scan_count() >= max_scans {
                continue;
            }
            // B&B on the prefix: extensions only add operators, so a
            // prefix already costlier than a complete rewriting is dead
            if self.opts.cost_prune && m[i].cost >= best_cost {
                result.stats.pairs_pruned += 1;
                continue;
            }
            let mut created: Vec<Pair> = Vec::new();
            for base in &m0 {
                for mut joined in self.join_options(&m[i], base) {
                    if joined.plan.scan_count() > max_scans {
                        continue;
                    }
                    let fp = joined.fingerprint();
                    // Prop 3.5: no new pattern information. Dedup before
                    // costing so a dominated pair is estimated and counted
                    // as pruned once, not once per deriving prefix.
                    if seen.contains(&fp) {
                        continue;
                    }
                    seen.insert(fp);
                    joined.cost = model.estimate(&joined.plan).cost;
                    // B&B on the freshly created pair (strictly dominated
                    // before it is ever tested or expanded)
                    if self.opts.cost_prune && joined.cost >= best_cost {
                        result.stats.pairs_pruned += 1;
                        continue;
                    }
                    created.push(joined);
                }
            }
            for pair in created {
                if emit(&pair, &mut result, &mut union_candidates, &mut best_cost) {
                    stop = true;
                    break;
                }
                if m.len() < self.opts.max_pairs {
                    m.push(pair);
                }
            }
        }

        // ---- lines 13-14: minimal unions of partial candidates
        if !stop && self.opts.enable_unions && result.rewritings.len() < self.opts.max_rewritings {
            self.build_unions(&ctx, &union_candidates, &mut result, t0, &model);
        }

        if self.opts.rank_by_cost {
            // rank cheapest-first; stable sort keeps discovery order on ties
            result
                .rewritings
                .sort_by(|a, b| a.est.cost.total_cmp(&b.est.cost));
        }
        result.stats.total = t0.elapsed();
        run_span.field("pairs_explored", result.stats.pairs_explored as u64);
        run_span.field("pairs_pruned", result.stats.pairs_pruned as u64);
        run_span.field("rewritings", result.rewritings.len() as u64);
        drop(run_span);
        smv_obs::counter_add("rewrite.pairs_explored", result.stats.pairs_explored as u64);
        smv_obs::counter_add("rewrite.pairs_pruned", result.stats.pairs_pruned as u64);
        smv_obs::counter_add("rewrite.rewritings_found", result.rewritings.len() as u64);
        smv_obs::observe("rewrite.total_ns", result.stats.total.as_nanos() as u64);
        result
    }

    /// Builds the base (plan, pattern) pair for a view: flatten nested
    /// columns, enumerate members, prune by Prop 3.4, add §4.6 derived
    /// columns.
    fn base_pair(&self, vi: usize, v: &View, ctx: &QueryCtx<'_>) -> Option<Pair> {
        let pf = v.pattern.unnest_copy();
        // Prop 3.4: every non-root view node unrelated to every non-root
        // query node ⇒ the view is useless.
        let vpaths = associated_paths(&pf, self.s);
        let mut q_all: Vec<NodeId> = Vec::new();
        for n in ctx.qf.iter().skip(1) {
            q_all.extend(ctx.qpaths[n.idx()].iter().copied());
        }
        q_all.sort();
        q_all.dedup();
        let related = pf
            .iter()
            .skip(1)
            .any(|n| !smv_pattern::annotate::unrelated_to(self.s, &vpaths[n.idx()], &q_all));
        if pf.len() > 1 && !related {
            return None;
        }
        // members from the canonical model of the flat pattern (strong
        // closure matches the conformance regime of the equivalence test)
        let model = canonical_model(
            &pf,
            self.s,
            &CanonOpts {
                use_strong: self.opts.canon.use_strong,
                max_trees: self.opts.max_members * 8,
            },
        );
        if model.truncated || model.trees.is_empty() {
            return None;
        }
        // plan: scan + outer-unnest every nested column
        let mut plan = Plan::Scan {
            view: v.name.clone(),
        };
        let mut schema = schema_of(&v.pattern);
        while let Some(i) = schema
            .cols
            .iter()
            .position(|c| matches!(c.kind, ColKind::Nested(_)))
        {
            let ColKind::Nested(inner) = schema.cols[i].kind.clone() else {
                unreachable!()
            };
            plan = Plan::Unnest {
                input: Box::new(plan),
                col: i,
                outer: true,
            };
            let mut cols = schema.cols[..i].to_vec();
            cols.extend(inner.cols);
            cols.extend(schema.cols[i + 1..].iter().cloned());
            schema = smv_algebra::Schema { cols };
        }
        // flat column metadata: return nodes in pre-order × attr order
        let returns = pf.return_nodes();
        let mut cols: Vec<ColInfo> = Vec::new();
        let mut groups: Vec<u32> = Vec::new();
        let mut ret_col_ranges: Vec<(usize, usize)> = Vec::new();
        for (g, &r) in returns.iter().enumerate() {
            let start = cols.len();
            let a = pf.node(r).attrs;
            for kind in [
                AttrKind::Id,
                AttrKind::Label,
                AttrKind::Value,
                AttrKind::Content,
            ] {
                let stored = match kind {
                    AttrKind::Id => a.id,
                    AttrKind::Label => a.label,
                    AttrKind::Value => a.value,
                    AttrKind::Content => a.content,
                };
                if stored {
                    cols.push(ColInfo {
                        attr: kind,
                        scheme: v.scheme,
                    });
                    groups.push(g as u32);
                }
            }
            ret_col_ranges.push((start, cols.len()));
        }
        debug_assert_eq!(cols.len(), schema.cols.len(), "flat layout mismatch");
        let mut members: Vec<Member> = Vec::new();
        for t in &model.trees {
            let rp = t.return_paths();
            let mut col_path = Vec::with_capacity(cols.len());
            for (g, _) in returns.iter().enumerate() {
                let (a, b) = ret_col_ranges[g];
                for _ in a..b {
                    col_path.push(rp[g]);
                }
            }
            members.push(Member {
                nodes: t.path_set(),
                col_path,
            });
        }
        dedup_members(&mut members);
        if members.len() > self.opts.max_members {
            return None;
        }
        let mut pair = Pair {
            plan,
            cols,
            groups,
            members,
            views: vec![vi],
            cost: 0.0,
        };
        if self.opts.enable_virtual_ids && v.scheme.derives_parent() {
            self.add_virtual_ids(&mut pair, ctx);
        }
        if self.opts.enable_content_navigation {
            self.add_content_navigation(&mut pair, ctx);
        }
        Some(pair)
    }

    /// §4.6 virtual IDs: for each stored structural ID column, derive
    /// ancestor IDs at the levels that land on query-relevant paths.
    fn add_virtual_ids(&self, pair: &mut Pair, ctx: &QueryCtx<'_>) {
        let useful: HashSet<NodeId> = ctx
            .returns
            .iter()
            .flat_map(|r| ctx.qpaths[r.idx()].iter().copied())
            .collect();
        let base_cols: Vec<usize> = (0..pair.cols.len())
            .filter(|&c| pair.cols[c].attr == AttrKind::Id)
            .collect();
        let mut next_group = pair.groups.iter().copied().max().unwrap_or(0) + 1;
        for c in base_cols {
            for level in 1..=4usize {
                // derived path per member; useful if any lands on a query path
                let derived: Vec<Option<NodeId>> = pair
                    .members
                    .iter()
                    .map(|m| {
                        m.col_path[c].and_then(|p| {
                            let mut cur = p;
                            for _ in 0..level {
                                cur = self.s.parent(cur)?;
                            }
                            Some(cur)
                        })
                    })
                    .collect();
                if !derived.iter().flatten().any(|p| useful.contains(p)) {
                    continue;
                }
                pair.plan = Plan::DeriveParentId {
                    input: Box::new(pair.plan.clone()),
                    col: c,
                    levels: level,
                    name: Symbol::intern(&format!("vid{c}u{level}")),
                };
                pair.cols.push(ColInfo {
                    attr: AttrKind::Id,
                    scheme: pair.cols[c].scheme,
                });
                pair.groups.push(next_group);
                next_group += 1;
                for (m, d) in pair.members.iter_mut().zip(derived) {
                    m.col_path.push(d);
                }
            }
        }
    }

    /// §4.6 C-unfolding, restricted to summary paths associated with some
    /// query node: each unfolded path becomes a set of derived columns
    /// produced by `NavigateContent`.
    fn add_content_navigation(&self, pair: &mut Pair, ctx: &QueryCtx<'_>) {
        let useful: HashSet<NodeId> = ctx
            .qf
            .iter()
            .flat_map(|n| ctx.qpaths[n.idx()].iter().copied())
            .collect();
        let content_cols: Vec<usize> = (0..pair.cols.len())
            .filter(|&c| pair.cols[c].attr == AttrKind::Content)
            .collect();
        let mut next_group = pair.groups.iter().copied().max().unwrap_or(0) + 1;
        let mut nav_count = 0usize;
        for c in content_cols {
            // single-path content columns only (multi-path unfolding needs
            // the union decomposition of §4.6; see DESIGN.md)
            let paths: HashSet<Option<NodeId>> =
                pair.members.iter().map(|m| m.col_path[c]).collect();
            let bound: Vec<NodeId> = paths.iter().copied().flatten().collect();
            if bound.len() != 1 {
                continue;
            }
            let base = bound[0];
            // ID base column from the same group, if any
            let base_id_col = (0..pair.cols.len()).find(|&k| {
                pair.groups[k] == pair.groups[c]
                    && pair.cols[k].attr == AttrKind::Id
                    && pair.cols[k].scheme.derives_parent()
            });
            // descendants of `base` that the query cares about
            let mut targets: Vec<NodeId> = useful
                .iter()
                .copied()
                .filter(|&u| self.s.is_ancestor(base, u))
                .collect();
            targets.sort();
            for sd in targets {
                if nav_count >= 4 || pair.members.len() * 2 > self.opts.max_members {
                    return;
                }
                nav_count += 1;
                // child-axis step chain base → sd
                let chain = chain_labels(self.s, base, sd);
                let steps: Vec<NavStep> = chain
                    .iter()
                    .map(|&p| NavStep {
                        axis: Axis::Child,
                        label: Some(self.s.label(p)),
                    })
                    .collect();
                let attrs = vec![
                    AttrKind::Id,
                    AttrKind::Label,
                    AttrKind::Value,
                    AttrKind::Content,
                ];
                pair.plan = Plan::NavigateContent {
                    input: Box::new(pair.plan.clone()),
                    content_col: c,
                    base_id_col,
                    steps,
                    attrs: attrs.clone(),
                    optional: true,
                    name: Symbol::intern(&format!("nav{c}p{}", sd.0)),
                };
                let g = next_group;
                next_group += 1;
                for kind in attrs {
                    pair.cols.push(ColInfo {
                        attr: kind,
                        scheme: pair.cols[c].scheme,
                    });
                    pair.groups.push(g);
                }
                // member splitting: navigation bound vs missing
                let mut split = Vec::with_capacity(pair.members.len() * 2);
                for m in &pair.members {
                    if m.col_path[c].is_none() {
                        let mut mm = m.clone();
                        mm.col_path.extend([None, None, None, None]);
                        split.push(mm);
                        continue;
                    }
                    let mut bound_m = m.clone();
                    for p in chain_with(self.s, base, sd) {
                        upsert_node(&mut bound_m.nodes, p, Formula::top());
                    }
                    bound_m
                        .col_path
                        .extend([Some(sd), Some(sd), Some(sd), Some(sd)]);
                    split.push(bound_m);
                    let mut null_m = m.clone();
                    null_m.col_path.extend([None, None, None, None]);
                    split.push(null_m);
                }
                dedup_members(&mut split);
                pair.members = split;
            }
        }
    }

    /// All joins of `a` with `b` (line 4: "each possible way of joining").
    fn join_options(&self, a: &Pair, b: &Pair) -> Vec<Pair> {
        let mut out = Vec::new();
        let a_ids: Vec<usize> = (0..a.cols.len())
            .filter(|&c| a.cols[c].attr == AttrKind::Id)
            .collect();
        let b_ids: Vec<usize> = (0..b.cols.len())
            .filter(|&c| b.cols[c].attr == AttrKind::Id)
            .collect();
        for &ca in &a_ids {
            for &cb in &b_ids {
                if a.cols[ca].scheme != b.cols[cb].scheme {
                    continue;
                }
                // ⋈_=
                if let Some(p) = self.merge(a, b, ca, cb, JoinKind::IdEq) {
                    out.push(p);
                }
                if a.cols[ca].scheme.is_structural() {
                    for rel in [StructRel::Parent, StructRel::Ancestor] {
                        if let Some(p) = self.merge(a, b, ca, cb, JoinKind::Struct(rel, false)) {
                            out.push(p);
                        }
                        if let Some(p) = self.merge(a, b, ca, cb, JoinKind::Struct(rel, true)) {
                            out.push(p);
                        }
                    }
                }
            }
        }
        out
    }

    fn merge(&self, a: &Pair, b: &Pair, ca: usize, cb: usize, kind: JoinKind) -> Option<Pair> {
        // merge members pairwise; drop inconsistent combinations
        let mut members = Vec::new();
        for ma in &a.members {
            for mb in &b.members {
                let (Some(pa), Some(pb)) = (ma.col_path[ca], mb.col_path[cb]) else {
                    continue; // nulls never join
                };
                let ok = match kind {
                    JoinKind::IdEq => pa == pb,
                    JoinKind::Struct(StructRel::Parent, false) => self.s.is_parent(pa, pb),
                    JoinKind::Struct(StructRel::Ancestor, false) => self.s.is_ancestor(pa, pb),
                    JoinKind::Struct(StructRel::Parent, true) => self.s.is_parent(pb, pa),
                    JoinKind::Struct(StructRel::Ancestor, true) => self.s.is_ancestor(pb, pa),
                };
                if !ok {
                    continue;
                }
                let mut nodes = ma.nodes.clone();
                let mut sat = true;
                for (n, f) in &mb.nodes {
                    if !upsert_node(&mut nodes, *n, f.clone()) {
                        sat = false;
                        break;
                    }
                }
                if !sat {
                    continue;
                }
                let mut col_path = ma.col_path.clone();
                col_path.extend(mb.col_path.iter().copied());
                members.push(Member { nodes, col_path });
            }
        }
        if members.is_empty() {
            return None; // S-unsatisfiable join — discarded (line 5 remark)
        }
        dedup_members(&mut members);
        if members.len() > self.opts.max_members {
            return None;
        }
        let plan = match kind {
            JoinKind::IdEq => Plan::IdJoin {
                left: Box::new(a.plan.clone()),
                right: Box::new(b.plan.clone()),
                lcol: ca,
                rcol: cb,
            },
            JoinKind::Struct(rel, false) => Plan::StructJoin {
                left: Box::new(a.plan.clone()),
                right: Box::new(b.plan.clone()),
                lcol: ca,
                rcol: cb,
                rel,
            },
            JoinKind::Struct(rel, true) => Plan::StructJoin {
                // descendant side on the left input: swap roles by joining
                // b as the ancestor side, then the schema order is b ++ a;
                // to keep column order a ++ b we instead keep a left and
                // express the reversed relation by swapping operands.
                left: Box::new(b.plan.clone()),
                right: Box::new(a.plan.clone()),
                lcol: cb,
                rcol: ca,
                rel,
            },
        };
        // reversed struct joins put b's columns first
        let (cols, groups, members) = if matches!(kind, JoinKind::Struct(_, true)) {
            let mut cols = b.cols.clone();
            cols.extend(a.cols.iter().cloned());
            let mut groups = b.groups.clone();
            let off = groups.iter().copied().max().unwrap_or(0) + 1;
            groups.extend(a.groups.iter().map(|g| g + off));
            let members = members
                .into_iter()
                .map(|m| {
                    // member col_path was built a ++ b; rotate to b ++ a
                    let (av, bv) = m.col_path.split_at(a.cols.len());
                    let mut cp = bv.to_vec();
                    cp.extend(av.iter().copied());
                    Member {
                        nodes: m.nodes,
                        col_path: cp,
                    }
                })
                .collect();
            (cols, groups, members)
        } else {
            let mut cols = a.cols.clone();
            cols.extend(b.cols.iter().cloned());
            let mut groups = a.groups.clone();
            let off = groups.iter().copied().max().unwrap_or(0) + 1;
            let mut bg: Vec<u32> = b.groups.iter().map(|g| g + off).collect();
            if kind == JoinKind::IdEq {
                // same node on both sides: merge the groups
                let target = groups[ca];
                let src = bg[cb];
                for g in &mut bg {
                    if *g == src {
                        *g = target;
                    }
                }
            }
            groups.extend(bg);
            (cols, groups, members)
        };
        let mut views = a.views.clone();
        views.extend(b.views.iter().copied());
        views.sort_unstable();
        views.dedup();
        Some(Pair {
            plan,
            cols,
            groups,
            members,
            views,
            cost: 0.0,
        })
    }

    /// Line 7: tests a pair against the query for every admissible output
    /// column assignment; returns full rewritings and union candidates.
    fn try_pair(&self, pair: &Pair, ctx: &QueryCtx<'_>) -> Vec<Candidate> {
        let mut out = Vec::new();
        // candidate groups per query return node (Prop 3.7 + Prop 4.1)
        let mut cand_groups: Vec<Vec<u32>> = Vec::new();
        for &r in &ctx.returns {
            let want = ctx.qf.node(r).attrs;
            let rp = &ctx.qpaths[r.idx()];
            let mut groups: Vec<u32> = Vec::new();
            let all_groups: HashSet<u32> = pair.groups.iter().copied().collect();
            'g: for g in all_groups {
                let g_cols: Vec<usize> = (0..pair.cols.len())
                    .filter(|&c| pair.groups[c] == g)
                    .collect();
                // every wanted attr offered?
                for kind in [
                    AttrKind::Id,
                    AttrKind::Label,
                    AttrKind::Value,
                    AttrKind::Content,
                ] {
                    let need = match kind {
                        AttrKind::Id => want.id,
                        AttrKind::Label => want.label,
                        AttrKind::Value => want.value,
                        AttrKind::Content => want.content,
                    };
                    if need && !g_cols.iter().any(|&c| pair.cols[c].attr == kind) {
                        continue 'g;
                    }
                }
                // Prop 3.7 (relaxed pre-σ form): some member must bind the
                // column on a query-compatible path; members on other
                // paths may still be filtered by the σ adaptations, so the
                // strict subset check is left to the equivalence test.
                let some_compatible = pair
                    .members
                    .iter()
                    .any(|m| m.col_path[g_cols[0]].is_some_and(|p| rp.contains(&p)));
                if !some_compatible {
                    continue 'g;
                }
                groups.push(g);
            }
            if groups.is_empty() {
                return out;
            }
            groups.sort_unstable();
            cand_groups.push(groups);
        }
        // enumerate assignments (bounded product). Distinct query return
        // nodes must take **distinct** column groups: two returns on the
        // same summary path may still bind different document nodes, and
        // reusing one column would silently equate them (collapsing the
        // (x, y) tuples of q into (x, x)).
        let mut combos: Vec<Vec<u32>> = vec![Vec::new()];
        for groups in &cand_groups {
            let mut next = Vec::new();
            for c in &combos {
                for &g in groups {
                    if c.contains(&g) {
                        continue;
                    }
                    if next.len() >= 64 {
                        break;
                    }
                    let mut cc = c.clone();
                    cc.push(g);
                    next.push(cc);
                }
            }
            combos = next;
        }
        for combo in combos {
            if let Some(c) = self.test_combo(pair, ctx, &combo) {
                let full = matches!(c, Candidate::Equivalent(_));
                out.push(c);
                if full {
                    break; // one equivalent assignment per pair suffices
                }
            }
        }
        out
    }

    /// Tests one output assignment; applies §4.6 σ-adaptations first.
    fn test_combo(&self, pair: &Pair, ctx: &QueryCtx<'_>, combo: &[u32]) -> Option<Candidate> {
        let mut pair = pair.clone();
        // chosen column per (return, attr) in flat output order
        let mut chosen: Vec<usize> = Vec::with_capacity(ctx.out_cols.len());
        for (r, kind) in &ctx.out_cols {
            let g = combo[ctx.returns.iter().position(|x| x == r).expect("return")];
            let c = (0..pair.cols.len())
                .find(|&c| pair.groups[c] == g && pair.cols[c].attr == *kind)?;
            chosen.push(c);
        }
        // σ adaptations per query return node
        for (ri, &r) in ctx.returns.iter().enumerate() {
            let g = combo[ri];
            let rep = (0..pair.cols.len()).find(|&c| pair.groups[c] == g)?;
            let qn = ctx.qf.node(r);
            let under_optional = node_or_ancestor_optional(&ctx.qf, r);
            // label selection (σ_{n.L=l}) when a * view column feeds a
            // labeled query node
            if let Some(l) = qn.label {
                let mismatched = pair
                    .members
                    .iter()
                    .any(|m| m.col_path[rep].is_some_and(|p| self.s.label(p) != l));
                if mismatched && !under_optional {
                    let lcol = (0..pair.cols.len())
                        .find(|&c| pair.groups[c] == g && pair.cols[c].attr == AttrKind::Label);
                    let lcol = lcol?;
                    pair.plan = Plan::Select {
                        input: Box::new(pair.plan.clone()),
                        pred: Predicate::LabelEq {
                            col: lcol,
                            label: l,
                        },
                    };
                    pair.members
                        .retain(|m| m.col_path[rep].is_none_or(|p| self.s.label(p) == l));
                    if pair.members.is_empty() {
                        return None;
                    }
                }
            }
            // value selection (σ_{φ(v)})
            if !qn.predicate.is_top() && !under_optional {
                let needs = pair.members.iter().any(|m| {
                    m.col_path[rep].is_some_and(|p| {
                        let mf = m
                            .nodes
                            .iter()
                            .find(|(n, _)| *n == p)
                            .map(|(_, f)| f.clone())
                            .unwrap_or_else(Formula::top);
                        !mf.implies(&qn.predicate)
                    })
                });
                if needs {
                    let vcol = (0..pair.cols.len())
                        .find(|&c| pair.groups[c] == g && pair.cols[c].attr == AttrKind::Value)?;
                    pair.plan = Plan::Select {
                        input: Box::new(pair.plan.clone()),
                        pred: Predicate::Value {
                            col: vcol,
                            formula: qn.predicate.clone(),
                        },
                    };
                    let mut refined = Vec::new();
                    for m in &pair.members {
                        let mut mm = m.clone();
                        if let Some(p) = mm.col_path[rep] {
                            if !conj_node(&mut mm.nodes, p, &qn.predicate) {
                                continue; // unsatisfiable member filtered out
                            }
                        }
                        refined.push(mm);
                    }
                    if refined.is_empty() {
                        return None;
                    }
                    pair.members = refined;
                }
            }
        }
        // designations per member, in query-return order
        let designations: Vec<Vec<Option<NodeId>>> = pair
            .members
            .iter()
            .map(|m| {
                ctx.returns
                    .iter()
                    .enumerate()
                    .map(|(ri, _)| {
                        let g = combo[ri];
                        let rep = (0..pair.cols.len())
                            .find(|&c| pair.groups[c] == g)
                            .expect("group non-empty");
                        m.col_path[rep]
                    })
                    .collect()
            })
            .collect();

        // direction A: union of members ⊆ q (each member individually)
        for (m, des) in pair.members.iter().zip(designations.iter()) {
            let te = CTree::from_path_set(self.s, &m.nodes, des, self.opts.canon.use_strong);
            if !tuple_in(&ctx.qf, &te, self.s, FormulaMode::Implication) {
                return None;
            }
        }
        // direction B: every tq ∈ mod_S(q) covered by some member
        let mut coverage = vec![false; ctx.qmodel.len()];
        let mut all = true;
        for (ti, tq) in ctx.qmodel.iter().enumerate() {
            let tq_paths: HashMap<NodeId, Formula> = tq.path_set().into_iter().collect();
            let tq_ret = tq.return_paths();
            let mut matching: Vec<HashMap<NodeId, Formula>> = Vec::new();
            'mem: for (m, des) in pair.members.iter().zip(designations.iter()) {
                if des != &tq_ret {
                    continue;
                }
                for (n, f) in &m.nodes {
                    match tq_paths.get(n) {
                        Some(tf) => {
                            if !tf.and(f).is_sat() {
                                continue 'mem;
                            }
                        }
                        None => continue 'mem,
                    }
                }
                matching.push(m.formula_map());
            }
            if matching.is_empty() {
                all = false;
                continue;
            }
            if ctx.decorated || matching.iter().any(|m| !m.is_empty()) {
                let lhs: HashMap<NodeId, Formula> = tq
                    .path_set()
                    .into_iter()
                    .filter(|(_, f)| !f.is_top())
                    .collect();
                if !implies_disjunction(&lhs, &matching) {
                    all = false;
                    continue;
                }
            }
            coverage[ti] = true;
        }
        let projected = self.output_plan(&pair, ctx, &chosen)?;
        if all {
            Some(Candidate::Equivalent(projected))
        } else if coverage.iter().any(|&c| c) {
            Some(Candidate::Partial(projected, coverage))
        } else {
            None
        }
    }

    /// Builds the final plan: projection to the query's flat output, then
    /// the §4.6 nesting adaptation (group-by per nested edge, keyed on the
    /// anchor's stored ID).
    fn output_plan(&self, pair: &Pair, ctx: &QueryCtx<'_>, chosen: &[usize]) -> Option<Plan> {
        let mut plan = Plan::Project {
            input: Box::new(pair.plan.clone()),
            cols: chosen.to_vec(),
        };
        let nested: Vec<PNodeId> = ctx.q.nested_edges();
        if nested.is_empty() {
            return Some(Plan::DupElim {
                input: Box::new(plan),
            });
        }
        // every nesting anchor must expose an ID in the output
        for &c in &nested {
            let anchor = ctx.q.parent(c).expect("nested edge has a parent");
            let ok = anchor == ctx.q.root()
                || ctx
                    .out_cols
                    .iter()
                    .any(|(r, k)| *r == anchor && *k == AttrKind::Id);
            if !ok {
                return None; // "this nesting step cannot be obtained"
            }
        }
        // current layout: one slot per flat output column
        #[derive(Clone, PartialEq)]
        enum Slot {
            Flat(usize),
            Table(PNodeId),
        }
        let mut layout: Vec<Slot> = (0..ctx.out_cols.len()).map(Slot::Flat).collect();
        // deepest-first nesting
        let mut order = nested;
        order.sort_by_key(|&c| std::cmp::Reverse(depth_of(ctx.q, c)));
        for c in order {
            let in_subtree = |s: &Slot| -> bool {
                match s {
                    Slot::Flat(i) => {
                        let (r, _) = ctx.out_cols[*i];
                        r == c || ctx.q.is_ancestor(c, r)
                    }
                    Slot::Table(t) => *t == c || ctx.q.is_ancestor(c, *t),
                }
            };
            let key_cols: Vec<usize> = (0..layout.len())
                .filter(|&i| !in_subtree(&layout[i]))
                .collect();
            let nested_cols: Vec<usize> = (0..layout.len())
                .filter(|&i| in_subtree(&layout[i]))
                .collect();
            plan = Plan::Nest {
                input: Box::new(plan),
                key_cols: key_cols.clone(),
                nested_cols,
                name: Symbol::intern(&format!("A#{}", c.0)),
            };
            let mut new_layout: Vec<Slot> = key_cols.iter().map(|&i| layout[i].clone()).collect();
            new_layout.push(Slot::Table(c));
            layout = new_layout;
        }
        // final reorder to match schema_of(q)
        let target = target_layout(ctx.q);
        let perm: Option<Vec<usize>> = target
            .iter()
            .map(|t| {
                layout.iter().position(|s| match (s, t) {
                    (Slot::Flat(i), TargetSlot::Flat(r, k)) => {
                        ctx.out_cols[*i].0 == *r && ctx.out_cols[*i].1 == *k
                    }
                    (Slot::Table(a), TargetSlot::Table(b)) => a == b,
                    _ => false,
                })
            })
            .collect();
        let perm = perm?;
        Some(Plan::DupElim {
            input: Box::new(Plan::Project {
                input: Box::new(plan),
                cols: perm,
            }),
        })
    }

    /// Lines 13-14: minimal unions of partial candidates covering
    /// `mod_S(q)`, ranked by summed branch cost (cheapest union first)
    /// with dominated branches deduplicated before enumeration.
    fn build_unions(
        &self,
        ctx: &QueryCtx<'_>,
        candidates: &[(Plan, Vec<bool>)],
        result: &mut RewriteResult,
        t0: Instant,
        model: &CostModel<'_>,
    ) {
        let n = ctx.qmodel.len();
        if n == 0 || candidates.is_empty() {
            return;
        }
        let costed: Vec<(f64, Vec<bool>)> = candidates
            .iter()
            .map(|(plan, cov)| (model.estimate(plan).cost, cov.clone()))
            .collect();
        for sel in rank_union_covers(&costed).into_iter().take(4) {
            let plan = Plan::DupElim {
                input: Box::new(Plan::Union {
                    inputs: sel.iter().map(|&i| candidates[i].0.clone()).collect(),
                }),
            };
            if result.stats.first_rewriting.is_none() {
                result.stats.first_rewriting = Some(t0.elapsed());
            }
            let est = model.estimate(&plan);
            result.rewritings.push(Rewriting {
                scans: plan.scan_count(),
                plan,
                est,
            });
            if result.rewritings.len() >= self.opts.max_rewritings {
                return;
            }
        }
    }
}

/// Ranks minimal union covers of `mod_S(q)`, cheapest first.
///
/// `cands` holds, per union candidate, its estimated plan cost and its
/// per-canonical-tree coverage bitset. Candidates whose coverage is a
/// subset of a cheaper (or equally cheap, earlier) candidate's are
/// *dominated* — an overlapping branch that can only pad a union — and
/// are dropped before enumeration. Covers of size 2 are preferred (size 3
/// only when no pair covers), non-minimal covers are discarded, and the
/// survivors are ordered by summed branch cost.
fn rank_union_covers(cands: &[(f64, Vec<bool>)]) -> Vec<Vec<usize>> {
    let k = cands.len();
    if k == 0 {
        return Vec::new();
    }
    let n = cands[0].1.len();
    let subset = |a: &[bool], b: &[bool]| a.iter().zip(b).all(|(x, y)| !*x || *y);
    let mut alive: Vec<usize> = Vec::new();
    'cand: for i in 0..k {
        for j in 0..k {
            if i == j || !subset(&cands[i].1, &cands[j].1) {
                continue;
            }
            let cheaper = cands[j].0 < cands[i].0;
            let tie = cands[j].0 == cands[i].0 && (!subset(&cands[j].1, &cands[i].1) || j < i);
            if cheaper || tie {
                continue 'cand; // i is dominated by j
            }
        }
        alive.push(i);
    }
    let covers = |sel: &[usize]| (0..n).all(|t| sel.iter().any(|&i| cands[i].1[t]));
    let mut found: Vec<Vec<usize>> = Vec::new();
    for (a, &i) in alive.iter().enumerate() {
        for &j in &alive[a + 1..] {
            if covers(&[i, j]) {
                found.push(vec![i, j]);
            }
        }
    }
    if found.is_empty() {
        for (a, &i) in alive.iter().enumerate() {
            for (b, &j) in alive.iter().enumerate().skip(a + 1) {
                for &l in &alive[b + 1..] {
                    if covers(&[i, j, l]) {
                        found.push(vec![i, j, l]);
                    }
                }
            }
        }
    }
    // minimality: drop covers that still cover with a branch removed
    found.retain(|sel| {
        (0..sel.len()).all(|drop| {
            let sub: Vec<usize> = sel
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, &x)| x)
                .collect();
            !covers(&sub)
        })
    });
    found.sort_by(|a, b| {
        let ca: f64 = a.iter().map(|&i| cands[i].0).sum();
        let cb: f64 = b.iter().map(|&i| cands[i].0).sum();
        ca.total_cmp(&cb)
    });
    found
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    IdEq,
    /// (relation, reversed): reversed means the *b* side is the ancestor.
    Struct(StructRel, bool),
}

enum Candidate {
    Equivalent(Plan),
    Partial(Plan, Vec<bool>),
}

/// Flat output columns of the query: (return node, attr) in schema order.
fn flat_out_cols(qf: &Pattern) -> Vec<(PNodeId, AttrKind)> {
    let mut out = Vec::new();
    for r in qf.return_nodes() {
        let a = qf.node(r).attrs;
        if a.id {
            out.push((r, AttrKind::Id));
        }
        if a.label {
            out.push((r, AttrKind::Label));
        }
        if a.value {
            out.push((r, AttrKind::Value));
        }
        if a.content {
            out.push((r, AttrKind::Content));
        }
        if !a.any() {
            // bare `ret` nodes need an identity; require ID semantics
            out.push((r, AttrKind::Id));
        }
    }
    out
}

enum TargetSlot {
    Flat(PNodeId, AttrKind),
    Table(PNodeId),
}

/// The top-level slot layout of `schema_of(q)`.
fn target_layout(q: &Pattern) -> Vec<TargetSlot> {
    fn rec(q: &Pattern, n: PNodeId, out: &mut Vec<TargetSlot>) {
        let a = q.node(n).attrs;
        if a.id || q.node(n).ret && !a.any() {
            out.push(TargetSlot::Flat(n, AttrKind::Id));
        }
        if a.label {
            out.push(TargetSlot::Flat(n, AttrKind::Label));
        }
        if a.value {
            out.push(TargetSlot::Flat(n, AttrKind::Value));
        }
        if a.content {
            out.push(TargetSlot::Flat(n, AttrKind::Content));
        }
        for &c in q.children(n) {
            if q.node(c).nested {
                out.push(TargetSlot::Table(c));
            } else {
                rec(q, c, out);
            }
        }
    }
    let mut out = Vec::new();
    rec(q, q.root(), &mut out);
    out
}

fn depth_of(p: &Pattern, n: PNodeId) -> usize {
    let mut d = 0;
    let mut cur = n;
    while let Some(par) = p.parent(cur) {
        d += 1;
        cur = par;
    }
    d
}

fn node_or_ancestor_optional(p: &Pattern, n: PNodeId) -> bool {
    let mut cur = Some(n);
    while let Some(x) = cur {
        if p.node(x).optional {
            return true;
        }
        cur = p.parent(x);
    }
    false
}

/// Inserts/conjoins a formula at a path; returns false when unsatisfiable.
/// Also inserts all missing ancestors (ancestor closure is maintained by
/// construction of the inputs; this is a safety net for derived paths).
fn upsert_node(nodes: &mut Vec<(NodeId, Formula)>, path: NodeId, f: Formula) -> bool {
    match nodes.binary_search_by_key(&path.0, |(n, _)| n.0) {
        Ok(i) => {
            let merged = nodes[i].1.and(&f);
            if !merged.is_sat() {
                return false;
            }
            nodes[i].1 = merged;
            true
        }
        Err(i) => {
            if !f.is_sat() {
                return false;
            }
            nodes.insert(i, (path, f));
            true
        }
    }
}

fn conj_node(nodes: &mut Vec<(NodeId, Formula)>, path: NodeId, f: &Formula) -> bool {
    upsert_node(nodes, path, f.clone())
}

fn dedup_members(members: &mut Vec<Member>) {
    let mut seen = HashSet::new();
    members.retain(|m| {
        let key = format!("{}§{:?}", m.signature(), m.col_path);
        seen.insert(key)
    });
}

/// The chain of summary nodes strictly between `a` (exclusive) and `b`
/// (inclusive).
fn chain_labels(s: &Summary, a: NodeId, b: NodeId) -> Vec<NodeId> {
    use smv_xml::LabeledTree;
    s.tree_chain_down(a, b)
}

/// The chain including intermediate nodes, used for member extension.
fn chain_with(s: &Summary, a: NodeId, b: NodeId) -> Vec<NodeId> {
    chain_labels(s, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_algebra::execute;
    use smv_pattern::parse_pattern;
    use smv_views::{materialize, Catalog};
    use smv_xml::Document;

    fn opts() -> RewriteOpts {
        RewriteOpts::default()
    }

    /// End-to-end: rewrite, execute, compare against direct evaluation.
    fn check_roundtrip(
        doc: &Document,
        q_src: &str,
        views_src: &[(&str, &str)],
        expect_rewriting: bool,
    ) {
        let s = Summary::of(doc);
        let q = parse_pattern(q_src).unwrap();
        let mut catalog = Catalog::new();
        let mut defs = Vec::new();
        for (name, src) in views_src {
            let v = View::new(name, parse_pattern(src).unwrap(), IdScheme::OrdPath);
            catalog.add(v.clone(), doc);
            defs.push(v);
        }
        let result = rewrite(&q, &defs, &s, &opts());
        if !expect_rewriting {
            assert!(
                result.rewritings.is_empty(),
                "unexpected rewriting for {q_src}: {}",
                result.rewritings[0].plan
            );
            return;
        }
        assert!(
            !result.rewritings.is_empty(),
            "no rewriting found for {q_src} using {views_src:?}"
        );
        let expected = materialize(&q, doc, IdScheme::OrdPath);
        for rw in &result.rewritings {
            let got = execute(&rw.plan, &catalog).expect("plan executes");
            assert!(
                got.set_eq(&expected),
                "plan output differs for {q_src}\nplan:\n{}\ngot:\n{got}\nexpected:\n{expected}",
                rw.plan
            );
        }
    }

    #[test]
    fn identity_rewriting_single_view() {
        let doc = Document::from_parens(r#"a(b="1" b="2" c)"#);
        check_roundtrip(&doc, "a(/b{id,v})", &[("v1", "a(/b{id,v})")], true);
    }

    #[test]
    fn summary_narrows_wildcard_view() {
        // the §1 motivating case: the view stores `*` children but the
        // summary proves they are all `b`
        let doc = Document::from_parens(r#"a(b="1" b="2")"#);
        check_roundtrip(&doc, "a(/b{id,v})", &[("v1", "a(/*{id,v})")], true);
    }

    #[test]
    fn label_selection_adaptation() {
        // summary has b and c children: σ_L is required
        let doc = Document::from_parens(r#"a(b="1" c="2")"#);
        check_roundtrip(&doc, "a(/b{id,v})", &[("v1", "a(/*{id,l,v})")], true);
        // without an L column the σ cannot be applied
        check_roundtrip(&doc, "a(/b{id,v})", &[("v1", "a(/*{id,v})")], false);
    }

    #[test]
    fn value_selection_adaptation() {
        let doc = Document::from_parens(r#"a(b="1" b="5" b="9")"#);
        check_roundtrip(
            &doc,
            "a(/b{id,v}[v>2 and v<8])",
            &[("v1", "a(/b{id,v})")],
            true,
        );
    }

    #[test]
    fn structural_join_combines_two_views() {
        // V1 stores items, V2 stores names; a structural join reassembles
        let doc = Document::from_parens(r#"r(item(name="p1") item(name="p2"))"#);
        check_roundtrip(
            &doc,
            "r(/item{id}(/name{id,v}))",
            &[("vi", "r(/item{id})"), ("vn", "r(//name{id,v})")],
            true,
        );
    }

    #[test]
    fn id_join_combines_attribute_sets() {
        // the §4.6 example: p1 = //*{id,l}, p2 = //*{id,v}; join gives {id,l,v}
        let doc = Document::from_parens(r#"a(x="1" y="2")"#);
        check_roundtrip(
            &doc,
            "a(/*{id,l,v})",
            &[("p1", "a(/*{id,l})"), ("p2", "a(/*{id,v})")],
            true,
        );
    }

    #[test]
    fn optional_view_serves_optional_query() {
        let doc = Document::from_parens(r#"a(item(bold="g") item)"#);
        check_roundtrip(
            &doc,
            "a(/item{id}(?/bold{v}))",
            &[("v1", "a(/item{id}(?/bold{v}))")],
            true,
        );
    }

    #[test]
    fn required_view_cannot_serve_optional_query() {
        // the view loses items without bold; the optional query needs them
        let doc = Document::from_parens(r#"a(item(bold="g") item)"#);
        check_roundtrip(
            &doc,
            "a(/item{id}(?/bold{v}))",
            &[("v1", "a(/item{id}(/bold{v}))")],
            false,
        );
    }

    #[test]
    fn nested_query_from_flat_views() {
        // §4.6(ii): nesting reconstructed by group-by on the anchor's ID
        let doc = Document::from_parens(r#"a(item(li="x" li="y") item(li="z") item)"#);
        check_roundtrip(
            &doc,
            "a(/item{id}(?%/li{v}))",
            &[("v1", "a(/item{id}(?/li{v}))")],
            true,
        );
    }

    #[test]
    fn nested_view_serves_flat_query_by_unnesting() {
        let doc = Document::from_parens(r#"a(item(li="x" li="y") item)"#);
        check_roundtrip(
            &doc,
            "a(/item{id}(?/li{v}))",
            &[("v1", "a(/item{id}(?%/li{v}))")],
            true,
        );
    }

    #[test]
    fn content_navigation_extracts_descendants() {
        // keywords live only inside the stored content of li (the paper's
        // second motivating bullet in §1)
        let doc = Document::from_parens(r#"a(item(li(kw="k1") li(kw="k2")))"#);
        check_roundtrip(&doc, "a(//kw{v})", &[("v1", "a(//li{id,c})")], true);
    }

    #[test]
    fn virtual_ids_join_through_derived_ancestor() {
        // V1 stores name IDs; the query wants item IDs: derive the parent
        // ID from the name ID (§4.6 virtual IDs)
        let doc = Document::from_parens(r#"r(item(name="a") item(name="b"))"#);
        check_roundtrip(&doc, "r(/item{id})", &[("vn", "r(/item(/name{id}))")], true);
    }

    #[test]
    fn union_rewriting_covers_wildcard() {
        let doc = Document::from_parens(r#"a(b="1" c="2")"#);
        check_roundtrip(
            &doc,
            "a(/*{id,v})",
            &[("vb", "a(/b{id,v})"), ("vc", "a(/c{id,v})")],
            true,
        );
    }

    #[test]
    fn no_rewriting_when_data_is_missing() {
        let doc = Document::from_parens(r#"a(b="1" c="2")"#);
        check_roundtrip(&doc, "a(/b{id,v})", &[("vc", "a(/c{id,v})")], false);
    }

    #[test]
    fn prop_3_4_prunes_unrelated_views() {
        let doc = Document::from_parens(r#"r(a(b="1") c(d="2"))"#);
        let s = Summary::of(&doc);
        let q = parse_pattern("r(/a(/b{id,v}))").unwrap();
        let views = vec![
            View::new(
                "vb",
                parse_pattern("r(//b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            View::new(
                "vd",
                parse_pattern("r(//d{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
        ];
        let result = rewrite(&q, &views, &s, &opts());
        assert_eq!(result.stats.views_total, 2);
        assert_eq!(result.stats.views_kept, 1, "vd pruned by Prop 3.4");
        assert!(!result.rewritings.is_empty());
    }

    #[test]
    fn cost_ranking_prefers_the_cheaper_view() {
        // the wide view needs a label selection over a fatter extent; the
        // exact view is a plain scan — ranking puts the exact view first
        let doc = Document::from_parens(r#"a(b="1" b="2" c="3" c="4" c="5")"#);
        let s = Summary::of(&doc);
        let q = parse_pattern("a(/b{id,v})").unwrap();
        let views = vec![
            View::new(
                "wide",
                parse_pattern("a(/*{id,l,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            View::new(
                "exact",
                parse_pattern("a(/b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
        ];
        let r = rewrite(&q, &views, &s, &opts());
        assert!(r.rewritings.len() >= 2, "both views rewrite the query");
        assert_eq!(
            r.rewritings[0].plan.views_used(),
            vec!["exact".to_string()],
            "cheapest-ranked plan scans the exact view:\n{}",
            r.rewritings[0].plan
        );
        for w in r.rewritings.windows(2) {
            assert!(w[0].est.cost <= w[1].est.cost, "ranked by estimated cost");
        }
    }

    #[test]
    fn branch_and_bound_prunes_dominated_prefixes() {
        let doc = Document::from_parens(r#"r(item(name="a") item(name="b") item(name="c"))"#);
        let s = Summary::of(&doc);
        let q = parse_pattern("r(/item{id}(/name{id,v}))").unwrap();
        let views = vec![
            View::new(
                "vi",
                parse_pattern("r(/item{id})").unwrap(),
                IdScheme::OrdPath,
            ),
            View::new(
                "vn",
                parse_pattern("r(//name{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            View::new(
                "vq",
                parse_pattern("r(/item{id}(/name{id,v}))").unwrap(),
                IdScheme::OrdPath,
            ),
        ];
        let mut on = opts();
        on.cost_prune = true;
        let mut off = opts();
        off.cost_prune = false;
        let r_on = rewrite(&q, &views, &s, &on);
        let r_off = rewrite(&q, &views, &s, &off);
        // same best plan either way, fewer pairs enumerated with the bound
        assert!(!r_on.rewritings.is_empty() && !r_off.rewritings.is_empty());
        assert!(r_on.stats.pairs_pruned > 0, "the bound fires");
        assert!(
            r_on.stats.pairs_explored < r_off.stats.pairs_explored,
            "B&B explores fewer pairs: {} vs {}",
            r_on.stats.pairs_explored,
            r_off.stats.pairs_explored
        );
        assert_eq!(
            r_on.rewritings[0].plan.views_used(),
            r_off.rewritings[0].plan.views_used(),
            "pruning never changes the winning plan"
        );
    }

    #[test]
    fn union_covers_rank_cheapest_and_drop_dominated() {
        // 3 trees; candidate 1 ({1}, cost 9) is dominated by 2 ({1,2},
        // cost 2) and must not appear in any cover
        let cands = vec![
            (1.0, vec![true, false, false]),
            (9.0, vec![false, true, false]),
            (2.0, vec![false, true, true]),
            (3.0, vec![true, false, true]),
        ];
        let covers = rank_union_covers(&cands);
        assert_eq!(covers, vec![vec![0, 2], vec![2, 3]]);
        // equal-coverage duplicates collapse to the cheaper one
        let dupes = vec![
            (5.0, vec![true, false]),
            (1.0, vec![true, false]),
            (3.0, vec![false, true]),
        ];
        assert_eq!(rank_union_covers(&dupes), vec![vec![1, 2]]);
        // triples only when no pair covers
        let tri = vec![
            (1.0, vec![true, false, false]),
            (1.0, vec![false, true, false]),
            (1.0, vec![false, false, true]),
        ];
        assert_eq!(rank_union_covers(&tri), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn union_rewriting_dedups_equal_coverage_branches() {
        // vb and vb2 cover the same canonical tree; only one union (with
        // vc) must be emitted, not one per duplicate
        let doc = Document::from_parens(r#"a(b="1" c="2")"#);
        let s = Summary::of(&doc);
        let q = parse_pattern("a(/*{id,v})").unwrap();
        let views = vec![
            View::new(
                "vb",
                parse_pattern("a(/b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            View::new(
                "vb2",
                parse_pattern("a(/b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            View::new(
                "vc",
                parse_pattern("a(/c{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
        ];
        let r = rewrite(&q, &views, &s, &opts());
        let unions: Vec<&Rewriting> = r
            .rewritings
            .iter()
            .filter(|rw| rw.plan.views_used().len() >= 2)
            .collect();
        assert_eq!(unions.len(), 1, "duplicate-coverage branch not deduped");
        assert!(unions[0].plan.views_used().contains(&"vc".to_string()));
    }

    #[test]
    fn best_rewriting_cost_probe() {
        let doc = Document::from_parens(r#"a(b="1" b="2" c="3" c="4" c="5")"#);
        let s = Summary::of(&doc);
        let q = parse_pattern("a(/b{id,v})").unwrap();
        let exact = View::new(
            "exact",
            parse_pattern("a(/b{id,v})").unwrap(),
            IdScheme::OrdPath,
        );
        let wide = View::new(
            "wide",
            parse_pattern("a(/*{id,l,v})").unwrap(),
            IdScheme::OrdPath,
        );
        let o = opts();
        let both = vec![wide.clone(), exact];
        let cards = DefCards::new(&both, &s);
        let c_both = best_rewriting_cost(&q, &both, &s, &o, &cards).expect("rewrites");
        let wide_only = vec![wide];
        let cards_w = DefCards::new(&wide_only, &s);
        let c_wide = best_rewriting_cost(&q, &wide_only, &s, &o, &cards_w).expect("rewrites");
        assert!(
            c_both < c_wide,
            "exact view must price below the filtered wide scan: {c_both} vs {c_wide}"
        );
        // no views → no rewriting, not a phantom cost
        assert_eq!(best_rewriting_cost(&q, &[], &s, &o, &cards), None);
        // unrelated view set → None
        let vd = vec![View::new(
            "vd",
            parse_pattern("a(/c{id,v})").unwrap(),
            IdScheme::OrdPath,
        )];
        let cards_d = DefCards::new(&vd, &s);
        assert_eq!(best_rewriting_cost(&q, &vd, &s, &o, &cards_d), None);
    }

    #[test]
    fn first_only_stops_early() {
        let doc = Document::from_parens(r#"a(b="1")"#);
        let s = Summary::of(&doc);
        let q = parse_pattern("a(/b{id,v})").unwrap();
        let views = vec![
            View::new(
                "v1",
                parse_pattern("a(/b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            View::new(
                "v2",
                parse_pattern("a(/*{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
        ];
        let mut o = opts();
        o.first_only = true;
        let result = rewrite(&q, &views, &s, &o);
        assert_eq!(result.rewritings.len(), 1);
        assert!(result.stats.first_rewriting.is_some());
    }
}
