//! Pattern containment under summary constraints.
//!
//! The decision procedure of the paper:
//!
//! * **Proposition 3.1** — `p ⊆_S q` iff for every canonical tree
//!   `t_e ∈ mod_S(p)`, the designated return tuple of `t_e` belongs to
//!   `q(t_e)`.
//! * **Proposition 3.2** — containment in a union: every `t_e` must have
//!   its return tuple produced by *some* member.
//! * **§4.2** — decorated patterns: single containment evaluates `q(t_e)`
//!   with *decorated embeddings* (`φ_{e(n)} ⇒ φ_n`); union containment
//!   additionally requires the value-coverage implication
//!   `φ_{t_e} ⇒ ⋁_{t'_e ∈ g(t_e)} φ_{t'_e}` over per-path formulas.
//! * **Proposition 4.1** — attribute patterns must store the same
//!   attributes position-wise.
//! * **Proposition 4.2** — nested patterns need equal nesting-sequence
//!   lengths and position-wise equal (or one-to-one-connected, §4.5)
//!   nesting anchors.
//! * **§4.3** — optional patterns: canonical models already contain the
//!   cut variants, and `q(t_e)` is evaluated with maximal-match optional
//!   semantics, so `⊥` columns are compared faithfully.

use smv_pattern::canonical::{canonical_model, CTree, CanonOpts, CanonicalModel};
use smv_pattern::formula::Formula;
use smv_pattern::matching::{MatchTarget, Matcher};
use smv_pattern::Pattern;
use smv_summary::Summary;
use smv_xml::{Label, LabeledTree, NodeId, Value};
use std::collections::HashMap;

/// Tri-state answer: `Unknown` arises only when a canonical model was
/// truncated by [`CanonOpts::max_trees`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Containment proven.
    Contained,
    /// A counterexample canonical tree was found.
    NotContained,
    /// The model was truncated; no answer (treat conservatively).
    Unknown,
}

impl Decision {
    /// Is this a definite yes?
    pub fn is_contained(self) -> bool {
        matches!(self, Decision::Contained)
    }
}

/// Options for containment tests.
#[derive(Clone, Debug, Default)]
pub struct ContainOpts {
    /// Canonical-model options (strong edges, size cap).
    pub canon: CanonOpts,
}

/// Decides `p ⊆_S q` (Proposition 3.1 with the §4 extensions).
pub fn contained(p: &Pattern, q: &Pattern, s: &Summary, opts: &ContainOpts) -> Decision {
    if !signatures_compatible(p, q) {
        return Decision::NotContained;
    }
    // Proposition 3.7 pre-filter: return paths of p must be ⊆ those of q.
    let p_paths = smv_pattern::return_paths(p, s);
    let q_paths = smv_pattern::return_paths(q, s);
    for (pp, qp) in p_paths.iter().zip(q_paths.iter()) {
        if !pp.iter().all(|x| qp.contains(x)) {
            return Decision::NotContained;
        }
    }
    let model = canonical_model(p, s, &opts.canon);
    for te in &model.trees {
        if !tuple_in(q, te, s, FormulaMode::Implication) {
            return Decision::NotContained;
        }
    }
    if model.truncated {
        Decision::Unknown
    } else {
        Decision::Contained
    }
}

/// Decides `p ⊆_S q_1 ∪ … ∪ q_m` (Proposition 3.2 + §4.2 condition 2).
pub fn contained_in_union(
    p: &Pattern,
    qs: &[&Pattern],
    s: &Summary,
    opts: &ContainOpts,
) -> Decision {
    if qs.is_empty() {
        // contained in the empty union iff unsatisfiable
        let model = canonical_model(p, s, &opts.canon);
        return if model.trees.is_empty() && !model.truncated {
            Decision::Contained
        } else if model.truncated {
            Decision::Unknown
        } else {
            Decision::NotContained
        };
    }
    if qs.len() == 1 && no_predicates(p) && no_predicates(qs[0]) {
        return contained(p, qs[0], s, opts);
    }
    let candidates: Vec<&&Pattern> = qs.iter().filter(|q| signatures_compatible(p, q)).collect();
    if candidates.is_empty() {
        return Decision::NotContained;
    }
    let model = canonical_model(p, s, &opts.canon);
    // canonical models of the union members, built lazily
    let mut member_models: HashMap<usize, CanonicalModel> = HashMap::new();
    let mut unknown = model.truncated;
    for te in &model.trees {
        // condition 1: some member structurally produces the tuple; for
        // decorated members, compatibility (joint satisfiability) suffices
        // here — values are covered by condition 2.
        let f_te: Vec<usize> = qs
            .iter()
            .enumerate()
            .filter(|(_, q)| {
                signatures_compatible(p, q) && tuple_in(q, te, s, FormulaMode::Compatibility)
            })
            .map(|(i, _)| i)
            .collect();
        if f_te.is_empty() {
            return Decision::NotContained;
        }
        // condition 2: value coverage. Trivial when nothing is decorated.
        if no_predicates(p) && f_te.iter().all(|&i| no_predicates(qs[i])) {
            continue;
        }
        let lhs = te.path_formula();
        let te_ret = te.return_paths();
        let mut rhs: Vec<HashMap<NodeId, Formula>> = Vec::new();
        for &i in &f_te {
            let m = member_models
                .entry(i)
                .or_insert_with(|| canonical_model(qs[i], s, &opts.canon));
            if m.truncated {
                unknown = true;
            }
            for t2 in &m.trees {
                if t2.return_paths() == te_ret {
                    rhs.push(t2.path_formula());
                }
            }
        }
        if !implies_disjunction(&lhs, &rhs) {
            return Decision::NotContained;
        }
    }
    if unknown {
        Decision::Unknown
    } else {
        Decision::Contained
    }
}

/// Decides `p ≡_S q` (two-way containment, §3.1).
pub fn equivalent(p: &Pattern, q: &Pattern, s: &Summary, opts: &ContainOpts) -> Decision {
    match (contained(p, q, s, opts), contained(q, p, s, opts)) {
        (Decision::Contained, Decision::Contained) => Decision::Contained,
        (Decision::Unknown, _) | (_, Decision::Unknown) => Decision::Unknown,
        _ => Decision::NotContained,
    }
}

/// `p` is `S`-unsatisfiable iff its canonical model is empty (§2.4).
pub fn is_satisfiable(p: &Pattern, s: &Summary, opts: &ContainOpts) -> bool {
    canonical_model(p, s, &opts.canon).is_satisfiable()
}

fn no_predicates(p: &Pattern) -> bool {
    p.iter().all(|n| p.node(n).predicate.is_top())
}

/// Proposition 4.1 condition 1 (attribute signatures) and Proposition 4.2
/// condition 2(a) (nesting-sequence lengths), plus equal arity.
fn signatures_compatible(p: &Pattern, q: &Pattern) -> bool {
    let pr = p.return_nodes();
    let qr = q.return_nodes();
    if pr.len() != qr.len() {
        return false;
    }
    for (&a, &b) in pr.iter().zip(qr.iter()) {
        if p.node(a).attrs != q.node(b).attrs {
            return false;
        }
        if p.nesting_anchors(a).len() != q.nesting_anchors(b).len() {
            return false;
        }
    }
    true
}

/// How formulas gate an embedding of `q` into a canonical tree.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum FormulaMode {
    /// Decorated embeddings: `φ_{t}(v) ⇒ φ_q(v)` (single containment).
    Implication,
    /// Compatibility: `φ_t ∧ φ_q` satisfiable (union condition 1; values
    /// are handled globally by condition 2).
    Compatibility,
}

/// Wrapper giving a `CTree` compatibility-mode admission.
struct CompatTree<'a>(&'a CTree);

impl<'a> LabeledTree for CompatTree<'a> {
    fn tree_root(&self) -> NodeId {
        self.0.tree_root()
    }
    fn tree_label(&self, n: NodeId) -> Label {
        self.0.tree_label(n)
    }
    fn tree_children(&self, n: NodeId) -> &[NodeId] {
        self.0.tree_children(n)
    }
    fn tree_parent(&self, n: NodeId) -> Option<NodeId> {
        self.0.tree_parent(n)
    }
    fn tree_value(&self, _n: NodeId) -> Option<&Value> {
        None
    }
    fn tree_is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.0.tree_is_ancestor(a, b)
    }
    fn tree_len(&self) -> usize {
        self.0.tree_len()
    }
}

impl<'a> MatchTarget for CompatTree<'a> {
    fn admits(&self, n: NodeId, f: &Formula) -> bool {
        self.0.formula(n).and(f).is_sat()
    }
}

/// Does `q(t_e)` produce exactly the designated return tuple of `t_e`,
/// with nesting sequences compatible (Prop 4.2 2(b), relaxed through
/// one-to-one edges)?
pub(crate) fn tuple_in(q: &Pattern, te: &CTree, s: &Summary, mode: FormulaMode) -> bool {
    let designated = te.return_nodes();
    let q_returns = q.return_nodes();
    debug_assert_eq!(designated.len(), q_returns.len());
    let check = |asg: &smv_pattern::Assignment| -> bool {
        for (i, (&r, &qr)) in designated.iter().zip(q_returns.iter()).enumerate() {
            if asg[qr.idx()] != r {
                return false;
            }
            if r.is_some() {
                // nesting sequences: q-side anchors mapped through asg
                let q_ns: Vec<NodeId> = q
                    .nesting_anchors(qr)
                    .iter()
                    .map(|&a| te.spath(asg[a.idx()].expect("anchor of mapped node")))
                    .collect();
                let p_ns = te.nesting_sequence(i);
                if q_ns.len() != p_ns.len() {
                    return false;
                }
                let ok = q_ns
                    .iter()
                    .zip(p_ns.iter())
                    .all(|(&a, &b)| a == b || one_to_one_connected(s, a, b));
                if !ok {
                    return false;
                }
            }
        }
        true
    };
    let mut found = false;
    match mode {
        FormulaMode::Implication => {
            let m = Matcher::new(q, te);
            m.for_each_embedding(|asg| {
                if check(asg) {
                    found = true;
                    return false;
                }
                true
            });
        }
        FormulaMode::Compatibility => {
            let wrap = CompatTree(te);
            let m = Matcher::new(q, &wrap);
            m.for_each_embedding(|asg| {
                if check(asg) {
                    found = true;
                    return false;
                }
                true
            });
        }
    }
    found
}

/// Are summary nodes `a` and `b` connected by a chain of one-to-one edges
/// only (§4.5)? (In either direction; `a == b` handled by the caller.)
pub fn one_to_one_connected(s: &Summary, a: NodeId, b: NodeId) -> bool {
    let walk_up = |from: NodeId, to: NodeId| -> bool {
        let mut cur = from;
        while cur != to {
            if !s.is_one_to_one_edge(cur) {
                return false;
            }
            match s.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
        true
    };
    if s.is_ancestor(a, b) {
        walk_up(b, a)
    } else if s.is_ancestor(b, a) {
        walk_up(a, b)
    } else {
        false
    }
}

/// The coverage implication of §4.2 condition 2:
/// `φ_lhs ⇒ ⋁_j φ_rhs[j]`, where each formula is a conjunction of
/// per-summary-path interval formulas. Decided by branch-and-prune: a
/// counter-model must violate at least one conjunct of every disjunct.
pub(crate) fn implies_disjunction(
    lhs: &HashMap<NodeId, Formula>,
    rhs: &[HashMap<NodeId, Formula>],
) -> bool {
    // accumulate per-path constraints of the hypothetical counter-model,
    // starting from the lhs
    fn rec(acc: &mut HashMap<NodeId, Formula>, rhs: &[HashMap<NodeId, Formula>], j: usize) -> bool {
        if j == rhs.len() {
            return true; // counter-model exists: implication fails
        }
        let disjunct = &rhs[j];
        if disjunct.is_empty() {
            // an unconditional disjunct covers everything
            return false;
        }
        for (path, f) in disjunct {
            let neg = f.not();
            let cur = acc.get(path).cloned().unwrap_or_else(Formula::top);
            let merged = cur.and(&neg);
            if merged.is_sat() {
                acc.insert(*path, merged);
                if rec(acc, rhs, j + 1) {
                    return true;
                }
            }
            acc.insert(*path, cur);
        }
        false
    }
    if rhs.iter().any(|d| d.is_empty()) {
        return true; // some disjunct is T
    }
    let mut acc = lhs.clone();
    if !acc.values().all(|f| f.is_sat()) {
        return true; // lhs unsatisfiable
    }
    !rec(&mut acc, rhs, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;
    use smv_xml::Document;

    fn opts() -> ContainOpts {
        ContainOpts::default()
    }

    fn opts_plain() -> ContainOpts {
        ContainOpts {
            canon: CanonOpts {
                use_strong: false,
                max_trees: 100_000,
            },
        }
    }

    #[test]
    fn summary_implied_node_makes_patterns_equivalent() {
        // the paper's §3.2 example: S = r(a(b)), q = r//a//b, p1 = r//b,
        // then p1 ≡S q although p1 lacks the a node.
        let s = Summary::of(&Document::from_parens("r(a(b))"));
        let q = parse_pattern("r(//a(//b{ret}))").unwrap();
        let p1 = parse_pattern("r(//b{ret})").unwrap();
        assert_eq!(contained(&p1, &q, &s, &opts_plain()), Decision::Contained);
        assert_eq!(contained(&q, &p1, &s, &opts_plain()), Decision::Contained);
        assert_eq!(equivalent(&p1, &q, &s, &opts_plain()), Decision::Contained);
    }

    #[test]
    fn plain_containment_and_its_failure() {
        let s = Summary::of(&Document::from_parens("a(b(c) c)"));
        let narrow = parse_pattern("a(/b(/c{ret}))").unwrap();
        let wide = parse_pattern("a(//c{ret})").unwrap();
        assert_eq!(
            contained(&narrow, &wide, &s, &opts_plain()),
            Decision::Contained
        );
        assert_eq!(
            contained(&wide, &narrow, &s, &opts_plain()),
            Decision::NotContained
        );
    }

    #[test]
    fn self_containment_always_holds() {
        let s = Summary::of(&Document::from_parens("a(b(c d(e)) f)"));
        for src in [
            "a(//b{ret})",
            "a(/b(/c{ret}, ?/d(/e{ret})))",
            "a(//*{id}, /f{v})",
            "a(%//b(/d{c}))",
        ] {
            let p = parse_pattern(src).unwrap();
            assert_eq!(
                contained(&p, &p, &s, &opts_plain()),
                Decision::Contained,
                "self-containment of {src}"
            );
        }
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let s = Summary::of(&Document::from_parens("a(b c)"));
        let p = parse_pattern("a(/b{ret})").unwrap();
        let q = parse_pattern("a(/b{ret}, /c{ret})").unwrap();
        assert_eq!(contained(&p, &q, &s, &opts()), Decision::NotContained);
    }

    #[test]
    fn attribute_signatures_must_match() {
        // Prop 4.1 condition 1
        let s = Summary::of(&Document::from_parens("a(b)"));
        let p = parse_pattern("a(/b{id})").unwrap();
        let q = parse_pattern("a(/b{v})").unwrap();
        assert_eq!(contained(&p, &q, &s, &opts()), Decision::NotContained);
        let q2 = parse_pattern("a(/b{id})").unwrap();
        assert_eq!(contained(&p, &q2, &s, &opts()), Decision::Contained);
    }

    #[test]
    fn decorated_containment_fig9_style() {
        // pφ1 with v=3 is contained in pφ3 with v>1 (implication), not
        // conversely.
        let s = Summary::of(&Document::from_parens(r#"a(c(b="1"))"#));
        let p1 = parse_pattern("a(/c(/b{ret}[v=3]))").unwrap();
        let p3 = parse_pattern("a(/c(/b{ret}[v>1]))").unwrap();
        assert_eq!(contained(&p1, &p3, &s, &opts_plain()), Decision::Contained);
        assert_eq!(
            contained(&p3, &p1, &s, &opts_plain()),
            Decision::NotContained
        );
    }

    #[test]
    fn union_containment_prop32() {
        // S: a(b c); p returns all x children via wildcard; union of the
        // two labeled versions covers it.
        let s = Summary::of(&Document::from_parens("a(b c)"));
        let p = parse_pattern("a(/*{ret})").unwrap();
        let qb = parse_pattern("a(/b{ret})").unwrap();
        let qc = parse_pattern("a(/c{ret})").unwrap();
        assert_eq!(
            contained_in_union(&p, &[&qb, &qc], &s, &opts_plain()),
            Decision::Contained
        );
        assert_eq!(
            contained_in_union(&p, &[&qb], &s, &opts_plain()),
            Decision::NotContained
        );
    }

    #[test]
    fn union_value_coverage_paper_4_2_example() {
        // pφ2 ⊆S pφ1 ∪ pφ3 ∪ pφ4 — the worked example of §4.2: a value
        // split across members that no single member contains.
        let s = Summary::of(&Document::from_parens(r#"a(b="1" c(d="2"))"#));
        // members constrain the same return node /a/b with overlapping
        // ranges; p uses v>=0, members v<5 and v>=5 & v>2...
        let p = parse_pattern("a(/b{ret}[v>=0])").unwrap();
        let q1 = parse_pattern("a(/b{ret}[v<5])").unwrap();
        let q2 = parse_pattern("a(/b{ret}[v>=5])").unwrap();
        assert_eq!(
            contained_in_union(&p, &[&q1, &q2], &s, &opts_plain()),
            Decision::Contained
        );
        assert_eq!(
            contained_in_union(&p, &[&q1], &s, &opts_plain()),
            Decision::NotContained
        );
        // single-member union with implication still works
        let q3 = parse_pattern("a(/b{ret}[v>=-1])").unwrap();
        assert_eq!(
            contained_in_union(&p, &[&q3], &s, &opts_plain()),
            Decision::Contained
        );
    }

    #[test]
    fn optional_pattern_containment_fig10() {
        // Figure 10: p1 ⊆S p2 (p2's optional b-subtree is laxer).
        let d = Document::from_parens("a(c(d(b e) b) c)");
        let s = Summary::of(&d);
        let p1 = parse_pattern("a(/c{ret}(?/d(/b{ret}, ?/e)))").unwrap();
        let p2 = parse_pattern("a(/c{ret}(?/d(/b{ret})))").unwrap();
        assert_eq!(contained(&p1, &p2, &s, &opts_plain()), Decision::Contained);
    }

    #[test]
    fn optional_is_weaker_than_required() {
        let s = Summary::of(&Document::from_parens("a(b(c) b)"));
        let req = parse_pattern("a(/b{ret}(/c))").unwrap();
        let opt = parse_pattern("a(/b{ret}(?/c))").unwrap();
        // required ⊆ optional fails on arity-compatible designations?
        // both are 1-ary and return b; every required-match is an
        // optional-match:
        assert_eq!(
            contained(&req, &opt, &s, &opts_plain()),
            Decision::Contained
        );
        // optional ⊄ required: the cut variant has no c
        assert_eq!(
            contained(&opt, &req, &s, &opts_plain()),
            Decision::NotContained
        );
    }

    #[test]
    fn strong_edges_enable_containment() {
        // every b has a c child in S-enhanced form; then a//b ⊆ a//b[c]
        let d = Document::from_parens("a(b(c) b(c))");
        let s = Summary::of(&d);
        let p = parse_pattern("a(/b{ret})").unwrap();
        let q = parse_pattern("a(/b{ret}(/c))").unwrap();
        assert_eq!(
            contained(&p, &q, &s, &opts_plain()),
            Decision::NotContained,
            "without integrity constraints the containment fails"
        );
        assert_eq!(
            contained(&p, &q, &s, &opts()),
            Decision::Contained,
            "the strong edge b→c guarantees the c child"
        );
    }

    #[test]
    fn nested_signatures_must_agree() {
        // Prop 4.2 condition 2(a)
        let s = Summary::of(&Document::from_parens("a(b(c))"));
        let flat = parse_pattern("a(//c{ret})").unwrap();
        let nested = parse_pattern("a(%//c{ret})").unwrap();
        assert_eq!(
            contained(&flat, &nested, &s, &opts()),
            Decision::NotContained
        );
        assert_eq!(
            contained(&nested, &flat, &s, &opts()),
            Decision::NotContained
        );
        assert_eq!(
            contained(&nested, &nested, &s, &opts()),
            Decision::Contained
        );
    }

    #[test]
    fn nesting_anchor_positions_matter() {
        // nesting under a vs under b are different groupings...
        let s = Summary::of(&Document::from_parens("a(b(c) b(c))"));
        let under_a = parse_pattern("a(%//c{ret})").unwrap();
        let under_b = parse_pattern("a(//b(%/c{ret}))").unwrap();
        assert_eq!(
            contained(&under_a, &under_b, &s, &opts_plain()),
            Decision::NotContained
        );
    }

    #[test]
    fn one_to_one_relaxes_nesting_anchors() {
        // every a has exactly one b (one-to-one edge): nesting under a and
        // under b group identically (§4.5 relaxation).
        let d = Document::from_parens("a(b(c c))");
        let s = Summary::of(&d);
        assert!(s.is_one_to_one_edge(s.node_by_path("/a/b").unwrap()));
        let under_a = parse_pattern("a(%//c{ret})").unwrap();
        let under_b = parse_pattern("a(/b(%/c{ret}))").unwrap();
        assert_eq!(
            contained(&under_a, &under_b, &s, &opts()),
            Decision::Contained
        );
        assert_eq!(
            contained(&under_b, &under_a, &s, &opts()),
            Decision::Contained
        );
    }

    #[test]
    fn satisfiability_via_model() {
        let s = Summary::of(&Document::from_parens("a(b)"));
        assert!(is_satisfiable(
            &parse_pattern("a(/b{ret})").unwrap(),
            &s,
            &opts()
        ));
        assert!(!is_satisfiable(
            &parse_pattern("a(/z{ret})").unwrap(),
            &s,
            &opts()
        ));
    }

    #[test]
    fn wildcard_generalizes_label() {
        let s = Summary::of(&Document::from_parens("a(b c)"));
        let b = parse_pattern("a(/b{ret})").unwrap();
        let star = parse_pattern("a(/*{ret})").unwrap();
        assert_eq!(contained(&b, &star, &s, &opts_plain()), Decision::Contained);
        assert_eq!(
            contained(&star, &b, &s, &opts_plain()),
            Decision::NotContained
        );
        // but when the summary has only b children, * ≡ b (summary
        // reasoning beats syntax — the V1 example of §1)
        let s2 = Summary::of(&Document::from_parens("a(b)"));
        assert_eq!(
            contained(&star, &b, &s2, &opts_plain()),
            Decision::Contained
        );
    }

    #[test]
    fn implies_disjunction_engine() {
        let pa = NodeId(1);
        let pb = NodeId(2);
        let f = |pairs: &[(NodeId, Formula)]| -> HashMap<NodeId, Formula> {
            pairs.iter().cloned().collect()
        };
        let v3 = Formula::eq(Value::int(3));
        let gt1 = Formula::gt(Value::int(1));
        let lt5 = Formula::lt(Value::int(5));
        let ge5 = Formula::ge(Value::int(5));
        // v=3 ⇒ v>1
        assert!(implies_disjunction(
            &f(&[(pa, v3.clone())]),
            &[f(&[(pa, gt1.clone())])]
        ));
        // v>1 ⇏ v=3
        assert!(!implies_disjunction(
            &f(&[(pa, gt1.clone())]),
            &[f(&[(pa, v3.clone())])]
        ));
        // T ⇒ (v<5 ∨ v≥5)
        assert!(implies_disjunction(
            &f(&[]),
            &[f(&[(pa, lt5.clone())]), f(&[(pa, ge5)])]
        ));
        // multi-variable: (a=3 ∧ b>1) ⇒ (a=3) ∨ (b≤1)
        assert!(implies_disjunction(
            &f(&[(pa, v3.clone()), (pb, gt1.clone())]),
            &[f(&[(pa, v3)]), f(&[(pb, gt1.not())])]
        ));
        // (a>1) ⇏ (a<5): counter-model a=7
        assert!(!implies_disjunction(&f(&[(pa, gt1)]), &[f(&[(pa, lt5)])]));
    }
}
