//! # smv-core — containment and view-based rewriting
//!
//! The paper's primary contribution:
//!
//! * [`containment`] — deciding `p ⊆_S q`, `p ⊆_S q_1 ∪ … ∪ q_m` and
//!   `p ≡_S q` under Dataguide (and integrity-constraint) constraints, for
//!   the full extended pattern language (Propositions 3.1/3.2, §4).
//! * [`rewriting`] — Algorithm 1: given a query pattern and a set of
//!   materialized view patterns, produce the algebraic plans over the
//!   views that are `S`-equivalent to the query, with the pruning rules of
//!   Propositions 3.4-3.7, C-attribute unfolding and virtual-ID
//!   derivation (§4.6).

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod containment;

pub use containment::{
    contained, contained_in_union, equivalent, is_satisfiable, one_to_one_connected, ContainOpts,
    Decision,
};

pub mod rewriting;

pub use rewriting::{
    best_rewriting_cost, rewrite, rewrite_with_cards, rewrite_with_feedback, RewriteOpts,
    RewriteResult, RewriteStats, Rewriter, Rewriting,
};
