//! Property tests: the greedy advisor against the exhaustive oracle.
//!
//! Over random small workloads (≤ 6 mined candidates):
//!
//! * the advised set **never exceeds the byte budget** (greedy and
//!   oracle alike);
//! * with an **unconstrained budget** greedy matches the oracle's total
//!   benefit exactly — benefit is monotone in the view set, so greedy's
//!   stopping rule ("no candidate adds marginal gain") reaches the
//!   optimum;
//! * with a **random constrained budget** the oracle dominates greedy
//!   (it is the optimum) and both respect the budget.

use proptest::prelude::*;
use smv_advisor::{advise, advise_exhaustive, mine_candidates, AdvisorOpts, Workload};
use smv_pattern::parse_pattern;
use smv_summary::Summary;
use smv_xml::Document;

/// A small document with strong edges (initial/current/name/email),
/// weak edges (bidder, phone), and valued leaves for predicates.
fn fixture_summary() -> Summary {
    Summary::of(&Document::from_parens(
        r#"site(auctions(auction(initial="1" current="5" bidder(increase="2") bidder(increase="4"))
                         auction(initial="3" current="7")
                         auction(initial="6" current="9" bidder(increase="8")))
                people(person(name="ann" email="a") person(name="bob" email="b" phone="1")))"#,
    ))
}

/// The query pool property cases draw from.
fn pool() -> Vec<&'static str> {
    vec![
        "site(/auctions(/auction{id}(/initial{v})))",
        "site(/auctions(/auction{id}(/current{v})))",
        "site(/auctions(/auction{id}(/initial{v}[v>2])))",
        "site(/auctions(/auction{id}(/bidder(/increase{v}))))",
        "site(/people(/person{id}(/name{v})))",
        "site(/people(/person{id}(/email{v})))",
    ]
}

fn workload_of(picks: &[(usize, u8)]) -> Workload {
    let pool = pool();
    Workload::weighted(picks.iter().map(|&(qi, w)| {
        (
            parse_pattern(pool[qi % pool.len()]).unwrap(),
            w.max(1) as f64,
        )
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn greedy_matches_oracle_unconstrained(
        picks in proptest::collection::vec((0usize..6, 1u8..5), 1..4),
    ) {
        let s = fixture_summary();
        let w = workload_of(&picks);
        let opts = AdvisorOpts::default(); // unbounded budget
        let cands = mine_candidates(&w, &s, &opts);
        prop_assume!(cands.len() <= 6);
        let greedy = advise(&w, &s, &cands, &opts);
        let oracle = advise_exhaustive(&w, &s, &cands, &opts);
        prop_assert!(
            (greedy.total_benefit - oracle.total_benefit).abs() <= 1e-6,
            "greedy {} != oracle {} on workload {:?}",
            greedy.total_benefit, oracle.total_benefit, picks
        );
    }

    #[test]
    fn budget_is_never_exceeded_and_oracle_dominates(
        picks in proptest::collection::vec((0usize..6, 1u8..5), 1..4),
        budget_pct in 10u8..100,
    ) {
        let s = fixture_summary();
        let w = workload_of(&picks);
        let mut opts = AdvisorOpts::default();
        let cands = mine_candidates(&w, &s, &opts);
        prop_assume!(cands.len() <= 6);
        let all_bytes: f64 = cands.iter().map(|c| c.est_bytes).sum();
        opts.budget_bytes = all_bytes * budget_pct as f64 / 100.0;
        let greedy = advise(&w, &s, &cands, &opts);
        let oracle = advise_exhaustive(&w, &s, &cands, &opts);
        prop_assert!(
            greedy.total_bytes <= opts.budget_bytes + 1e-6,
            "greedy spent {} over budget {}", greedy.total_bytes, opts.budget_bytes
        );
        prop_assert!(
            oracle.total_bytes <= opts.budget_bytes + 1e-6,
            "oracle spent {} over budget {}", oracle.total_bytes, opts.budget_bytes
        );
        prop_assert!(
            oracle.total_benefit >= greedy.total_benefit - 1e-6,
            "oracle {} below greedy {} — the oracle is the optimum",
            oracle.total_benefit, greedy.total_benefit
        );
        // a selected view is never useless: every pick carried positive
        // marginal gain when made
        for c in &greedy.chosen {
            prop_assert!(c.gain > 0.0, "pick {} had no gain", c.candidate);
        }
    }
}
