//! Benefit-per-byte view selection: greedy with recomputation, plus an
//! exhaustive oracle for small candidate sets.

use crate::{AdvisorOpts, Candidate, Workload};
use smv_core::best_rewriting_cost;
use smv_summary::Summary;
use smv_views::{DefCards, View};

/// Minimum marginal benefit worth a pick (guards float noise).
const MIN_GAIN: f64 = 1e-9;

/// The estimated cost of answering a query with *no* helpful view: one
/// unit of work per document node — a full navigation of the store, the
/// same unit scale as [`smv_algebra::CostModel`]'s row-work estimates.
pub fn navigation_cost(s: &Summary) -> f64 {
    s.doc_node_count() as f64
}

/// One selected view in an [`Advice`].
#[derive(Clone, Debug)]
pub struct AdvisedView {
    /// The proposed view definition (named `adv<candidate index>`).
    pub view: View,
    /// Index into the mined candidate list.
    pub candidate: usize,
    /// Estimated stored bytes charged against the budget.
    pub est_bytes: f64,
    /// Weighted marginal benefit at pick time (0 for the exhaustive
    /// oracle, which selects a set, not a sequence).
    pub gain: f64,
}

/// Per-query outcome of an advised set.
#[derive(Clone, Debug)]
pub struct PerQuery {
    /// Workload query index.
    pub query: usize,
    /// Navigation baseline cost (no views).
    pub baseline: f64,
    /// Best rewriting cost over the advised set (== `baseline` when the
    /// set serves nothing better than navigation).
    pub advised: f64,
    /// Whether the advised set rewrites the query at all.
    pub rewritten: bool,
}

/// The advisor's output: a budgeted, ranked materialization plan.
#[derive(Clone, Debug, Default)]
pub struct Advice {
    /// Selected views, in pick order (greedy) or candidate order
    /// (exhaustive).
    pub chosen: Vec<AdvisedView>,
    /// Total estimated bytes of the selection.
    pub total_bytes: f64,
    /// Total weighted benefit over the navigation baseline.
    pub total_benefit: f64,
    /// Per-query costs under the selection.
    pub per_query: Vec<PerQuery>,
}

impl Advice {
    /// The selected view definitions.
    pub fn views(&self) -> Vec<View> {
        self.chosen.iter().map(|c| c.view.clone()).collect()
    }
}

fn views_of(cands: &[Candidate], sel: &[usize], opts: &AdvisorOpts) -> Vec<View> {
    sel.iter()
        .map(|&i| cands[i].to_view(&format!("adv{i}"), opts))
        .collect()
}

/// Best-rewriting cost per workload query over `views`, clamped by the
/// navigation baseline (a plan worse than re-navigating is never run).
fn workload_costs(w: &Workload, s: &Summary, views: &[View], opts: &AdvisorOpts) -> Vec<f64> {
    let baseline = navigation_cost(s);
    if views.is_empty() {
        return vec![baseline; w.queries.len()];
    }
    let cards = DefCards::new(views, s);
    w.queries
        .iter()
        .map(|q| {
            best_rewriting_cost(&q.pattern, views, s, &opts.rewrite, &cards)
                .map_or(baseline, |c| c.min(baseline))
        })
        .collect()
}

fn finish(
    w: &Workload,
    s: &Summary,
    cands: &[Candidate],
    sel: &[usize],
    chosen: Vec<AdvisedView>,
    costs: &[f64],
) -> Advice {
    let baseline = navigation_cost(s);
    let total_bytes = sel.iter().map(|&i| cands[i].est_bytes).sum();
    let total_benefit = w
        .queries
        .iter()
        .zip(costs)
        .map(|(q, &c)| q.weight * (baseline - c))
        .sum();
    let per_query = costs
        .iter()
        .enumerate()
        .map(|(qi, &c)| PerQuery {
            query: qi,
            baseline,
            advised: c,
            rewritten: c < baseline,
        })
        .collect();
    Advice {
        chosen,
        total_bytes,
        total_benefit,
        per_query,
    }
}

/// Greedy benefit-per-byte selection under `opts.budget_bytes`.
///
/// Each round scores every unselected, still-affordable candidate by its
/// *marginal* weighted benefit — the workload cost drop of adding it to
/// the already-picked set, recomputed from scratch because picked views
/// shift every best-rewriting baseline — divided by its estimated bytes,
/// and commits the best positive pick. Stops when nothing affordable
/// helps.
///
/// ```
/// use smv_advisor::{advise, mine_candidates, AdvisorOpts, Workload};
/// use smv_pattern::parse_pattern;
/// use smv_summary::Summary;
/// use smv_xml::Document;
///
/// // items carry bulky descriptions, so scanning a small name view beats
/// // re-navigating the whole document (the no-view baseline)
/// let items: Vec<String> = (0..50)
///     .map(|i| format!(r#"item(name="n{i}" description(parlist(listitem(text))))"#))
///     .collect();
/// let doc = Document::from_parens(&format!("site({})", items.join(" ")));
/// let summary = Summary::of(&doc);
/// let workload = Workload::weighted([
///     (parse_pattern("site(//name{id,v})").unwrap(), 3.0),
///     (parse_pattern("site(//item{id})").unwrap(), 1.0),
/// ]);
/// let opts = AdvisorOpts::default(); // unbounded byte budget
/// let candidates = mine_candidates(&workload, &summary, &opts);
/// let advice = advise(&workload, &summary, &candidates, &opts);
/// assert!(!advice.chosen.is_empty(), "some view is worth materializing");
/// ```
pub fn advise(w: &Workload, s: &Summary, cands: &[Candidate], opts: &AdvisorOpts) -> Advice {
    let mut sel: Vec<usize> = Vec::new();
    let mut chosen: Vec<AdvisedView> = Vec::new();
    let mut cur = workload_costs(w, s, &[], opts);
    let mut spent = 0.0;
    loop {
        let mut best: Option<(usize, f64, f64, Vec<f64>)> = None; // (cand, gain, score, costs)
        for (ci, c) in cands.iter().enumerate() {
            if sel.contains(&ci) || spent + c.est_bytes > opts.budget_bytes {
                continue;
            }
            let mut probe = sel.clone();
            probe.push(ci);
            let costs = workload_costs(w, s, &views_of(cands, &probe, opts), opts);
            let gain: f64 = w
                .queries
                .iter()
                .zip(cur.iter().zip(&costs))
                .map(|(q, (&before, &after))| q.weight * (before - after))
                .sum();
            if gain <= MIN_GAIN {
                continue;
            }
            let score = gain / c.est_bytes.max(1.0);
            let better = match &best {
                None => true,
                Some((bi, _, bscore, _)) => {
                    score > *bscore || (score == *bscore && c.est_bytes < cands[*bi].est_bytes)
                }
            };
            if better {
                best = Some((ci, gain, score, costs));
            }
        }
        let Some((ci, gain, _, costs)) = best else {
            break;
        };
        spent += cands[ci].est_bytes;
        chosen.push(AdvisedView {
            view: cands[ci].to_view(&format!("adv{ci}"), opts),
            candidate: ci,
            est_bytes: cands[ci].est_bytes,
            gain,
        });
        sel.push(ci);
        cur = costs;
    }
    finish(w, s, cands, &sel, chosen, &cur)
}

/// Exhaustive selection over every candidate subset within budget — the
/// test oracle for greedy. Ties on benefit break toward fewer bytes,
/// then fewer views, then earlier subsets. Panics beyond 16 candidates.
pub fn advise_exhaustive(
    w: &Workload,
    s: &Summary,
    cands: &[Candidate],
    opts: &AdvisorOpts,
) -> Advice {
    assert!(
        cands.len() <= 16,
        "exhaustive selection is an oracle for small candidate sets"
    );
    let baseline = navigation_cost(s);
    let mut best: Option<(Vec<usize>, f64, f64, Vec<f64>)> = None; // (sel, benefit, bytes, costs)
    for mask in 0u32..(1 << cands.len()) {
        let sel: Vec<usize> = (0..cands.len()).filter(|i| mask >> i & 1 == 1).collect();
        let bytes: f64 = sel.iter().map(|&i| cands[i].est_bytes).sum();
        if bytes > opts.budget_bytes {
            continue;
        }
        let costs = workload_costs(w, s, &views_of(cands, &sel, opts), opts);
        let benefit: f64 = w
            .queries
            .iter()
            .zip(&costs)
            .map(|(q, &c)| q.weight * (baseline - c))
            .sum();
        let better = match &best {
            None => true,
            Some((bsel, bben, bbytes, _)) => {
                benefit > bben + MIN_GAIN
                    || ((benefit - bben).abs() <= MIN_GAIN
                        && (bytes < *bbytes || (bytes == *bbytes && sel.len() < bsel.len())))
            }
        };
        if better {
            best = Some((sel, benefit, bytes, costs));
        }
    }
    let (sel, _, _, costs) = best.expect("the empty subset is always within budget");
    let chosen = sel
        .iter()
        .map(|&ci| AdvisedView {
            view: cands[ci].to_view(&format!("adv{ci}"), opts),
            candidate: ci,
            est_bytes: cands[ci].est_bytes,
            gain: 0.0,
        })
        .collect();
    finish(w, s, cands, &sel, chosen, &costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine_candidates;
    use smv_pattern::parse_pattern;
    use smv_xml::Document;

    fn fixture() -> Summary {
        Summary::of(&Document::from_parens(
            r#"site(auctions(auction(initial="1" current="5")
                             auction(initial="3" current="7")
                             auction(initial="4" current="9")))"#,
        ))
    }

    fn wl() -> Workload {
        Workload::weighted([
            (
                parse_pattern("site(/auctions(/auction{id}(/initial{v})))").unwrap(),
                3.0,
            ),
            (
                parse_pattern("site(/auctions(/auction{id}(/current{v})))").unwrap(),
                2.0,
            ),
        ])
    }

    #[test]
    fn unbounded_budget_serves_every_query() {
        let s = fixture();
        let w = wl();
        let opts = AdvisorOpts::default();
        let cands = mine_candidates(&w, &s, &opts);
        let advice = advise(&w, &s, &cands, &opts);
        assert!(!advice.chosen.is_empty());
        assert!(advice.total_benefit > 0.0);
        for pq in &advice.per_query {
            assert!(pq.rewritten, "query {} not served", pq.query);
            assert!(pq.advised < pq.baseline);
        }
    }

    #[test]
    fn tight_budget_prefers_the_shared_merged_view() {
        let s = fixture();
        let w = wl();
        let mut opts = AdvisorOpts::default();
        let cands = mine_candidates(&w, &s, &opts);
        let merged = cands
            .iter()
            .position(|c| c.kind == crate::CandidateKind::Merged)
            .expect("merged candidate mined");
        // budget fits the merged view but not both singletons
        let singleton_total: f64 = cands
            .iter()
            .filter(|c| c.kind == crate::CandidateKind::Singleton)
            .map(|c| c.est_bytes)
            .sum();
        opts.budget_bytes = singleton_total - 1.0;
        assert!(cands[merged].est_bytes <= opts.budget_bytes);
        let advice = advise(&w, &s, &cands, &opts);
        assert!(advice.total_bytes <= opts.budget_bytes);
        assert!(
            advice.chosen.iter().any(|c| c.candidate == merged),
            "merged view is the benefit-per-byte winner under the tight budget"
        );
        for pq in &advice.per_query {
            assert!(pq.rewritten, "merged view serves both queries");
        }
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let s = fixture();
        let w = wl();
        let opts = AdvisorOpts {
            budget_bytes: 0.0,
            ..Default::default()
        };
        let cands = mine_candidates(&w, &s, &opts);
        let advice = advise(&w, &s, &cands, &opts);
        assert!(advice.chosen.is_empty());
        assert_eq!(advice.total_benefit, 0.0);
        let oracle = advise_exhaustive(&w, &s, &cands, &opts);
        assert!(oracle.chosen.is_empty());
    }

    #[test]
    fn greedy_matches_oracle_on_the_fixture() {
        let s = fixture();
        let w = wl();
        let opts = AdvisorOpts::default();
        let cands = mine_candidates(&w, &s, &opts);
        let greedy = advise(&w, &s, &cands, &opts);
        let oracle = advise_exhaustive(&w, &s, &cands, &opts);
        assert!(
            (greedy.total_benefit - oracle.total_benefit).abs() <= 1e-6,
            "greedy {} vs oracle {}",
            greedy.total_benefit,
            oracle.total_benefit
        );
    }
}
