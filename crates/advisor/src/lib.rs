//! # smv-advisor — workload-driven materialized-view selection
//!
//! The paper assumes the view set is *given* and rewrites queries against
//! it; this crate inverts the problem, following the query-clustering
//! view-selection line of Mahboubi/Aouiche/Darmont (arXiv:0809.1963,
//! arXiv:1701.08088): given a **workload** — tree-pattern queries with
//! frequencies — and a structural [`Summary`], propose the view set to
//! materialize under a storage budget.
//!
//! The pipeline:
//!
//! 1. **Mine candidates** ([`mine_candidates`]): each query's own
//!    pattern, predicate-relaxed generalizations, and *merged* views
//!    built from pairs of queries sharing a summary anchor — one
//!    candidate serving several queries, justified by the summary's
//!    strong edges so the merged required branches lose no bindings.
//! 2. **Score** each candidate set by *benefit*: Σ over workload queries
//!    of `weight × (best rewriting cost without − with)`, where costs
//!    come from [`smv_core::best_rewriting_cost`] driven with
//!    [`DefCards`](smv_views::DefCards) — nothing is materialized during
//!    search — and a query no view set serves pays the **navigation
//!    baseline** (one unit per document node, [`navigation_cost`]).
//!    Candidate *size* comes from
//!    [`smv_views::estimate_extent_bytes`].
//! 3. **Select** greedily by benefit per byte under the budget, with
//!    full benefit recomputation after each pick ([`advise`]) — picked
//!    views change every later marginal gain — or exhaustively over all
//!    subsets as a test oracle for small candidate sets
//!    ([`advise_exhaustive`]).

#![deny(clippy::print_stdout, clippy::print_stderr)]
pub mod candidates;
pub mod select;

pub use candidates::{mine_candidates, Candidate, CandidateKind};
pub use select::{advise, advise_exhaustive, navigation_cost, Advice, AdvisedView, PerQuery};

use smv_core::RewriteOpts;
use smv_pattern::Pattern;
use smv_summary::Summary;
use smv_xml::IdScheme;

/// One workload query: a tree pattern plus its relative frequency.
#[derive(Clone, Debug)]
pub struct WorkloadQuery {
    /// The query pattern.
    pub pattern: Pattern,
    /// Relative frequency (benefit weight); 1.0 = one occurrence.
    pub weight: f64,
}

impl WorkloadQuery {
    /// A query with weight 1.
    pub fn new(pattern: Pattern) -> WorkloadQuery {
        WorkloadQuery {
            pattern,
            weight: 1.0,
        }
    }

    /// A query with an explicit weight.
    pub fn weighted(pattern: Pattern, weight: f64) -> WorkloadQuery {
        WorkloadQuery { pattern, weight }
    }
}

/// A query workload.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// The queries.
    pub queries: Vec<WorkloadQuery>,
}

impl Workload {
    /// A workload over `queries`, all weight 1.
    pub fn from_patterns(queries: impl IntoIterator<Item = Pattern>) -> Workload {
        Workload {
            queries: queries.into_iter().map(WorkloadQuery::new).collect(),
        }
    }

    /// A workload from `(pattern, weight)` pairs.
    pub fn weighted(queries: impl IntoIterator<Item = (Pattern, f64)>) -> Workload {
        Workload {
            queries: queries
                .into_iter()
                .map(|(p, w)| WorkloadQuery::weighted(p, w))
                .collect(),
        }
    }
}

/// Advisor knobs.
#[derive(Clone, Debug)]
pub struct AdvisorOpts {
    /// Storage budget in (estimated) bytes; `f64::INFINITY` = unbounded.
    pub budget_bytes: f64,
    /// ID scheme of proposed views.
    pub scheme: IdScheme,
    /// Rewriting bounds used by the cost probes.
    pub rewrite: RewriteOpts,
    /// Cap on mined candidates (mining order: singletons, then
    /// generalizations, then merged pairs).
    pub max_candidates: usize,
}

impl Default for AdvisorOpts {
    fn default() -> Self {
        AdvisorOpts {
            budget_bytes: f64::INFINITY,
            scheme: IdScheme::OrdPath,
            rewrite: RewriteOpts::default(),
            max_candidates: 24,
        }
    }
}

/// Convenience: mine candidates and run the greedy advisor in one call.
pub fn advise_workload(w: &Workload, s: &Summary, opts: &AdvisorOpts) -> (Vec<Candidate>, Advice) {
    let cands = mine_candidates(w, s, opts);
    let advice = advise(w, s, &cands, opts);
    (cands, advice)
}
