//! Candidate-view mining.
//!
//! Three candidate families, mirroring the query-clustering selection of
//! Mahboubi/Aouiche/Darmont:
//!
//! * **singletons** — each workload query's own pattern, the view that
//!   serves it by a plain scan;
//! * **generalizations** — predicate-relaxed singletons (the value
//!   stored, the predicate dropped) so one extent serves every query
//!   differing only in its value constraint, via the §4.6 `σ_φ`
//!   adaptation;
//! * **merged pairs** — for two queries whose return nodes sit on
//!   summary paths under a common anchor below the root, one view
//!   storing all their return attributes under that anchor. The branch
//!   chains are *required* edges, which is lossless exactly when the
//!   summary proves every hop strong (§4.1) — the integrity constraint
//!   machinery the paper's rewriting relies on.
//!
//! Mined candidates are deduplicated syntactically and by S-equivalence
//! ([`smv_core::equivalent`], keeping the smaller extent), and a
//! candidate survives only if the rewriting engine can actually serve
//! some workload query from it alone ([`smv_core::best_rewriting_cost`]).

use crate::{AdvisorOpts, Workload};
use smv_core::{best_rewriting_cost, equivalent, ContainOpts};
use smv_pattern::{associated_paths, Attrs, Axis, Formula, Pattern};
use smv_summary::Summary;
use smv_views::{estimate_extent_bytes, estimate_extent_rows, DefCards, View};
use smv_xml::{LabeledTree, NodeId};
use std::collections::HashMap;

/// How a candidate was mined.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CandidateKind {
    /// A workload query's own pattern.
    Singleton,
    /// A predicate-relaxed singleton.
    Generalized,
    /// A merged view serving a pair of queries under a shared anchor.
    Merged,
}

/// A candidate view with its definition-only size estimates.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The view pattern.
    pub pattern: Pattern,
    /// Mining family.
    pub kind: CandidateKind,
    /// Workload query indices this candidate was mined from.
    pub sources: Vec<usize>,
    /// Estimated extent rows ([`estimate_extent_rows`]).
    pub est_rows: f64,
    /// Estimated stored bytes ([`estimate_extent_bytes`]).
    pub est_bytes: f64,
}

impl Candidate {
    /// The candidate as a named view definition.
    pub fn to_view(&self, name: &str, opts: &AdvisorOpts) -> View {
        View::new(name, self.pattern.clone(), opts.scheme)
    }
}

/// Mines the candidate set for a workload (see module docs).
pub fn mine_candidates(w: &Workload, s: &Summary, opts: &AdvisorOpts) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let mut push = |pattern: Pattern, kind: CandidateKind, sources: Vec<usize>| {
        let est_rows = estimate_extent_rows(&pattern, s);
        let est_bytes = estimate_extent_bytes(&pattern, s);
        out.push(Candidate {
            pattern,
            kind,
            sources,
            est_rows,
            est_bytes,
        });
    };

    // singletons
    for (i, q) in w.queries.iter().enumerate() {
        push(q.pattern.clone(), CandidateKind::Singleton, vec![i]);
    }

    // predicate-relaxed generalizations (value kept so σ_φ can re-filter)
    for (i, q) in w.queries.iter().enumerate() {
        if q.pattern
            .iter()
            .all(|n| q.pattern.node(n).predicate.is_top())
        {
            continue;
        }
        let mut g = q.pattern.clone();
        for n in g.iter().collect::<Vec<_>>() {
            let nd = g.node_mut(n);
            if !nd.predicate.is_top() {
                nd.predicate = Formula::top();
                nd.attrs.value = true;
            }
        }
        push(g, CandidateKind::Generalized, vec![i]);
    }

    // merged pairs under a shared non-root anchor with strong branches
    for i in 0..w.queries.len() {
        for j in (i + 1)..w.queries.len() {
            if let Some(p) = merge_pair(&w.queries[i].pattern, &w.queries[j].pattern, s) {
                push(p, CandidateKind::Merged, vec![i, j]);
            }
        }
    }

    dedup(&mut out, s);
    // filter before capping: a useless generalization must not occupy a
    // slot a merged candidate (mined last) would have taken
    retain_useful(&mut out, w, s, opts);
    out.truncate(opts.max_candidates);
    out
}

/// The `(summary path, requested attrs)` pairs of a query's return
/// nodes, or `None` when any return node is path-ambiguous (a `*` or
/// `//` node matching several summary paths — merging those would need
/// the union machinery, so such pairs are skipped).
fn return_path_attrs(q: &Pattern, s: &Summary) -> Option<Vec<(NodeId, Attrs)>> {
    let paths = associated_paths(q, s);
    let mut out = Vec::new();
    for r in q.return_nodes() {
        match paths[r.idx()].as_slice() {
            [single] => out.push((*single, q.node(r).attrs)),
            _ => return None,
        }
    }
    Some(out)
}

/// Lowest common ancestor of two summary paths.
fn lca(s: &Summary, a: NodeId, b: NodeId) -> NodeId {
    let (mut x, mut y) = (a, b);
    while s.depth(x) > s.depth(y) {
        x = s.parent(x).expect("deeper node has a parent");
    }
    while s.depth(y) > s.depth(x) {
        y = s.parent(y).expect("deeper node has a parent");
    }
    while x != y {
        x = s.parent(x).expect("non-root");
        y = s.parent(y).expect("non-root");
    }
    x
}

/// Builds the merged candidate for a query pair, or `None` when no
/// lossless shared view exists (root-level anchor, ambiguous return
/// paths, or a weak edge on some branch chain).
fn merge_pair(qa: &Pattern, qb: &Pattern, s: &Summary) -> Option<Pattern> {
    let ra = return_path_attrs(qa, s)?;
    let rb = return_path_attrs(qb, s)?;
    // union the requested attrs per return path
    let mut wanted: HashMap<NodeId, Attrs> = HashMap::new();
    for (p, a) in ra.iter().chain(rb.iter()) {
        let e = wanted.entry(*p).or_insert(Attrs::NONE);
        *e = e.union(*a);
    }
    let mut paths: Vec<NodeId> = wanted.keys().copied().collect();
    paths.sort();
    let anchor = paths
        .iter()
        .copied()
        .reduce(|a, b| lca(s, a, b))
        .expect("patterns have return nodes");
    if anchor == s.root() {
        return None; // cross-section merge: a cartesian junk view
    }
    // every hop below the anchor must be strong, or required branches
    // would drop anchors lacking them
    for &rp in &paths {
        if s.tree_chain_down(anchor, rp)
            .iter()
            .any(|&n| !s.is_strong_edge(n))
        {
            return None;
        }
    }
    // root chain down to the anchor
    let mut spine = vec![anchor];
    let mut cur = anchor;
    while let Some(p) = s.parent(cur) {
        spine.push(p);
        cur = p;
    }
    spine.reverse();
    let mut pat = Pattern::new(Some(s.label(s.root())));
    let mut at = pat.root();
    for &n in &spine[1..] {
        at = pat.add_child(at, Axis::Child, Some(s.label(n)));
    }
    // the anchor always stores an ID: it is the join/nesting handle
    pat.node_mut(at).attrs.id = true;
    // branch trie below the anchor, sharing prefixes
    let mut placed: HashMap<NodeId, smv_pattern::PNodeId> = HashMap::new();
    placed.insert(anchor, at);
    for &rp in &paths {
        let mut host = at;
        for step in s.tree_chain_down(anchor, rp) {
            host = match placed.get(&step) {
                Some(&pn) => pn,
                None => {
                    let pn = pat.add_child(host, Axis::Child, Some(s.label(step)));
                    placed.insert(step, pn);
                    pn
                }
            };
        }
        let attrs = wanted[&rp];
        let nd = pat.node_mut(host);
        nd.attrs = nd.attrs.union(attrs);
    }
    Some(pat)
}

/// Drops syntactic duplicates, then S-equivalent candidates (keeping the
/// smaller estimated extent) — two mining routes often reach the same
/// view, and the containment engine is the arbiter.
fn dedup(cands: &mut Vec<Candidate>, s: &Summary) {
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut keep: Vec<Candidate> = Vec::new();
    for c in cands.drain(..) {
        match seen.get(&c.pattern.to_string()) {
            Some(&at) => {
                let k: &mut Candidate = &mut keep[at];
                k.sources.extend(c.sources.iter().copied());
                k.sources.sort_unstable();
                k.sources.dedup();
            }
            None => {
                seen.insert(c.pattern.to_string(), keep.len());
                keep.push(c);
            }
        }
    }
    // semantic dedup, quadratic over the (small) candidate set
    let copts = ContainOpts::default();
    let mut alive = vec![true; keep.len()];
    for i in 0..keep.len() {
        if !alive[i] {
            continue;
        }
        for j in (i + 1)..keep.len() {
            if !alive[j] || keep[i].pattern.arity() != keep[j].pattern.arity() {
                continue;
            }
            if equivalent(&keep[i].pattern, &keep[j].pattern, s, &copts).is_contained() {
                // merge sources into the cheaper-to-store twin
                let (w, l) = if keep[j].est_bytes < keep[i].est_bytes {
                    (j, i)
                } else {
                    (i, j)
                };
                let extra = keep[l].sources.clone();
                keep[w].sources.extend(extra);
                keep[w].sources.sort_unstable();
                keep[w].sources.dedup();
                alive[l] = false;
                if l == i {
                    break;
                }
            }
        }
    }
    *cands = keep
        .into_iter()
        .zip(alive)
        .filter_map(|(c, a)| a.then_some(c))
        .collect();
}

/// Keeps only candidates the rewriting engine can serve some workload
/// query from, alone — mining may produce views no query rewrites over
/// (e.g. a generalization whose source needs an attribute it dropped).
fn retain_useful(cands: &mut Vec<Candidate>, w: &Workload, s: &Summary, opts: &AdvisorOpts) {
    cands.retain(|c| {
        let view = [c.to_view("probe", opts)];
        let cards = DefCards::new(&view, s);
        w.queries
            .iter()
            .any(|q| best_rewriting_cost(&q.pattern, &view, s, &opts.rewrite, &cards).is_some())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;
    use smv_xml::Document;

    fn fixture() -> (Document, Summary) {
        // every auction has exactly one `initial` and one `current`
        // (strong edges); bidders are optional
        let d = Document::from_parens(
            r#"site(auctions(auction(initial="1" current="5" bidder(increase="2"))
                            auction(initial="3" current="7")))"#,
        );
        let s = Summary::of(&d);
        (d, s)
    }

    fn wl(srcs: &[&str]) -> Workload {
        Workload::from_patterns(srcs.iter().map(|s| parse_pattern(s).unwrap()))
    }

    #[test]
    fn singletons_and_merged_pair_mined() {
        let (_, s) = fixture();
        let w = wl(&[
            "site(/auctions(/auction{id}(/initial{v})))",
            "site(/auctions(/auction{id}(/current{v})))",
        ]);
        let cands = mine_candidates(&w, &s, &AdvisorOpts::default());
        assert!(cands.iter().any(|c| c.kind == CandidateKind::Singleton));
        let merged: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.kind == CandidateKind::Merged)
            .collect();
        assert_eq!(merged.len(), 1, "one merged pair candidate");
        assert_eq!(merged[0].sources, vec![0, 1]);
        assert_eq!(
            merged[0].pattern.to_string(),
            "site(/auctions(/auction{id}(/initial{v}, /current{v})))"
        );
        // the merged view serves each source query by itself
        let opts = AdvisorOpts::default();
        let view = [merged[0].to_view("m", &opts)];
        let cards = DefCards::new(&view, &s);
        for q in &w.queries {
            assert!(
                best_rewriting_cost(&q.pattern, &view, &s, &opts.rewrite, &cards).is_some(),
                "merged candidate must rewrite {}",
                q.pattern
            );
        }
    }

    #[test]
    fn weak_edges_block_merging() {
        let (_, s) = fixture();
        // `bidder` is weak (one auction has none): a required branch
        // through it would lose auctions, so no merged candidate
        let w = wl(&[
            "site(/auctions(/auction{id}(/initial{v})))",
            "site(/auctions(/auction{id}(/bidder(/increase{v}))))",
        ]);
        let cands = mine_candidates(&w, &s, &AdvisorOpts::default());
        assert!(
            cands.iter().all(|c| c.kind != CandidateKind::Merged),
            "weak bidder edge must block the merge"
        );
    }

    #[test]
    fn generalized_candidate_drops_predicate_keeps_value() {
        let (_, s) = fixture();
        let w = wl(&["site(/auctions(/auction{id}(/initial{v}[v>2])))"]);
        let cands = mine_candidates(&w, &s, &AdvisorOpts::default());
        let g: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.kind == CandidateKind::Generalized)
            .collect();
        assert_eq!(g.len(), 1);
        assert!(g[0]
            .pattern
            .iter()
            .all(|n| g[0].pattern.node(n).predicate.is_top()));
        // generalization has more rows than the filtered singleton
        let s0 = cands
            .iter()
            .find(|c| c.kind == CandidateKind::Singleton)
            .unwrap();
        assert!(g[0].est_rows >= s0.est_rows);
    }

    #[test]
    fn equivalent_candidates_are_deduped() {
        let (_, s) = fixture();
        // two identical queries: their singletons collapse to one
        let w = wl(&[
            "site(/auctions(/auction{id}(/initial{v})))",
            "site(/auctions(/auction{id}(/initial{v})))",
        ]);
        let cands = mine_candidates(&w, &s, &AdvisorOpts::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].sources, vec![0, 1]);
    }
}
