//! View catalog: definitions + materialized extents.

use crate::materialize::{materialize, schema_of};
use smv_algebra::{NestedRelation, Schema, ViewProvider};
use smv_pattern::Pattern;
use smv_xml::{Document, IdScheme};
use std::collections::HashMap;

/// A view definition: a named extended tree pattern with an ID scheme.
#[derive(Clone, Debug)]
pub struct View {
    /// Catalog name.
    pub name: String,
    /// The defining pattern.
    pub pattern: Pattern,
    /// The identifier scheme stored in `ID` columns.
    pub scheme: IdScheme,
}

impl View {
    /// Creates a view definition.
    pub fn new(name: &str, pattern: Pattern, scheme: IdScheme) -> View {
        View {
            name: name.to_owned(),
            pattern,
            scheme,
        }
    }

    /// The relational schema of the view.
    pub fn schema(&self) -> Schema {
        schema_of(&self.pattern)
    }
}

/// Definitions plus materialized extents; the [`ViewProvider`] rewriting
/// plans run against.
#[derive(Default)]
pub struct Catalog {
    views: Vec<View>,
    extents: HashMap<String, NestedRelation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a view and materializes it over `doc`.
    pub fn add(&mut self, view: View, doc: &Document) {
        let extent = materialize(&view.pattern, doc, view.scheme);
        self.extents.insert(view.name.clone(), extent);
        self.views.push(view);
    }

    /// Registers a view with a precomputed extent (tests / remote stores).
    pub fn add_with_extent(&mut self, view: View, extent: NestedRelation) {
        self.extents.insert(view.name.clone(), extent);
        self.views.push(view);
    }

    /// All view definitions.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Definition lookup.
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.iter().find(|v| v.name == name)
    }

    /// Row count of a materialized extent (the scan cardinality the cost
    /// model starts from).
    pub fn extent_rows(&self, name: &str) -> Option<usize> {
        self.extents.get(name).map(NestedRelation::len)
    }

    /// Stored bytes of a materialized extent, using the same per-cell
    /// weights as [`crate::cards::estimate_extent_bytes`] (IDs 16, labels
    /// 8, values 16; content at its serialized length; nulls free; nested
    /// tables recursively) — so a storage budget checked against the
    /// definition-only estimate remains meaningful after materialization.
    pub fn extent_bytes(&self, name: &str) -> Option<f64> {
        fn rel_bytes(rel: &NestedRelation) -> f64 {
            use crate::cards::{BYTES_ID, BYTES_LABEL, BYTES_VALUE};
            use smv_algebra::Cell;
            let mut b = 0.0;
            for row in &rel.rows {
                for cell in &row.cells {
                    b += match cell {
                        Cell::Null => 0.0,
                        Cell::Id(_) => BYTES_ID,
                        Cell::Label(_) => BYTES_LABEL,
                        Cell::Atom(_) => BYTES_VALUE,
                        Cell::Content(c) => c.len() as f64,
                        Cell::Table(t) => rel_bytes(t),
                    };
                }
            }
            b
        }
        self.extents.get(name).map(rel_bytes)
    }

    /// Total stored bytes across every materialized extent.
    pub fn total_bytes(&self) -> f64 {
        self.views
            .iter()
            .filter_map(|v| self.extent_bytes(&v.name))
            .sum()
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

impl ViewProvider for Catalog {
    fn extent(&self, name: &str) -> Option<&NestedRelation> {
        self.extents.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;

    #[test]
    fn catalog_materializes_on_add() {
        let doc = Document::from_parens(r#"a(b="1" b="2")"#);
        let mut cat = Catalog::new();
        cat.add(
            View::new(
                "v_b",
                parse_pattern("a(/b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            &doc,
        );
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.extent("v_b").unwrap().len(), 2);
        assert!(cat.extent("zz").is_none());
        assert_eq!(cat.view("v_b").unwrap().schema().len(), 2);
    }
}
