//! View catalog: definitions + materialized extents, optionally
//! partitioned per summary-path shard.

use crate::materialize::{materialize, schema_of};
use smv_algebra::{
    AttrKind, Cell, ColKind, ExtentShard, NestedRelation, Schema, ShardPartition, ViewProvider,
};
use smv_pattern::Pattern;
use smv_summary::Summary;
use smv_xml::{Document, IdAssignment, IdScheme, NodeId, StructId};
use std::collections::HashMap;

/// A view definition: a named extended tree pattern with an ID scheme.
#[derive(Clone, Debug)]
pub struct View {
    /// Catalog name.
    pub name: String,
    /// The defining pattern.
    pub pattern: Pattern,
    /// The identifier scheme stored in `ID` columns.
    pub scheme: IdScheme,
}

impl View {
    /// Creates a view definition.
    pub fn new(name: &str, pattern: Pattern, scheme: IdScheme) -> View {
        View {
            name: name.to_owned(),
            pattern,
            scheme,
        }
    }

    /// The relational schema of the view.
    pub fn schema(&self) -> Schema {
        schema_of(&self.pattern)
    }
}

/// Definitions plus materialized extents; the [`ViewProvider`] rewriting
/// plans run against.
#[derive(Default)]
pub struct Catalog {
    views: Vec<View>,
    extents: HashMap<String, NestedRelation>,
    shards: HashMap<String, ShardPartition>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a view and materializes it over `doc`.
    pub fn add(&mut self, view: View, doc: &Document) {
        let extent = materialize(&view.pattern, doc, view.scheme);
        self.retire_view_state(&view.name);
        self.extents.insert(view.name.clone(), extent);
        self.views.push(view);
    }

    /// Drops every piece of per-registration state a previous view of
    /// this name left behind: its definition entry, extent, and shard
    /// partition. Every registration path funnels through this before
    /// inserting, so a re-registered name can neither resolve to a stale
    /// definition (`view()` returns the first name match) nor leave a
    /// partition whose row indices dangle into the replaced extent.
    fn retire_view_state(&mut self, name: &str) {
        self.views.retain(|v| v.name != name);
        self.extents.remove(name);
        self.shards.remove(name);
    }

    /// Registers a view, materializes it over `doc`, and partitions the
    /// extent per summary-path shard: every row is assigned to the
    /// summary path of its first-column ID, giving the executor the
    /// per-path-pair decomposition of structural joins (`⋈_≺` / `⋈_≺≺`
    /// shard pairs whose paths are not ancestor-related in `summary`
    /// produce no output and are skipped; the rest run in parallel under
    /// `ExecOpts { threads: n > 1 }`).
    ///
    /// The extent is stored **normalized** (sorted in document order on
    /// its first column, duplicates removed) — semantically identical
    /// under set semantics, and a prerequisite for per-shard joins.
    /// Views whose first column is not an ID, or whose rows cannot be
    /// classified against `summary`, are stored unpartitioned and simply
    /// keep the chunk-parallel execution path.
    ///
    /// ```
    /// use smv_views::{Catalog, View};
    /// use smv_pattern::parse_pattern;
    /// use smv_summary::Summary;
    /// use smv_xml::{Document, IdScheme};
    ///
    /// let doc = Document::from_parens(r#"site(item(name="pen") item(name="ink"))"#);
    /// let summary = Summary::of(&doc);
    /// let mut catalog = Catalog::new();
    /// catalog.add_sharded(
    ///     View::new("v", parse_pattern("site(//name{id,v})").unwrap(), IdScheme::OrdPath),
    ///     &doc,
    ///     &summary,
    /// );
    /// let partition = catalog.shard_partition("v").expect("id-first view is sharded");
    /// assert_eq!(partition.shards.len(), 1, "every name sits on one summary path");
    /// assert_eq!(partition.shards[0].rows.len(), 2);
    /// ```
    pub fn add_sharded(&mut self, view: View, doc: &Document, summary: &Summary) {
        let mut extent = materialize(&view.pattern, doc, view.scheme);
        extent.normalize();
        let partition = shard_extent(&extent, doc, view.scheme, summary);
        self.retire_view_state(&view.name);
        if let Some(partition) = partition {
            self.shards.insert(view.name.clone(), partition);
        }
        self.extents.insert(view.name.clone(), extent);
        self.views.push(view);
    }

    /// Registers a batch of views at once, materializing, normalizing and
    /// shard-partitioning each on `pool` — one task per view, so bulk
    /// catalog builds draw from the same worker queue as query execution
    /// instead of running view-at-a-time. Catalog insertion order (and
    /// hence [`Catalog::views`] order) matches the `views` argument
    /// exactly, and each view's stored extent and partition are identical
    /// to what [`Catalog::add_sharded`] would have produced.
    pub fn add_sharded_batch(
        &mut self,
        views: Vec<View>,
        doc: &Document,
        summary: &Summary,
        pool: &smv_xml::par::WorkerPool,
    ) {
        let built = pool.pool_map(0, views.len(), |i| {
            let view = &views[i];
            let mut extent = materialize(&view.pattern, doc, view.scheme);
            extent.normalize();
            let partition = shard_extent(&extent, doc, view.scheme, summary);
            (extent, partition)
        });
        for (view, (extent, partition)) in views.into_iter().zip(built) {
            self.retire_view_state(&view.name);
            if let Some(p) = partition {
                self.shards.insert(view.name.clone(), p);
            }
            self.extents.insert(view.name.clone(), extent);
            self.views.push(view);
        }
    }

    /// Registers a view with a precomputed extent (tests / remote stores).
    pub fn add_with_extent(&mut self, view: View, extent: NestedRelation) {
        self.retire_view_state(&view.name);
        self.extents.insert(view.name.clone(), extent);
        self.views.push(view);
    }

    /// The summary-path shard partition of a view's extent, when the view
    /// was registered through [`Catalog::add_sharded`] and qualified.
    pub fn shard_partition(&self, name: &str) -> Option<&ShardPartition> {
        self.shards.get(name)
    }

    /// All view definitions.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Definition lookup.
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.iter().find(|v| v.name == name)
    }

    /// Row count of a materialized extent (the scan cardinality the cost
    /// model starts from).
    pub fn extent_rows(&self, name: &str) -> Option<usize> {
        self.extents.get(name).map(NestedRelation::len)
    }

    /// Stored bytes of a materialized extent, using the same per-cell
    /// weights as [`crate::cards::estimate_extent_bytes`] (IDs 16, labels
    /// 8, values 16; content at its serialized length; nulls free; nested
    /// tables recursively) — so a storage budget checked against the
    /// definition-only estimate remains meaningful after materialization.
    pub fn extent_bytes(&self, name: &str) -> Option<f64> {
        fn rel_bytes(rel: &NestedRelation) -> f64 {
            use crate::cards::{BYTES_ID, BYTES_LABEL, BYTES_VALUE};
            use smv_algebra::Cell;
            let mut b = 0.0;
            for row in &rel.rows {
                for cell in &row.cells {
                    b += match cell {
                        Cell::Null => 0.0,
                        Cell::Id(_) => BYTES_ID,
                        Cell::Label(_) => BYTES_LABEL,
                        Cell::Atom(_) => BYTES_VALUE,
                        Cell::Content(c) => c.len() as f64,
                        Cell::Table(t) => rel_bytes(t),
                    };
                }
            }
            b
        }
        self.extents.get(name).map(rel_bytes)
    }

    /// Total stored bytes across every materialized extent.
    pub fn total_bytes(&self) -> f64 {
        self.views
            .iter()
            .filter_map(|v| self.extent_bytes(&v.name))
            .sum()
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

/// Read access to view definitions and extent sizes — the surface
/// cardinality estimation needs, abstracted over the mutable [`Catalog`]
/// and the immutable per-epoch snapshots of [`crate::epoch`].
pub trait ViewStore {
    /// All view definitions, in registration order.
    fn views(&self) -> &[View];

    /// Definition lookup by name.
    fn view(&self, name: &str) -> Option<&View> {
        self.views().iter().find(|v| v.name == name)
    }

    /// Row count of a materialized extent.
    fn extent_rows(&self, name: &str) -> Option<usize>;
}

impl ViewStore for Catalog {
    fn views(&self) -> &[View] {
        Catalog::views(self)
    }

    fn extent_rows(&self, name: &str) -> Option<usize> {
        Catalog::extent_rows(self, name)
    }
}

/// Partitions a **normalized** extent's rows by the summary path of the
/// first-column ID. Returns `None` — no partition, executor falls back
/// to chunking — when the first column is not an ID column, the
/// document does not conform to `summary`, or some row's ID does not
/// belong to `doc` (never the case for extents materialized from it).
fn shard_extent(
    extent: &NestedRelation,
    doc: &Document,
    scheme: IdScheme,
    summary: &Summary,
) -> Option<ShardPartition> {
    shard_extent_with(extent, doc, &IdAssignment::assign(doc, scheme), summary)
}

/// [`shard_extent`] against an explicit ID assignment — required for live
/// documents, whose maintained IDs diverge from a fresh positional
/// assignment after the first update batch.
pub(crate) fn shard_extent_with(
    extent: &NestedRelation,
    doc: &Document,
    ids: &IdAssignment,
    summary: &Summary,
) -> Option<ShardPartition> {
    match extent.schema.cols.first() {
        Some(c) if c.kind == ColKind::Atom(AttrKind::Id) => {}
        _ => return None,
    }
    let classes = summary.classify(doc)?;
    let id_to_node: HashMap<&StructId, NodeId> = doc.iter().map(|n| (ids.id(n), n)).collect();
    shard_extent_classified(extent, &classes, &|id| id_to_node.get(id).copied(), summary)
}

/// [`shard_extent_with`] against a precomputed classification of the
/// document and an ID index — the epoch store's form: `classes` falls
/// out of summary maintenance and `node_of` is the live document's
/// maintained ID index, so a re-shard costs O(extent rows) instead of
/// O(document). An ID unknown to `node_of` aborts the partition (`None`),
/// as does a first column that is not an ID column.
pub(crate) fn shard_extent_classified(
    extent: &NestedRelation,
    classes: &[NodeId],
    node_of: &dyn Fn(&StructId) -> Option<NodeId>,
    summary: &Summary,
) -> Option<ShardPartition> {
    match extent.schema.cols.first() {
        Some(c) if c.kind == ColKind::Atom(AttrKind::Id) => {}
        _ => return None,
    }
    debug_assert_eq!(extent.sorted_on, Some(0), "normalized id-first extent");
    let mut by_path: HashMap<NodeId, Vec<usize>> = HashMap::new();
    let mut unclassified = Vec::new();
    for (i, row) in extent.rows.iter().enumerate() {
        match &row.cells[0] {
            Cell::Id(id) => by_path
                .entry(classes[node_of(id)?.idx()])
                .or_default()
                .push(i),
            _ => unclassified.push(i),
        }
    }
    let mut shards: Vec<ExtentShard> = by_path
        .into_iter()
        .map(|(path, rows)| ExtentShard {
            path,
            pre: summary.pre_rank(path),
            last_desc: summary.last_descendant_rank(path),
            depth: summary.depth(path),
            rows,
        })
        .collect();
    shards.sort_by_key(|s| s.pre);
    Some(ShardPartition {
        col: 0,
        token: summary.geometry_token(),
        shards,
        unclassified,
    })
}

impl ViewProvider for Catalog {
    fn extent(&self, name: &str) -> Option<&NestedRelation> {
        self.extents.get(name)
    }

    fn shard_partition(&self, name: &str) -> Option<&ShardPartition> {
        self.shards.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;

    #[test]
    fn catalog_materializes_on_add() {
        let doc = Document::from_parens(r#"a(b="1" b="2")"#);
        let mut cat = Catalog::new();
        cat.add(
            View::new(
                "v_b",
                parse_pattern("a(/b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            &doc,
        );
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.extent("v_b").unwrap().len(), 2);
        assert!(cat.extent("zz").is_none());
        assert_eq!(cat.view("v_b").unwrap().schema().len(), 2);
        assert!(cat.shard_partition("v_b").is_none(), "plain add: no shards");
    }

    #[test]
    fn sharded_add_partitions_rows_by_summary_path() {
        // `b` occurs on two summary paths: /a/b and /a/c/b
        let doc = Document::from_parens(r#"a(b="1" c(b="2" b="3") b="4")"#);
        let s = Summary::of(&doc);
        let mut cat = Catalog::new();
        cat.add_sharded(
            View::new(
                "v_b",
                parse_pattern("a(//b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            &doc,
            &s,
        );
        let extent = cat.extent("v_b").unwrap();
        assert_eq!(extent.sorted_on, Some(0), "stored normalized");
        let p = cat.shard_partition("v_b").expect("sharded");
        assert_eq!(p.col, 0);
        assert_eq!(p.shards.len(), 2, "one shard per summary path");
        assert!(p.unclassified.is_empty());
        // shards disjointly cover every row, each in ascending order
        let mut seen: Vec<usize> = Vec::new();
        for sh in &p.shards {
            assert!(sh.rows.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(s.pre_rank(sh.path), sh.pre);
            assert_eq!(s.last_descendant_rank(sh.path), sh.last_desc);
            assert_eq!(s.depth(sh.path), sh.depth);
            seen.extend(&sh.rows);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..extent.len()).collect::<Vec<_>>());
        // shard sizes follow the document: 2 b's on /a/b, 2 on /a/c/b
        let sizes: Vec<usize> = p.shards.iter().map(|sh| sh.rows.len()).collect();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn value_first_views_stay_unpartitioned() {
        let doc = Document::from_parens(r#"a(b="1" b="2")"#);
        let s = Summary::of(&doc);
        let mut cat = Catalog::new();
        cat.add_sharded(
            View::new("v", parse_pattern("a(/b{v})").unwrap(), IdScheme::OrdPath),
            &doc,
            &s,
        );
        assert!(cat.shard_partition("v").is_none(), "no leading ID column");
        assert!(cat.extent("v").is_some(), "extent still served");
    }

    #[test]
    fn re_registering_a_view_drops_its_stale_partition() {
        use smv_algebra::{execute, execute_with, ExecOpts, Plan, StructRel};
        let doc = Document::from_parens(r#"a(p(k="1") p(k="2") p(k="3"))"#);
        let s = Summary::of(&doc);
        let mk = |pat: &str| View::new("v", parse_pattern(pat).unwrap(), IdScheme::OrdPath);
        let anc = View::new(
            "anc",
            parse_pattern("a(//p{id})").unwrap(),
            IdScheme::OrdPath,
        );
        for re_register in [0, 1] {
            let mut cat = Catalog::new();
            cat.add_sharded(anc.clone(), &doc, &s);
            cat.add_sharded(mk("a(//k{id,v})"), &doc, &s);
            assert!(cat.shard_partition("v").is_some());
            // replace `v` with a smaller extent through each non-sharded
            // registration path: the old partition's row indices must go
            // with it, or the parallel fast path would index out of (or
            // wrongly into) the new extent
            match re_register {
                0 => cat.add(mk(r#"a(//k{id,v}[v<=2])"#), &doc),
                _ => {
                    let mut smaller = materialize(
                        &parse_pattern(r#"a(//k{id,v}[v<=2])"#).unwrap(),
                        &doc,
                        IdScheme::OrdPath,
                    );
                    smaller.normalize();
                    cat.add_with_extent(mk(r#"a(//k{id,v}[v<=2])"#), smaller);
                }
            }
            assert!(
                cat.shard_partition("v").is_none(),
                "stale partition dropped (path {re_register})"
            );
            let plan = Plan::StructJoin {
                left: Box::new(Plan::Scan { view: "anc".into() }),
                right: Box::new(Plan::Scan { view: "v".into() }),
                lcol: 0,
                rcol: 0,
                rel: StructRel::Ancestor,
            };
            let seq = execute(&plan, &cat).unwrap();
            let par = execute_with(
                &plan,
                &cat,
                &ExecOpts {
                    threads: 4,
                    min_par_rows: 0,
                    ..ExecOpts::default()
                },
            )
            .unwrap();
            assert_eq!(seq.len(), 2, "the replaced extent is the one served");
            assert_eq!(seq.rows, par.rows);
        }
    }

    #[test]
    fn re_registering_a_view_replaces_its_definition_everywhere() {
        let doc = Document::from_parens(r#"a(p(k="1") p(k="2"))"#);
        let s = Summary::of(&doc);
        let old = || {
            View::new(
                "v",
                parse_pattern("a(//k{id,v})").unwrap(),
                IdScheme::OrdPath,
            )
        };
        let new = || View::new("v", parse_pattern("a(//p{id})").unwrap(), IdScheme::Dewey);
        let pool = smv_xml::par::WorkerPool::new(2);
        type Register<'a> = &'a dyn Fn(&mut Catalog, View);
        let register: [Register; 4] = [
            &|c, v| c.add(v, &doc),
            &|c, v| c.add_sharded(v, &doc, &s),
            &|c, v| c.add_sharded_batch(vec![v], &doc, &s, &pool),
            &|c, v| {
                let mut e = materialize(&v.pattern, &doc, v.scheme);
                e.normalize();
                c.add_with_extent(v, e);
            },
        ];
        for reg in register {
            let mut cat = Catalog::new();
            cat.add_sharded(old(), &doc, &s);
            reg(&mut cat, new());
            assert_eq!(cat.len(), 1, "no duplicate definition entries");
            let v = cat.view("v").expect("still registered");
            assert_eq!(
                (v.scheme, v.pattern.iter().count()),
                (IdScheme::Dewey, new().pattern.iter().count()),
                "lookup resolves to the new definition, not the stale one"
            );
            assert_eq!(cat.extent_rows("v"), Some(2), "extent is the new one");
        }
    }

    #[test]
    fn mismatched_shard_tokens_fall_back_to_chunking() {
        use smv_algebra::{execute, execute_with, ExecOpts, Plan, StructRel};
        // shard one view, extend the summary (which renumbers pre-order
        // ranks and bumps the geometry token), then shard the other:
        // the two partitions' rank geometries are no longer comparable,
        // so the executor must not take the path-pair fast path — and
        // results must stay identical either way.
        let doc = Document::from_parens(r#"a(p(q(k="1") k="2") p(q(k="3")))"#);
        let mut s = Summary::of(&doc);
        let mut cat = Catalog::new();
        cat.add_sharded(
            View::new(
                "anc",
                parse_pattern("a(//q{id})").unwrap(),
                IdScheme::OrdPath,
            ),
            &doc,
            &s,
        );
        s.extend_with(&Document::from_parens("a(zz(q(k)))"));
        cat.add_sharded(
            View::new(
                "des",
                parse_pattern("a(//k{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            &doc,
            &s,
        );
        let (p1, p2) = (
            cat.shard_partition("anc").unwrap(),
            cat.shard_partition("des").unwrap(),
        );
        assert_ne!(p1.token, p2.token, "extension invalidated the geometry");
        let plan = Plan::StructJoin {
            left: Box::new(Plan::Scan { view: "anc".into() }),
            right: Box::new(Plan::Scan { view: "des".into() }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Ancestor,
        };
        let seq = execute(&plan, &cat).unwrap();
        let par = execute_with(
            &plan,
            &cat,
            &ExecOpts {
                threads: 4,
                min_par_rows: 0,
                ..ExecOpts::default()
            },
        )
        .unwrap();
        assert!(!seq.is_empty());
        assert_eq!(seq.rows, par.rows);
    }

    #[test]
    fn sharded_catalog_executes_struct_joins_identically_in_parallel() {
        use smv_algebra::{execute_profiled, execute_profiled_with, ExecOpts, Plan, StructRel};
        let doc = Document::from_parens(
            r#"a(p(q(k="1") k="2") p(k="3") r(q(k="4" k="5")) p(q(q(k="6"))))"#,
        );
        let s = Summary::of(&doc);
        let mut cat = Catalog::new();
        for (name, pat) in [("anc", "a(//q{id})"), ("des", "a(//k{id,v})")] {
            cat.add_sharded(
                View::new(name, parse_pattern(pat).unwrap(), IdScheme::OrdPath),
                &doc,
                &s,
            );
        }
        for rel in [StructRel::Ancestor, StructRel::Parent] {
            let plan = Plan::StructJoin {
                left: Box::new(Plan::Scan { view: "anc".into() }),
                right: Box::new(Plan::Scan { view: "des".into() }),
                lcol: 0,
                rcol: 0,
                rel,
            };
            let (seq, prof_seq) = execute_profiled(&plan, &cat).unwrap();
            let opts = ExecOpts {
                threads: 4,
                min_par_rows: 0,
                ..ExecOpts::default()
            };
            let (par, prof_par) = execute_profiled_with(&plan, &cat, &opts).unwrap();
            assert!(!seq.is_empty());
            assert_eq!(seq.rows, par.rows, "{rel:?}");
            for (path, rows) in prof_seq.iter() {
                assert_eq!(prof_par.rows_at(path), Some(rows), "{rel:?} at `{path}`");
            }
        }
    }

    #[test]
    fn add_sharded_batch_equals_one_at_a_time() {
        let doc = Document::from_parens(
            r#"a(p(q(k="1") k="2") p(k="3") r(q(k="4" k="5")) p(q(q(k="6"))))"#,
        );
        let s = Summary::of(&doc);
        let defs = || {
            vec![
                View::new(
                    "anc",
                    parse_pattern("a(//q{id})").unwrap(),
                    IdScheme::OrdPath,
                ),
                View::new(
                    "des",
                    parse_pattern("a(//k{id,v})").unwrap(),
                    IdScheme::OrdPath,
                ),
                // value-first view: stays unpartitioned in both paths
                View::new(
                    "vals",
                    parse_pattern("a(//k{v})").unwrap(),
                    IdScheme::OrdPath,
                ),
            ]
        };
        let mut one_by_one = Catalog::new();
        for v in defs() {
            one_by_one.add_sharded(v, &doc, &s);
        }
        let pool = smv_xml::par::WorkerPool::new(3);
        let mut batched = Catalog::new();
        batched.add_sharded_batch(defs(), &doc, &s, &pool);
        assert_eq!(
            batched.views().iter().map(|v| &v.name).collect::<Vec<_>>(),
            one_by_one
                .views()
                .iter()
                .map(|v| &v.name)
                .collect::<Vec<_>>(),
            "insertion order preserved"
        );
        for v in one_by_one.views() {
            use smv_algebra::ViewProvider;
            assert_eq!(
                batched.extent(&v.name).unwrap().rows,
                one_by_one.extent(&v.name).unwrap().rows,
                "extent of {}",
                v.name
            );
            let (b, o) = (
                batched.shard_partition(&v.name),
                one_by_one.shard_partition(&v.name),
            );
            assert_eq!(b.is_some(), o.is_some(), "partitioned-ness of {}", v.name);
            if let (Some(b), Some(o)) = (b, o) {
                assert_eq!(b.col, o.col);
                assert_eq!(b.token, o.token);
                assert_eq!(b.unclassified, o.unclassified);
                assert_eq!(b.shards.len(), o.shards.len());
                for (bs, os) in b.shards.iter().zip(&o.shards) {
                    assert_eq!(
                        (bs.path, bs.pre, bs.last_desc, bs.depth),
                        (os.path, os.pre, os.last_desc, os.depth)
                    );
                    assert_eq!(bs.rows, os.rows);
                }
            }
        }
        assert!(
            pool.jobs_dispatched() >= 1,
            "the batch really used the pool"
        );
    }
}
