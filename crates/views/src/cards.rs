//! Cardinality sources for the cost model (`smv_algebra::cost`).
//!
//! Two implementations of [`CardSource`]:
//!
//! * [`CatalogCards`] — backed by a materialized [`Catalog`]: scan row
//!   counts are the *actual* extent sizes;
//! * [`DefCards`] — backed by view *definitions* only: scan row counts
//!   are estimated from the summary's per-path statistics, which is what
//!   the rewriting engine has available before anything is materialized.
//!
//! Both annotate every scan column with its candidate summary paths via
//! [`col_cards`], mirroring the [`schema_of`] column layout.

use crate::catalog::{Catalog, View};
use crate::materialize::schema_of;
use smv_algebra::{CardSource, ColCard, ScanCard};
use smv_pattern::{associated_paths, PNodeId, Pattern};
use smv_summary::Summary;
use smv_xml::NodeId;

/// Per-column candidate summary paths for a view pattern, mirroring the
/// [`schema_of`] layout (attribute columns in `ID`, `L`, `V`, `C` order,
/// nested edges as [`ColCard::Nested`]).
pub fn col_cards(p: &Pattern, s: &Summary) -> Vec<ColCard> {
    fn rec(p: &Pattern, paths: &[Vec<NodeId>], n: PNodeId, out: &mut Vec<ColCard>) {
        let nd = p.node(n);
        for _ in 0..nd.attrs.count() {
            out.push(ColCard::Atom(paths[n.idx()].clone()));
        }
        for &c in p.children(n) {
            if p.node(c).nested {
                let mut inner = Vec::new();
                rec(p, paths, c, &mut inner);
                out.push(ColCard::Nested(inner));
            } else {
                rec(p, paths, c, out);
            }
        }
    }
    let paths = associated_paths(p, s);
    let mut out = Vec::new();
    rec(p, &paths, p.root(), &mut out);
    debug_assert_eq!(out.len(), schema_of(p).len(), "column layout mismatch");
    out
}

/// Estimates the extent size of a view from its definition and the
/// summary's per-path node counts: the largest candidate population over
/// the pattern's return nodes. Exact for chain patterns (a binding of the
/// most-populated return node determines its ancestors); an underestimate
/// for patterns whose return nodes multiply out — callers needing tighter
/// numbers should materialize and use [`CatalogCards`].
pub fn estimate_extent_rows(p: &Pattern, s: &Summary) -> f64 {
    let pf = p.unnest_copy();
    let paths = associated_paths(&pf, s);
    pf.return_nodes()
        .iter()
        .map(|r| {
            paths[r.idx()]
                .iter()
                .map(|&sp| s.count(sp) as f64)
                .sum::<f64>()
        })
        .fold(0.0f64, f64::max)
        .max(1.0)
}

/// [`CardSource`] over a materialized catalog: actual extent sizes plus
/// definition-derived column paths.
pub struct CatalogCards<'a> {
    catalog: &'a Catalog,
    summary: &'a Summary,
}

impl<'a> CatalogCards<'a> {
    /// Builds a source over `catalog` under `summary`.
    pub fn new(catalog: &'a Catalog, summary: &'a Summary) -> CatalogCards<'a> {
        CatalogCards { catalog, summary }
    }
}

impl CardSource for CatalogCards<'_> {
    fn scan_card(&self, view: &str) -> Option<ScanCard> {
        let v = self.catalog.view(view)?;
        let rows = self.catalog.extent_rows(view)? as f64;
        Some(ScanCard {
            rows,
            cols: col_cards(&v.pattern, self.summary),
        })
    }
}

/// [`CardSource`] over view definitions only: extent sizes are estimated
/// from the summary. This is what `rewrite()` uses by default — it never
/// sees materialized extents.
pub struct DefCards<'a> {
    views: &'a [View],
    summary: &'a Summary,
}

impl<'a> DefCards<'a> {
    /// Builds a source over `views` under `summary`.
    pub fn new(views: &'a [View], summary: &'a Summary) -> DefCards<'a> {
        DefCards { views, summary }
    }
}

impl CardSource for DefCards<'_> {
    fn scan_card(&self, view: &str) -> Option<ScanCard> {
        let v = self.views.iter().find(|v| v.name == view)?;
        Some(ScanCard {
            rows: estimate_extent_rows(&v.pattern, self.summary),
            cols: col_cards(&v.pattern, self.summary),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;
    use smv_xml::{Document, IdScheme};

    fn fixture() -> (Document, Summary) {
        let d =
            Document::from_parens(r#"r(item(name="p1" bid="1" bid="2") item(name="p2") other)"#);
        let s = Summary::of(&d);
        (d, s)
    }

    #[test]
    fn definition_estimates_track_path_counts() {
        let (_, s) = fixture();
        let v = parse_pattern("r(//name{id,v})").unwrap();
        assert_eq!(estimate_extent_rows(&v, &s), 2.0);
        let chain = parse_pattern("r(/item{id}(/bid{id,v}))").unwrap();
        assert_eq!(
            estimate_extent_rows(&chain, &s),
            2.0,
            "driven by bids' items"
        );
    }

    #[test]
    fn catalog_cards_report_actual_sizes() {
        let (d, s) = fixture();
        let mut cat = Catalog::new();
        cat.add(
            View::new(
                "vn",
                parse_pattern("r(//name{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            &d,
        );
        let cards = CatalogCards::new(&cat, &s);
        let sc = cards.scan_card("vn").unwrap();
        assert_eq!(sc.rows, 2.0);
        assert_eq!(sc.cols.len(), 2, "ID and V columns");
        let name_path = s.node_by_path("/r/item/name").unwrap();
        match &sc.cols[0] {
            ColCard::Atom(ps) => assert_eq!(ps, &vec![name_path]),
            other => panic!("expected atom card, got {other:?}"),
        }
        assert!(cards.scan_card("zz").is_none());
    }

    #[test]
    fn nested_patterns_nest_their_cards() {
        let (_, s) = fixture();
        let v = parse_pattern("r(/item{id}(?%/bid{v}))").unwrap();
        let cards = col_cards(&v, &s);
        assert_eq!(cards.len(), 2);
        assert!(matches!(cards[1], ColCard::Nested(ref inner) if inner.len() == 1));
    }
}
