//! Cardinality sources for the cost model (`smv_algebra::cost`).
//!
//! Two implementations of [`CardSource`]:
//!
//! * [`CatalogCards`] — backed by a materialized [`Catalog`]: scan row
//!   counts are the *actual* extent sizes;
//! * [`DefCards`] — backed by view *definitions* only: scan row counts
//!   are estimated from the summary's per-path statistics, which is what
//!   the rewriting engine has available before anything is materialized.
//!
//! Both annotate every scan column with its candidate summary paths via
//! [`col_cards`], mirroring the [`schema_of`] column layout.

use crate::catalog::{Catalog, View, ViewStore};
use crate::materialize::schema_of;
use smv_algebra::{CardSource, ColCard, ScanCard};
use smv_pattern::{associated_paths, PNodeId, Pattern};
use smv_summary::Summary;
use smv_xml::NodeId;

/// Per-column candidate summary paths for a view pattern, mirroring the
/// [`schema_of`] layout (attribute columns in `ID`, `L`, `V`, `C` order,
/// nested edges as [`ColCard::Nested`]).
pub fn col_cards(p: &Pattern, s: &Summary) -> Vec<ColCard> {
    fn rec(p: &Pattern, paths: &[Vec<NodeId>], n: PNodeId, out: &mut Vec<ColCard>) {
        let nd = p.node(n);
        for _ in 0..nd.attrs.count() {
            out.push(ColCard::Atom(paths[n.idx()].clone()));
        }
        for &c in p.children(n) {
            if p.node(c).nested {
                let mut inner = Vec::new();
                rec(p, paths, c, &mut inner);
                out.push(ColCard::Nested(inner));
            } else {
                rec(p, paths, c, out);
            }
        }
    }
    let paths = associated_paths(p, s);
    let mut out = Vec::new();
    rec(p, &paths, p.root(), &mut out);
    debug_assert_eq!(out.len(), schema_of(p).len(), "column layout mismatch");
    out
}

/// Estimates the extent size of a view from its definition and the
/// summary's per-path statistics, without materializing anything.
///
/// The estimate is the expected number of *outer* rows — the quantity
/// [`Catalog::extent_rows`] reports — computed as the embedding count of
/// the non-nested part of the pattern: walking the pattern top-down, a
/// child on summary path `q` under a parent bound to path `sp` matches
/// `count(q) / count(sp)` times per parent binding (every `q`-node has
/// exactly one ancestor on each of its ancestor paths), sibling branches
/// multiply, optional branches keep at least one row (`⊥`), and nested
/// edges contribute a single table-valued cell rather than multiplying
/// rows. Exact for required single-path branches; branch products assume
/// independence and optional edges use `max(1, E[k])` ≤ `E[max(1, k)]`,
/// so skewed fan-outs can still deviate — callers needing exact numbers
/// should materialize and use [`CatalogCards`].
/// Value predicates discount their node's contribution by the fraction
/// of the path's distinct-value sample the formula accepts (1/3 once the
/// sketch has saturated), so filtered views are priced below their
/// unfiltered generalizations.
pub fn estimate_extent_rows(p: &Pattern, s: &Summary) -> f64 {
    let paths = associated_paths(p, s);
    let root_paths = &paths[p.root().idx()];
    root_paths
        .iter()
        .map(|&rp| {
            s.count(rp) as f64
                * predicate_selectivity(s, rp, &p.node(p.root()).predicate)
                * embeddings_per_binding(p, s, &paths, p.root(), rp)
        })
        .sum::<f64>()
        .max(1.0)
}

/// Fraction of the document nodes on path `q` satisfying `f`: the valued
/// fraction times the accepted share of the value distribution
/// ([`smv_algebra::value_accepted_fraction`] — the exact distinct-value
/// sample while the sketch is unsaturated, its end-biased equi-width
/// histogram afterwards; the same estimate the plan cost model uses, so
/// extents and selections never disagree). Falls back to 1/3 only when
/// neither statistic exists (non-numeric saturated values).
fn predicate_selectivity(s: &Summary, q: NodeId, f: &smv_pattern::Formula) -> f64 {
    if f.is_top() {
        return 1.0;
    }
    let value_frac = s.value_count(q) as f64 / (s.count(q).max(1)) as f64;
    match smv_algebra::value_accepted_fraction(s, q, f) {
        Some(frac) => value_frac * frac,
        None => value_frac / 3.0,
    }
}

/// Expected embeddings of the non-nested part of `n`'s subtree per
/// document node on summary path `sp` (see [`estimate_extent_rows`]).
fn embeddings_per_binding(
    p: &Pattern,
    s: &Summary,
    paths: &[Vec<NodeId>],
    n: PNodeId,
    sp: NodeId,
) -> f64 {
    use smv_pattern::Axis;
    let mut per = 1.0;
    for &c in p.children(n) {
        let cn = p.node(c);
        if cn.nested {
            continue; // nested subtrees land in table cells, not rows
        }
        let mut x = 0.0;
        for &q in &paths[c.idx()] {
            let under = match cn.axis {
                Axis::Child => s.is_parent(sp, q),
                Axis::Descendant => s.is_ancestor(sp, q),
            };
            if under && s.count(sp) > 0 {
                x += (s.count(q) as f64 / s.count(sp) as f64)
                    * predicate_selectivity(s, q, &cn.predicate)
                    * embeddings_per_binding(p, s, paths, c, q);
            }
        }
        per *= if cn.optional { x.max(1.0) } else { x };
    }
    per
}

/// Per-cell byte weights shared by the definition-only size estimate and
/// the materialized accounting, so budgeted advice and actual storage are
/// comparable: a structural ID ≈ 16 bytes, an interned label 8, an atomic
/// value 16, stored content 64 (serialized subtrees dwarf atoms).
pub const BYTES_ID: f64 = 16.0;
/// Byte weight of a label cell.
pub const BYTES_LABEL: f64 = 8.0;
/// Byte weight of an atomic value cell.
pub const BYTES_VALUE: f64 = 16.0;
/// Byte weight of a stored-content cell.
pub const BYTES_CONTENT: f64 = 64.0;

/// Per-row byte width of a pattern's stored attributes (nested subtrees
/// included — this is the width of the fully flattened row).
fn row_width(p: &Pattern) -> f64 {
    p.iter()
        .map(|n| {
            let a = p.node(n).attrs;
            let mut w = 0.0;
            if a.id {
                w += BYTES_ID;
            }
            if a.label {
                w += BYTES_LABEL;
            }
            if a.value {
                w += BYTES_VALUE;
            }
            if a.content {
                w += BYTES_CONTENT;
            }
            w
        })
        .sum()
}

/// Estimated stored bytes of a view's extent: the fully *flattened* row
/// count (nested edges unnested — nested tables pay for their rows)
/// times the per-row width of every stored attribute. A deliberate
/// over-approximation of nested storage (outer cells are charged once
/// per nested row, as a flattened store would pay), which keeps budgeted
/// selection conservative.
pub fn estimate_extent_bytes(p: &Pattern, s: &Summary) -> f64 {
    estimate_extent_rows(&p.unnest_copy(), s) * row_width(p)
}

/// [`CardSource`] over a materialized view store: actual extent sizes
/// plus definition-derived column paths. Works over the mutable
/// [`Catalog`] and over epoch snapshots ([`crate::CatalogEpoch`]) alike
/// — anything implementing [`ViewStore`].
pub struct CatalogCards<'a> {
    store: &'a dyn ViewStore,
    summary: &'a Summary,
}

impl<'a> CatalogCards<'a> {
    /// Builds a source over `catalog` under `summary`.
    pub fn new(catalog: &'a Catalog, summary: &'a Summary) -> CatalogCards<'a> {
        CatalogCards::over(catalog, summary)
    }

    /// Builds a source over any [`ViewStore`] under `summary`.
    pub fn over(store: &'a dyn ViewStore, summary: &'a Summary) -> CatalogCards<'a> {
        CatalogCards { store, summary }
    }
}

impl CardSource for CatalogCards<'_> {
    fn scan_card(&self, view: &str) -> Option<ScanCard> {
        let v = self.store.view(view)?;
        let rows = self.store.extent_rows(view)? as f64;
        Some(ScanCard {
            rows,
            cols: col_cards(&v.pattern, self.summary),
        })
    }
}

/// [`CardSource`] over view definitions only: extent sizes are estimated
/// from the summary. This is what `rewrite()` uses by default — it never
/// sees materialized extents.
pub struct DefCards<'a> {
    views: &'a [View],
    summary: &'a Summary,
}

impl<'a> DefCards<'a> {
    /// Builds a source over `views` under `summary`.
    pub fn new(views: &'a [View], summary: &'a Summary) -> DefCards<'a> {
        DefCards { views, summary }
    }
}

impl CardSource for DefCards<'_> {
    fn scan_card(&self, view: &str) -> Option<ScanCard> {
        let v = self.views.iter().find(|v| v.name == view)?;
        Some(ScanCard {
            rows: estimate_extent_rows(&v.pattern, self.summary),
            cols: col_cards(&v.pattern, self.summary),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;
    use smv_xml::{Document, IdScheme};

    fn fixture() -> (Document, Summary) {
        let d =
            Document::from_parens(r#"r(item(name="p1" bid="1" bid="2") item(name="p2") other)"#);
        let s = Summary::of(&d);
        (d, s)
    }

    #[test]
    fn definition_estimates_track_path_counts() {
        let (_, s) = fixture();
        let v = parse_pattern("r(//name{id,v})").unwrap();
        assert_eq!(estimate_extent_rows(&v, &s), 2.0);
        let chain = parse_pattern("r(/item{id}(/bid{id,v}))").unwrap();
        assert_eq!(
            estimate_extent_rows(&chain, &s),
            2.0,
            "driven by bids' items"
        );
    }

    #[test]
    fn predicates_discount_the_estimate() {
        let (_, s) = fixture();
        // bids carry values {1, 2}; v>1 keeps half the distinct sample
        let all = parse_pattern("r(//bid{id,v})").unwrap();
        let some = parse_pattern("r(//bid{id,v}[v>1])").unwrap();
        assert_eq!(estimate_extent_rows(&all, &s), 2.0);
        assert_eq!(estimate_extent_rows(&some, &s), 1.0);
        assert!(estimate_extent_bytes(&some, &s) < estimate_extent_bytes(&all, &s));
    }

    #[test]
    fn nested_views_estimate_outer_rows() {
        let (d, s) = fixture();
        // the extent of a nested view has one row per item — the nested
        // bids live in a table cell and must not multiply outer rows
        let v = parse_pattern("r(/item{id}(?%/bid{id,v}))").unwrap();
        assert_eq!(estimate_extent_rows(&v, &s), 2.0);
        let mut cat = Catalog::new();
        cat.add(View::new("vn", v, IdScheme::OrdPath), &d);
        assert_eq!(cat.extent_rows("vn").unwrap() as f64, 2.0);
    }

    #[test]
    fn branching_views_multiply_sibling_fanouts() {
        let (d, s) = fixture();
        // item1 has 1 name × 2 bids, item2 has 1 name × 0 bids → 2 rows
        let v = parse_pattern("r(/item{id}(/name{v}, /bid{v}))").unwrap();
        assert_eq!(estimate_extent_rows(&v, &s), 2.0);
        let mut cat = Catalog::new();
        cat.add(View::new("vb", v, IdScheme::OrdPath), &d);
        assert_eq!(cat.extent_rows("vb").unwrap() as f64, 2.0);
    }

    #[test]
    fn byte_estimates_track_rows_and_width() {
        let (d, s) = fixture();
        let v = parse_pattern("r(//name{id,v})").unwrap();
        // 2 rows × (16 id + 16 value)
        assert_eq!(estimate_extent_bytes(&v, &s), 64.0);
        let mut cat = Catalog::new();
        cat.add(View::new("vn", v, IdScheme::OrdPath), &d);
        assert_eq!(cat.extent_bytes("vn").unwrap(), 64.0);
        assert_eq!(cat.total_bytes(), 64.0);
    }

    #[test]
    fn catalog_cards_report_actual_sizes() {
        let (d, s) = fixture();
        let mut cat = Catalog::new();
        cat.add(
            View::new(
                "vn",
                parse_pattern("r(//name{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            &d,
        );
        let cards = CatalogCards::new(&cat, &s);
        let sc = cards.scan_card("vn").unwrap();
        assert_eq!(sc.rows, 2.0);
        assert_eq!(sc.cols.len(), 2, "ID and V columns");
        let name_path = s.node_by_path("/r/item/name").unwrap();
        match &sc.cols[0] {
            ColCard::Atom(ps) => assert_eq!(ps, &vec![name_path]),
            other => panic!("expected atom card, got {other:?}"),
        }
        assert!(cards.scan_card("zz").is_none());
    }

    #[test]
    fn nested_patterns_nest_their_cards() {
        let (_, s) = fixture();
        let v = parse_pattern("r(/item{id}(?%/bid{v}))").unwrap();
        let cards = col_cards(&v, &s);
        assert_eq!(cards.len(), 2);
        assert!(matches!(cards[1], ColCard::Nested(ref inner) if inner.len() == 1));
    }
}
