//! Epoch-versioned catalog with incremental view maintenance.
//!
//! The mutable [`crate::Catalog`] is a build-once structure: documents
//! change, you rebuild. This module is the live-store counterpart.
//! Queries run against an immutable [`CatalogEpoch`] snapshot (an
//! `Arc`-cloned value — in-flight queries are never invalidated by
//! concurrent maintenance), while an [`EpochCatalog`] owns the evolving
//! state: a [`LiveDoc`] with stable node identity, a maintained
//! [`Summary`], and per-view extents kept current under document
//! **update batches**. Applying a batch maintains each view and
//! atomically publishes the next epoch.
//!
//! Maintenance is *delta* work where the view shape permits it
//! ([`RefreshClass::Incremental`]) and a full re-materialization
//! otherwise:
//!
//! * **Deletions** become row kills. A deleted subtree's node IDs are
//!   never re-issued by [`LiveDoc`], so membership of any stored ID cell
//!   in the batch's kill set is an exact death certificate for a row.
//!   When a view's extent is shard-partitioned, the partition's
//!   pre-order interval metadata (`pre`/`last_desc` of each shard's
//!   summary path) prunes the scan: shards whose path interval does not
//!   meet any deleted subtree's path interval cannot hold killed rows
//!   and are retained wholesale.
//! * **Insertions** become a restricted re-evaluation. For a monotone
//!   pattern, every new result embedding binds at least one pattern node
//!   to an inserted document node; pinning each pattern node in turn to
//!   the inserted-subtree intervals (and its pattern ancestors to the
//!   insertion spine or the inserted subtrees) enumerates exactly the
//!   added rows, which union into the surviving extent under set
//!   semantics.
//!
//! The maintained result is required to be **byte-identical** to a
//! from-scratch rebuild over the same live document —
//! [`EpochCatalog::rebuild_from_scratch`] is the oracle the test suite
//! and the benchmark's `maintenance_equivalent` flag check against.

use crate::catalog::{shard_extent_classified, shard_extent_with, View, ViewStore};
use crate::materialize::{eval_embeddings, materialize_with, own_cells};
use smv_algebra::{AttrKind, Cell, ColKind, NestedRelation, Row, ShardPartition, ViewProvider};
use smv_pattern::{Axis, MatchTarget, Matcher, PNodeId, Pattern};
use smv_summary::Summary;
use smv_xml::{
    Document, IdAssignment, IdScheme, LiveDoc, LiveError, NodeId, StructId, UpdateBatch,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// When a view's extent is brought up to date, mirroring SQL
/// materialized-view refresh semantics (`WITH DATA` / `WITH NO DATA`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefreshPolicy {
    /// Materialized at registration and maintained on every batch
    /// (`WITH DATA`): always present in published epochs.
    Eager,
    /// Registered without an extent (`WITH NO DATA`): excluded from
    /// published epochs until [`EpochCatalog::refresh`] populates it,
    /// and marked stale again by the next batch.
    Deferred,
}

/// How a view's extent can be maintained under an update batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefreshClass {
    /// Delta-maintainable: kill rows by deleted-ID membership, add rows
    /// by restricted re-evaluation. Requires a monotone pattern whose
    /// result rows carry their own death certificate — no optional or
    /// nested edges, no content attributes (a serialized subtree can
    /// change without any stored ID dying), and an ID attribute on every
    /// leaf pattern node (so every embedding that loses *any* binding
    /// loses a stored ID with it).
    Incremental,
    /// Anything else: re-materialized in full (still against the live
    /// IDs) on every eager refresh.
    Rebuild,
}

/// Classifies a pattern for maintenance (see [`RefreshClass`]).
pub fn refresh_class(p: &Pattern) -> RefreshClass {
    let incremental = p.optional_edges().is_empty()
        && p.nested_edges().is_empty()
        && p.iter().all(|n| !p.node(n).attrs.content)
        && p.iter()
            .filter(|&n| p.children(n).is_empty())
            .all(|n| p.node(n).attrs.id);
    if incremental {
        RefreshClass::Incremental
    } else {
        RefreshClass::Rebuild
    }
}

/// An immutable catalog snapshot: the view definitions, extents, shard
/// partitions and summary snapshot current at one epoch. Cheap to hold
/// (extents and partitions are `Arc`-shared with the store and with
/// neighboring epochs) and never mutated — a query planned and executed
/// against an epoch sees one consistent version of the data no matter
/// how many batches are applied concurrently.
#[derive(Clone)]
pub struct CatalogEpoch {
    epoch: u64,
    views: Vec<View>,
    extents: HashMap<String, Arc<NestedRelation>>,
    shards: HashMap<String, Arc<ShardPartition>>,
    summary: Summary,
}

impl CatalogEpoch {
    /// The epoch number (monotonically increasing per publish).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The summary snapshot taken when this epoch was published.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

impl ViewStore for CatalogEpoch {
    fn views(&self) -> &[View] {
        &self.views
    }

    fn extent_rows(&self, name: &str) -> Option<usize> {
        self.extents.get(name).map(|r| r.len())
    }
}

impl ViewProvider for CatalogEpoch {
    fn extent(&self, name: &str) -> Option<&NestedRelation> {
        self.extents.get(name).map(Arc::as_ref)
    }

    fn shard_partition(&self, name: &str) -> Option<&ShardPartition> {
        self.shards.get(name).map(Arc::as_ref)
    }
}

/// What one applied batch did to the store — consumed by adaptive
/// sessions to invalidate cached plan feedback for touched views.
#[derive(Clone, Debug)]
pub struct MaintenanceReport {
    /// The epoch this batch published.
    pub epoch: u64,
    /// Eager views whose extents changed (delta-maintained or rebuilt).
    pub refreshed: Vec<String>,
    /// Deferred views marked stale by this batch.
    pub deferred_stale: Vec<String>,
    /// Rows killed across delta-maintained extents.
    pub rows_killed: usize,
    /// Rows added across delta-maintained extents.
    pub rows_added: usize,
    /// Did the batch create summary paths (invalidating rank geometry)?
    pub geometry_changed: bool,
    /// Nanoseconds ingesting the batch into the live document (ID
    /// resolution, arena rebuild, ID-index maintenance) — a cost any
    /// maintenance strategy, delta or rebuild, pays before view work.
    pub ingest_ns: u64,
    /// Nanoseconds on maintenance proper: summary update, extent
    /// delta/rebuild work and re-sharding (publication excluded —
    /// see [`publish_ns`](Self::publish_ns)).
    pub maintain_ns: u64,
    /// Nanoseconds atomically publishing the new epoch (snapshot
    /// assembly and pointer swap) — the readers-visible cutover cost.
    pub publish_ns: u64,
}

struct Registered {
    view: View,
    policy: RefreshPolicy,
    class: RefreshClass,
    /// Deferred views start stale and return to stale after every batch.
    stale: bool,
}

/// The mutable handle of the epoch store: owns the live document, the
/// maintained summary and the evolving per-view state, and publishes an
/// immutable [`CatalogEpoch`] after every change.
pub struct EpochCatalog {
    live: LiveDoc,
    summary: Summary,
    /// Classification of the current live document (`classes[node] =
    /// summary path`), carried across batches — [`Summary::classify`] is
    /// an O(doc) label search, so maintenance derives the next map
    /// incrementally instead of recomputing it.
    classes: Vec<NodeId>,
    registered: Vec<Registered>,
    extents: HashMap<String, Arc<NestedRelation>>,
    shards: HashMap<String, Arc<ShardPartition>>,
    epoch: u64,
    current: Arc<CatalogEpoch>,
    reports: Vec<MaintenanceReport>,
}

impl EpochCatalog {
    /// Takes ownership of `doc` as the live document, with node IDs
    /// assigned under `scheme`. Every registered view shares the store's
    /// scheme — the whole point is one stable identity space.
    pub fn new(doc: Document, scheme: IdScheme) -> EpochCatalog {
        let live = LiveDoc::new(doc, scheme);
        let summary = Summary::of(live.doc());
        let classes = summary
            .classify(live.doc())
            .expect("a document conforms to its own summary");
        let current = Arc::new(CatalogEpoch {
            epoch: 0,
            views: Vec::new(),
            extents: HashMap::new(),
            shards: HashMap::new(),
            summary: summary.snapshot(),
        });
        EpochCatalog {
            live,
            summary,
            classes,
            registered: Vec::new(),
            extents: HashMap::new(),
            shards: HashMap::new(),
            epoch: 0,
            current,
            reports: Vec::new(),
        }
    }

    /// The store's ID scheme.
    pub fn scheme(&self) -> IdScheme {
        self.live.scheme()
    }

    /// The live document.
    pub fn live(&self) -> &LiveDoc {
        &self.live
    }

    /// The maintained (live) summary — snapshots of it are published
    /// with each epoch.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current published epoch. The returned `Arc` stays valid (and
    /// internally consistent) however many batches are applied after —
    /// queries in flight against it are never invalidated.
    pub fn snapshot(&self) -> Arc<CatalogEpoch> {
        Arc::clone(&self.current)
    }

    /// Maintenance reports for every batch applied so far.
    pub fn reports(&self) -> &[MaintenanceReport] {
        &self.reports
    }

    /// Reports of batches published after `epoch` — what a session that
    /// last saw `epoch` must catch up on.
    pub fn reports_since(&self, epoch: u64) -> impl Iterator<Item = &MaintenanceReport> {
        self.reports.iter().filter(move |r| r.epoch > epoch)
    }

    /// Registers a view over the live document and publishes a new
    /// epoch. Eager views are materialized (against the live IDs),
    /// normalized and shard-partitioned immediately; deferred views are
    /// registered stale, excluded from epochs until [`Self::refresh`].
    /// Re-registering a name retires every piece of the old state first.
    ///
    /// # Panics
    ///
    /// If `view.scheme` differs from the store's scheme: extents store
    /// the live document's node identities, which exist in one scheme.
    pub fn add_view(&mut self, view: View, policy: RefreshPolicy) {
        assert_eq!(
            view.scheme,
            self.live.scheme(),
            "epoch store holds {:?} identities; register views in that scheme",
            self.live.scheme()
        );
        let name = view.name.clone();
        self.registered.retain(|r| r.view.name != name);
        self.extents.remove(&name);
        self.shards.remove(&name);
        let class = refresh_class(&view.pattern);
        let stale = match policy {
            RefreshPolicy::Eager => {
                let extent = materialize_with(&view.pattern, self.live.doc(), self.live.ids());
                if let Some(p) =
                    shard_extent_with(&extent, self.live.doc(), self.live.ids(), &self.summary)
                {
                    self.shards.insert(name.clone(), Arc::new(p));
                }
                self.extents.insert(name, Arc::new(extent));
                false
            }
            RefreshPolicy::Deferred => true,
        };
        self.registered.push(Registered {
            view,
            policy,
            class,
            stale,
        });
        self.publish();
    }

    /// Registers a batch of views at once, materializing and
    /// shard-partitioning eager extents in parallel on `pool` (one
    /// morsel per view, like [`crate::Catalog::add_sharded_batch`]),
    /// then publishes a **single** epoch covering the whole batch —
    /// [`Self::add_view`] in a loop would publish one epoch per view.
    /// This is the query service's ingest path: the same explicitly
    /// sized pool that executes queries does the materialization work,
    /// so one knob governs both kinds of parallelism.
    ///
    /// # Panics
    ///
    /// If any view's scheme differs from the store's scheme (see
    /// [`Self::add_view`]).
    pub fn add_views_on(
        &mut self,
        views: Vec<View>,
        policy: RefreshPolicy,
        pool: &smv_xml::par::WorkerPool,
    ) {
        for view in &views {
            assert_eq!(
                view.scheme,
                self.live.scheme(),
                "epoch store holds {:?} identities; register views in that scheme",
                self.live.scheme()
            );
        }
        let built: Vec<Option<(NestedRelation, Option<ShardPartition>)>> = match policy {
            RefreshPolicy::Eager => pool.pool_map(0, views.len(), |i| {
                let view = &views[i];
                let extent = materialize_with(&view.pattern, self.live.doc(), self.live.ids());
                let partition =
                    shard_extent_with(&extent, self.live.doc(), self.live.ids(), &self.summary);
                Some((extent, partition))
            }),
            RefreshPolicy::Deferred => views.iter().map(|_| None).collect(),
        };
        for (view, built) in views.into_iter().zip(built) {
            let name = view.name.clone();
            self.registered.retain(|r| r.view.name != name);
            self.extents.remove(&name);
            self.shards.remove(&name);
            let class = refresh_class(&view.pattern);
            let stale = match built {
                Some((extent, partition)) => {
                    if let Some(p) = partition {
                        self.shards.insert(name.clone(), Arc::new(p));
                    }
                    self.extents.insert(name, Arc::new(extent));
                    false
                }
                None => true,
            };
            self.registered.push(Registered {
                view,
                policy,
                class,
                stale,
            });
        }
        self.publish();
    }

    /// Applies one update batch: mutates the live document, maintains
    /// the summary and every eager extent, marks deferred views stale,
    /// and publishes the next epoch. Errors from [`LiveDoc::apply`]
    /// leave the store untouched (same epoch, same snapshot).
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<MaintenanceReport, LiveError> {
        let mut apply_span = smv_obs::SpanGuard::enter("epoch.apply");
        let token_before = self.summary.geometry_token();
        let t_ingest = Instant::now();
        let applied = self.live.apply(batch)?;
        let ingest_ns = t_ingest.elapsed().as_nanos() as u64;
        let t_maintain = Instant::now();

        // The cached classification of the pre-update document serves
        // both the deleted-subtree shard-pruning intervals (against the
        // pre-update summary geometry — what existing partitions were
        // stamped with) and the summary's own maintenance pass.
        let old_classes = std::mem::take(&mut self.classes);
        let deleted_intervals: Vec<(u32, u32)> = {
            let mut iv: Vec<(u32, u32)> = applied
                .deleted_roots
                .iter()
                .map(|&r| {
                    let p = old_classes[r.idx()];
                    (
                        self.summary.pre_rank(p),
                        self.summary.last_descendant_rank(p),
                    )
                })
                .collect();
            iv.sort_unstable();
            iv.dedup();
            iv
        };

        let (geometry_changed, new_classes) =
            self.summary
                .apply_update_with(&applied, self.live.doc(), &old_classes);
        self.classes = new_classes;
        let killed: HashSet<&StructId> = applied.deleted_ids.iter().collect();

        // Inserted-subtree intervals and the insertion spine, in the new
        // document. Fragment roots are grafted under distinct surviving
        // parents, so the intervals are pairwise disjoint.
        let doc = self.live.doc();
        let mut inserted_iv: Vec<(NodeId, NodeId)> = applied
            .inserted_roots
            .iter()
            .map(|&r| (r, doc.last_descendant(r)))
            .collect();
        inserted_iv.sort_unstable();
        let inserted = |y: NodeId| -> bool {
            let i = inserted_iv.partition_point(|&(s, _)| s <= y);
            i > 0 && y <= inserted_iv[i - 1].1
        };
        let mut spine: HashSet<NodeId> = HashSet::new();
        for &(r, _) in &inserted_iv {
            let mut cur = doc.parent(r);
            while let Some(p) = cur {
                if !spine.insert(p) {
                    break;
                }
                cur = doc.parent(p);
            }
        }

        let mut report = MaintenanceReport {
            epoch: 0, // stamped at publish
            refreshed: Vec::new(),
            deferred_stale: Vec::new(),
            rows_killed: 0,
            rows_added: 0,
            geometry_changed,
            ingest_ns,
            maintain_ns: 0, // stamped before return
            publish_ns: 0,  // stamped at publish
        };

        let mut new_extents: Vec<(String, NestedRelation, bool)> = Vec::new();
        for reg in &mut self.registered {
            let name = reg.view.name.clone();
            if reg.policy == RefreshPolicy::Deferred {
                if !reg.stale {
                    reg.stale = true;
                    self.extents.remove(&name);
                    self.shards.remove(&name);
                }
                report.deferred_stale.push(name);
                continue;
            }
            match reg.class {
                RefreshClass::Rebuild => {
                    let extent =
                        materialize_with(&reg.view.pattern, self.live.doc(), self.live.ids());
                    report.refreshed.push(name.clone());
                    new_extents.push((name, extent, true));
                }
                RefreshClass::Incremental => {
                    let old = self
                        .extents
                        .get(&name)
                        .cloned()
                        .expect("eager view has an extent");
                    let partition = self
                        .shards
                        .get(&name)
                        .filter(|p| p.token == token_before)
                        .cloned();
                    let retained =
                        filter_killed(&old, &killed, partition.as_deref(), &deleted_intervals);
                    let delta = if inserted_iv.is_empty() {
                        Vec::new()
                    } else {
                        delta_rows(
                            &reg.view.pattern,
                            self.live.doc(),
                            self.live.ids(),
                            &inserted_iv,
                            &inserted,
                            &spine,
                        )
                    };
                    if retained.is_none() && delta.is_empty() {
                        // untouched extent: keep the Arcs; only the rank
                        // geometry may need a re-stamp
                        if geometry_changed {
                            new_extents.push((name, (*old).clone(), false));
                        }
                        continue;
                    }
                    let survivors = retained.unwrap_or_else(|| old.rows.clone());
                    report.rows_killed += old.rows.len() - survivors.len();
                    let before = survivors.len();
                    // survivors are a subsequence of a normalized extent,
                    // so a sorted merge of the delta suffices — no
                    // whole-extent re-sort
                    let mut rel = NestedRelation::new(old.schema.clone(), survivors);
                    rel.union_sorted(delta);
                    report.rows_added += rel.len().saturating_sub(before);
                    report.refreshed.push(name.clone());
                    new_extents.push((name, rel, false));
                }
            }
        }
        // re-shard against the maintained classification and the live
        // document's ID index — O(extent rows), not O(doc), per view
        for (name, extent, _) in new_extents {
            let partition = shard_extent_classified(
                &extent,
                &self.classes,
                &|id| self.live.node_of(id),
                &self.summary,
            );
            match partition {
                Some(p) => {
                    self.shards.insert(name.clone(), Arc::new(p));
                }
                None => {
                    self.shards.remove(&name);
                }
            }
            self.extents.insert(name, Arc::new(extent));
        }

        report.maintain_ns = t_maintain.elapsed().as_nanos() as u64;
        let t_publish = Instant::now();
        self.publish();
        report.publish_ns = t_publish.elapsed().as_nanos() as u64;
        report.epoch = self.epoch;
        apply_span.field("epoch", report.epoch);
        apply_span.field("rows_killed", report.rows_killed as u64);
        apply_span.field("rows_added", report.rows_added as u64);
        drop(apply_span);
        smv_obs::observe("epoch.ingest_ns", report.ingest_ns);
        smv_obs::observe("epoch.maintain_ns", report.maintain_ns);
        smv_obs::observe("epoch.publish_ns", report.publish_ns);
        smv_obs::counter_add("epoch.batches_applied", 1);
        smv_obs::counter_add("epoch.rows_killed", report.rows_killed as u64);
        smv_obs::counter_add("epoch.rows_added", report.rows_added as u64);
        self.reports.push(report.clone());
        Ok(report)
    }

    /// Populates (or refreshes) a deferred view's extent from the live
    /// document — the `REFRESH MATERIALIZED VIEW` analog — and publishes
    /// a new epoch including it. Returns false for unknown names; eager
    /// views are already current and are left alone.
    pub fn refresh(&mut self, name: &str) -> bool {
        let Some(i) = self.registered.iter().position(|r| r.view.name == name) else {
            return false;
        };
        if !self.registered[i].stale {
            return true;
        }
        let extent = materialize_with(
            &self.registered[i].view.pattern,
            self.live.doc(),
            self.live.ids(),
        );
        if let Some(p) = shard_extent_with(&extent, self.live.doc(), self.live.ids(), &self.summary)
        {
            self.shards.insert(name.to_owned(), Arc::new(p));
        } else {
            self.shards.remove(name);
        }
        self.extents.insert(name.to_owned(), Arc::new(extent));
        self.registered[i].stale = false;
        self.publish();
        true
    }

    /// The from-scratch oracle: re-materializes every non-stale view
    /// over the current live document (same maintained IDs — node
    /// identity is data, not an artifact of maintenance) and shards
    /// against a freshly built summary. Delta maintenance is correct iff
    /// the published epoch is byte-identical to this.
    pub fn rebuild_from_scratch(&self) -> CatalogEpoch {
        let fresh = Summary::of(self.live.doc());
        let mut extents = HashMap::new();
        let mut shards = HashMap::new();
        let mut views = Vec::new();
        for reg in self.registered.iter().filter(|r| !r.stale) {
            let extent = materialize_with(&reg.view.pattern, self.live.doc(), self.live.ids());
            if let Some(p) = shard_extent_with(&extent, self.live.doc(), self.live.ids(), &fresh) {
                shards.insert(reg.view.name.clone(), Arc::new(p));
            }
            extents.insert(reg.view.name.clone(), Arc::new(extent));
            views.push(reg.view.clone());
        }
        CatalogEpoch {
            epoch: self.epoch,
            views,
            extents,
            shards,
            summary: fresh,
        }
    }

    fn publish(&mut self) {
        self.epoch += 1;
        let views: Vec<View> = self
            .registered
            .iter()
            .filter(|r| !r.stale)
            .map(|r| r.view.clone())
            .collect();
        self.current = Arc::new(CatalogEpoch {
            epoch: self.epoch,
            views,
            extents: self.extents.clone(),
            shards: self.shards.clone(),
            summary: self.summary.snapshot(),
        });
    }
}

/// Indices of top-level ID columns in a schema.
fn id_cols(rel: &NestedRelation) -> Vec<usize> {
    rel.schema
        .cols
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind == ColKind::Atom(AttrKind::Id))
        .map(|(i, _)| i)
        .collect()
}

/// Removes rows whose stored IDs intersect the kill set. Returns `None`
/// when no row dies (caller keeps the old extent untouched). With a
/// single ID column and a token-valid shard partition, shards whose
/// summary-path interval misses every deleted subtree's interval are
/// retained without inspection.
fn filter_killed(
    old: &NestedRelation,
    killed: &HashSet<&StructId>,
    partition: Option<&ShardPartition>,
    deleted_intervals: &[(u32, u32)],
) -> Option<Vec<Row>> {
    if killed.is_empty() {
        return None;
    }
    let cols = id_cols(old);
    let row_dies = |row: &Row| {
        cols.iter().any(|&c| match &row.cells[c] {
            Cell::Id(id) => killed.contains(id),
            _ => false,
        })
    };
    let must_check: Option<Vec<bool>> = match (partition, deleted_intervals) {
        (Some(p), iv) if cols.len() == 1 && p.col == cols[0] => {
            let mut check = vec![false; old.rows.len()];
            for sh in &p.shards {
                if iv.iter().any(|&(s, e)| s <= sh.pre && sh.pre <= e) {
                    for &r in &sh.rows {
                        check[r] = true;
                    }
                }
            }
            for &r in &p.unclassified {
                check[r] = true;
            }
            Some(check)
        }
        _ => None,
    };
    let survives = |i: usize, row: &Row| match &must_check {
        Some(check) => !check[i] || !row_dies(row),
        None => !row_dies(row),
    };
    if old.rows.iter().enumerate().all(|(i, row)| survives(i, row)) {
        return None;
    }
    Some(
        old.rows
            .iter()
            .enumerate()
            .filter(|(i, row)| survives(*i, row))
            .map(|(_, row)| row.clone())
            .collect(),
    )
}

/// The added embeddings of a monotone pattern: for each pattern node in
/// turn, re-evaluates with that node pinned to inserted subtrees, its
/// pattern ancestors confined to the insertion spine or inserted
/// subtrees, and everything else unrestricted. Every new-touching
/// embedding binds *some* pattern node to an inserted node and its
/// pattern ancestors necessarily to spine-or-inserted nodes, so the
/// union over targets is exactly the delta (duplicates dissolve in the
/// set-semantic union with the surviving extent).
fn delta_rows(
    p: &Pattern,
    doc: &Document,
    ids: &IdAssignment,
    inserted_iv: &[(NodeId, NodeId)],
    inserted: &dyn Fn(NodeId) -> bool,
    spine: &HashSet<NodeId>,
) -> Vec<Row> {
    if let Some(chain) = chain_of(p) {
        return delta_rows_chain(p, &chain, doc, ids, inserted_iv, inserted);
    }
    let matcher = Matcher::new(p, doc);
    let mut rows = Vec::new();
    for target in p.iter() {
        let mut anc = vec![false; p.len()];
        let mut cur = p.parent(target);
        while let Some(a) = cur {
            anc[a.idx()] = true;
            cur = p.parent(a);
        }
        let allowed = |m: PNodeId, y: NodeId| -> bool {
            if m == target {
                inserted(y)
            } else if anc[m.idx()] {
                spine.contains(&y) || inserted(y)
            } else {
                true
            }
        };
        rows.extend(eval_embeddings(p, doc, ids, &matcher, &allowed));
    }
    rows
}

/// The pattern's nodes in root-to-leaf order when every node has at most
/// one child (a *chain*); `None` for branching shapes.
fn chain_of(p: &Pattern) -> Option<Vec<PNodeId>> {
    let mut chain = vec![p.root()];
    loop {
        match p.children(*chain.last().unwrap()) {
            [] => return Some(chain),
            &[c] => chain.push(c),
            _ => return None,
        }
    }
}

/// May pattern node `m` be mapped onto document node `y`? The same label
/// + value-predicate admission [`Matcher::new`] applies per candidate.
fn admits_node(p: &Pattern, m: PNodeId, doc: &Document, y: NodeId) -> bool {
    let nd = p.node(m);
    nd.label.is_none_or(|l| doc.label(y) == l) && doc.admits(y, &nd.predicate)
}

/// [`delta_rows`] for chain patterns, without building a [`Matcher`]
/// (whose candidate pools are O(|p|·|doc|) however small the batch).
///
/// A chain's bindings lie on one root-to-leaf document path, and along
/// that path the inserted bindings form a suffix (the inserted node set
/// is descendant-closed). Partitioning the new embeddings by their
/// **pivot** — the first chain position bound to an inserted node —
/// enumerates each exactly once: walk the inserted subtrees, and for
/// every (inserted node `y`, admitting position `k`) pair extend upward
/// through non-inserted nodes only (forcing `k` to be first) and
/// downward through `y`'s descendants (inserted by closure). The pivot
/// is never position 0: the pattern root binds only the document root,
/// which predates every batch.
fn delta_rows_chain(
    p: &Pattern,
    chain: &[PNodeId],
    doc: &Document,
    ids: &IdAssignment,
    inserted_iv: &[(NodeId, NodeId)],
    inserted: &dyn Fn(NodeId) -> bool,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &(start, end) in inserted_iv {
        for y in (start.0..=end.0).map(NodeId) {
            for k in 1..chain.len() {
                if !admits_node(p, chain[k], doc, y) {
                    continue;
                }
                let ups = bind_up(p, chain, doc, k, y, inserted);
                if ups.is_empty() {
                    continue;
                }
                let downs = bind_down(p, chain, doc, k, y);
                for up in &ups {
                    for down in &downs {
                        let bound = up.iter().chain(Some(&y)).chain(down.iter());
                        let mut cells = Vec::new();
                        for (i, &b) in bound.enumerate() {
                            cells.extend(own_cells(p, chain[i], doc, ids, b));
                        }
                        rows.push(Row::new(cells));
                    }
                }
            }
        }
    }
    rows
}

/// Assignments for `chain[..k]` (root→leaf order) compatible with
/// position `k` bound to `below`: each step follows `chain[i]`'s axis
/// upward, admitting only non-inserted nodes, and pins position 0 to the
/// document root.
fn bind_up(
    p: &Pattern,
    chain: &[PNodeId],
    doc: &Document,
    k: usize,
    below: NodeId,
    inserted: &dyn Fn(NodeId) -> bool,
) -> Vec<Vec<NodeId>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut extend_with = |x: NodeId| {
        if inserted(x) || !admits_node(p, chain[k - 1], doc, x) || (k - 1 == 0 && x != doc.root()) {
            return;
        }
        for mut up in bind_up(p, chain, doc, k - 1, x, inserted) {
            up.push(x);
            out.push(up);
        }
    };
    match p.node(chain[k]).axis {
        Axis::Child => {
            if let Some(x) = doc.parent(below) {
                extend_with(x);
            }
        }
        Axis::Descendant => {
            let mut cur = doc.parent(below);
            while let Some(x) = cur {
                extend_with(x);
                cur = doc.parent(x);
            }
        }
    }
    out
}

/// Assignments for `chain[k + 1..]` under position `k` bound to `above`:
/// each step follows the next position's axis downward (children, or the
/// pre-order descendant interval).
fn bind_down(
    p: &Pattern,
    chain: &[PNodeId],
    doc: &Document,
    k: usize,
    above: NodeId,
) -> Vec<Vec<NodeId>> {
    if k + 1 == chain.len() {
        return vec![Vec::new()];
    }
    let m = chain[k + 1];
    let mut out = Vec::new();
    let mut extend_with = |y: NodeId| {
        if !admits_node(p, m, doc, y) {
            return;
        }
        for down in bind_down(p, chain, doc, k + 1, y) {
            let mut v = Vec::with_capacity(1 + down.len());
            v.push(y);
            v.extend(down);
            out.push(v);
        }
    };
    match p.node(m).axis {
        Axis::Child => {
            for &y in doc.children(above) {
                extend_with(y);
            }
        }
        Axis::Descendant => {
            for y in (above.0 + 1..=doc.last_descendant(above).0).map(NodeId) {
                extend_with(y);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;

    fn sid(ec: &EpochCatalog, label: &str, nth: usize) -> StructId {
        let doc = ec.live().doc();
        let n = doc
            .iter()
            .filter(|&n| doc.label(n).as_str() == label)
            .nth(nth)
            .expect("labeled node");
        ec.live().ids().id(n).clone()
    }

    fn assert_epoch_matches_oracle(ec: &EpochCatalog) {
        let snap = ec.snapshot();
        let oracle = ec.rebuild_from_scratch();
        assert_eq!(
            ViewStore::views(&*snap).len(),
            ViewStore::views(&oracle).len()
        );
        for v in ViewStore::views(&oracle) {
            let got = snap.extent(&v.name).expect("maintained extent");
            let want = oracle.extent(&v.name).expect("oracle extent");
            assert_eq!(got.schema, want.schema, "schema of {}", v.name);
            assert_eq!(got.rows, want.rows, "rows of {}", v.name);
            let (gp, wp) = (
                snap.shard_partition(&v.name),
                oracle.shard_partition(&v.name),
            );
            assert_eq!(gp.is_some(), wp.is_some(), "partitioned-ness of {}", v.name);
            if let (Some(gp), Some(wp)) = (gp, wp) {
                // same row grouping per summary path (rank geometries may
                // differ: the maintained summary keeps dead paths)
                let (gs, ws): (Vec<_>, Vec<_>) = (
                    gp.shards.iter().map(|s| &s.rows).collect(),
                    wp.shards.iter().map(|s| &s.rows).collect(),
                );
                assert_eq!(gs, ws, "shard rows of {}", v.name);
                assert_eq!(gp.unclassified, wp.unclassified);
            }
        }
    }

    #[test]
    fn classifier_separates_monotone_id_leaf_patterns() {
        for (pat, class) in [
            ("a(//b{id,v})", RefreshClass::Incremental),
            ("a(/b{id}(/c{id,v}))", RefreshClass::Incremental),
            ("a(?/b{id})", RefreshClass::Rebuild), // optional edge
            ("a(%/b{id})", RefreshClass::Rebuild), // nested edge
            ("a(/b{id,c})", RefreshClass::Rebuild), // content attr
            ("a(/b{v})", RefreshClass::Rebuild),   // leaf without id
            ("a(/b{id}(/c{v}))", RefreshClass::Rebuild), // deep leaf without id
        ] {
            assert_eq!(refresh_class(&parse_pattern(pat).unwrap()), class, "{pat}");
        }
    }

    #[test]
    fn delta_maintenance_equals_rebuild_across_schemes() {
        for scheme in [IdScheme::OrdPath, IdScheme::Dewey, IdScheme::Sequential] {
            let doc = Document::from_parens(r#"r(a(b="1" b="2" c(b="3")) a(b="4") x(y="9"))"#);
            let mut ec = EpochCatalog::new(doc, scheme);
            ec.add_view(
                View::new("vb", parse_pattern("r(//b{id,v})").unwrap(), scheme),
                RefreshPolicy::Eager,
            );
            ec.add_view(
                View::new(
                    "vab",
                    parse_pattern("r(/a{id}(//b{id,v}))").unwrap(),
                    scheme,
                ),
                RefreshPolicy::Eager,
            );
            // a Rebuild-class rider: optional edge
            ec.add_view(
                View::new("vy", parse_pattern("r(/x{id}(?/y{id,v}))").unwrap(), scheme),
                RefreshPolicy::Eager,
            );
            assert_epoch_matches_oracle(&ec);

            // batch 1: delete a subtree holding b's, insert fresh b's
            let mut batch = UpdateBatch::new();
            batch.delete(sid(&ec, "c", 0));
            batch.insert(sid(&ec, "a", 1), Document::from_parens(r#"b="5""#));
            batch.insert(
                sid(&ec, "r", 0),
                Document::from_parens(r#"a(b="6" c(b="7"))"#),
            );
            let rep = ec.apply(&batch).unwrap();
            assert!(rep.rows_killed > 0 && rep.rows_added > 0);
            assert!(rep.refreshed.iter().any(|n| n == "vb"));
            assert_epoch_matches_oracle(&ec);

            // batch 2: delete one of the freshly inserted subtrees
            let mut batch = UpdateBatch::new();
            batch.delete(sid(&ec, "a", 2));
            ec.apply(&batch).unwrap();
            assert_epoch_matches_oracle(&ec);

            // batch 3: pure insert under a node that survived two batches
            let mut batch = UpdateBatch::new();
            batch.insert(sid(&ec, "x", 0), Document::from_parens(r#"y="10""#));
            ec.apply(&batch).unwrap();
            assert_epoch_matches_oracle(&ec);
        }
    }

    #[test]
    fn bulk_registration_matches_sequential_and_publishes_once() {
        let pool = smv_xml::par::WorkerPool::new(3);
        let src = r#"r(a(b="1" b="2" c(b="3")) a(b="4") x(y="9"))"#;
        let views = || {
            vec![
                View::new(
                    "vb",
                    parse_pattern("r(//b{id,v})").unwrap(),
                    IdScheme::OrdPath,
                ),
                View::new(
                    "vab",
                    parse_pattern("r(/a{id}(//b{id,v}))").unwrap(),
                    IdScheme::OrdPath,
                ),
                View::new(
                    "vy",
                    parse_pattern("r(/x{id}(?/y{id,v}))").unwrap(),
                    IdScheme::OrdPath,
                ),
            ]
        };
        let mut bulk = EpochCatalog::new(Document::from_parens(src), IdScheme::OrdPath);
        bulk.add_views_on(views(), RefreshPolicy::Eager, &pool);
        assert_eq!(bulk.epoch(), 1, "one epoch for the whole batch");
        let mut seq = EpochCatalog::new(Document::from_parens(src), IdScheme::OrdPath);
        for v in views() {
            seq.add_view(v, RefreshPolicy::Eager);
        }
        assert_eq!(seq.epoch(), 3);
        let (b, s) = (bulk.snapshot(), seq.snapshot());
        assert_eq!(ViewStore::views(&*b).len(), ViewStore::views(&*s).len());
        for v in ViewStore::views(&*s) {
            assert_eq!(
                b.extent(&v.name).unwrap().rows,
                s.extent(&v.name).unwrap().rows,
                "bulk extent of {}",
                v.name
            );
            assert_eq!(
                b.shard_partition(&v.name).is_some(),
                s.shard_partition(&v.name).is_some()
            );
        }
        // maintenance still exact after bulk registration
        let mut batch = UpdateBatch::new();
        batch.delete(sid(&bulk, "c", 0));
        batch.insert(sid(&bulk, "r", 0), Document::from_parens(r#"a(b="6")"#));
        bulk.apply(&batch).unwrap();
        assert_epoch_matches_oracle(&bulk);
        // deferred bulk registration: stale, excluded from the epoch
        let mut def = EpochCatalog::new(Document::from_parens(src), IdScheme::OrdPath);
        def.add_views_on(views(), RefreshPolicy::Deferred, &pool);
        assert!(def.snapshot().extent("vb").is_none());
        assert!(def.refresh("vb"));
        assert!(def.snapshot().extent("vb").is_some());
    }

    #[test]
    fn old_epoch_snapshots_still_answer_after_publishes() {
        let doc = Document::from_parens(r#"r(a(b="1") a(b="2"))"#);
        let mut ec = EpochCatalog::new(doc, IdScheme::OrdPath);
        ec.add_view(
            View::new(
                "vb",
                parse_pattern("r(//b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            RefreshPolicy::Eager,
        );
        let old = ec.snapshot();
        let old_rows = old.extent("vb").unwrap().rows.clone();
        assert_eq!(old_rows.len(), 2);
        // two newer epochs publish: a delete, then an insert
        let mut batch = UpdateBatch::new();
        batch.delete(sid(&ec, "a", 0));
        ec.apply(&batch).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(sid(&ec, "r", 0), Document::from_parens(r#"a(b="3" b="4")"#));
        ec.apply(&batch).unwrap();
        assert!(ec.epoch() > old.epoch() + 1);
        // the old snapshot is untouched: same rows, same partition
        assert_eq!(old.extent("vb").unwrap().rows, old_rows);
        assert_eq!(ec.snapshot().extent("vb").unwrap().len(), 3);
        assert_eq!(
            old.summary()
                .count(old.summary().node_by_path("/r/a/b").unwrap()),
            2,
            "epoch summary frozen"
        );
    }

    #[test]
    fn deferred_views_join_epochs_only_after_refresh() {
        let doc = Document::from_parens(r#"r(a(b="1"))"#);
        let mut ec = EpochCatalog::new(doc, IdScheme::OrdPath);
        ec.add_view(
            View::new(
                "vb",
                parse_pattern("r(//b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            RefreshPolicy::Deferred,
        );
        let snap = ec.snapshot();
        assert!(snap.extent("vb").is_none(), "WITH NO DATA: not scannable");
        assert!(ViewStore::views(&*snap).is_empty());
        assert!(ec.refresh("vb"));
        let snap = ec.snapshot();
        assert_eq!(snap.extent("vb").unwrap().len(), 1);
        // next batch marks it stale again and drops it from the epoch
        let mut batch = UpdateBatch::new();
        batch.insert(sid(&ec, "a", 0), Document::from_parens(r#"b="2""#));
        let rep = ec.apply(&batch).unwrap();
        assert_eq!(rep.deferred_stale, vec!["vb".to_string()]);
        assert!(ec.snapshot().extent("vb").is_none());
        assert!(ec.refresh("vb"));
        assert_eq!(ec.snapshot().extent("vb").unwrap().len(), 2);
        assert!(!ec.refresh("nope"), "unknown names report false");
    }

    #[test]
    fn failed_batches_leave_the_store_untouched() {
        let doc = Document::from_parens(r#"r(a(b="1"))"#);
        let mut ec = EpochCatalog::new(doc, IdScheme::OrdPath);
        ec.add_view(
            View::new(
                "vb",
                parse_pattern("r(//b{id,v})").unwrap(),
                IdScheme::OrdPath,
            ),
            RefreshPolicy::Eager,
        );
        let before = ec.epoch();
        let root = ec.live().ids().id(ec.live().doc().root()).clone();
        let mut batch = UpdateBatch::new();
        batch.delete(root);
        assert_eq!(ec.apply(&batch).unwrap_err(), LiveError::DeleteRoot);
        assert_eq!(ec.epoch(), before);
        assert_eq!(ec.snapshot().extent("vb").unwrap().len(), 1);
        assert!(ec.reports().is_empty());
    }
}
