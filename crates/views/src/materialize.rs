//! Pattern → nested relation evaluation.
//!
//! The semantics of attribute patterns (§4.4) and nested patterns (§4.5):
//! a tuple per embedding, concatenating `tup(n_i, n^t_i)` for each return
//! node, with data under a nested edge grouped into one table per outer
//! tuple and optional subtrees contributing `⊥` when unmatched.

use smv_algebra::{AttrKind, Cell, ColKind, Column, NestedRelation, Row, Schema};
use smv_pattern::{Axis, Matcher, PNodeId, Pattern};
use smv_xml::{serialize_subtree, Document, IdAssignment, IdScheme, NodeId, Symbol};

/// The relational schema a pattern produces (shared convention between
/// materialization and the rewriting engine).
///
/// Columns appear in pattern-node (pre-order) id order; a node's own
/// attribute columns are ordered `ID`, `L`, `V`, `C`; a nested edge
/// produces a single table-valued column holding its subtree's schema.
pub fn schema_of(p: &Pattern) -> Schema {
    fn attr_cols(p: &Pattern, n: PNodeId, out: &mut Vec<Column>) {
        let nd = p.node(n);
        let base = match nd.label {
            Some(l) => format!("{}#{}", l.as_str(), n.0),
            None => format!("*#{}", n.0),
        };
        let mut push = |kind: AttrKind| {
            out.push(Column {
                name: Symbol::intern(&format!("{base}.{kind}")),
                kind: ColKind::Atom(kind),
            })
        };
        if nd.attrs.id {
            push(AttrKind::Id);
        }
        if nd.attrs.label {
            push(AttrKind::Label);
        }
        if nd.attrs.value {
            push(AttrKind::Value);
        }
        if nd.attrs.content {
            push(AttrKind::Content);
        }
    }
    fn rec(p: &Pattern, n: PNodeId, out: &mut Vec<Column>) {
        attr_cols(p, n, out);
        for &c in p.children(n) {
            if p.node(c).nested {
                let mut inner = Vec::new();
                rec(p, c, &mut inner);
                out.push(Column {
                    name: Symbol::intern(&format!("A#{}", c.0)),
                    kind: ColKind::Nested(Schema { cols: inner }),
                });
            } else {
                rec(p, c, out);
            }
        }
    }
    let mut cols = Vec::new();
    rec(p, p.root(), &mut cols);
    Schema { cols }
}

/// Number of (top-level) columns the subtree rooted at `n` contributes.
fn width(p: &Pattern, n: PNodeId) -> usize {
    let mut w = p.node(n).attrs.count();
    for &c in p.children(n) {
        if p.node(c).nested {
            w += 1;
        } else {
            w += width(p, c);
        }
    }
    w
}

/// Evaluates `p(doc, f_ID)` into a nested relation.
///
/// ```
/// use smv_pattern::parse_pattern;
/// use smv_views::materialize;
/// use smv_xml::{Document, IdScheme};
///
/// let doc = Document::from_parens(r#"site(item(name="pen") item(name="ink"))"#);
/// let pattern = parse_pattern("site(//item{id}(/name{v}))").unwrap();
/// let extent = materialize(&pattern, &doc, IdScheme::OrdPath);
/// assert_eq!(extent.len(), 2, "one tuple per embedding");
/// assert_eq!(extent.schema.len(), 2, "item.ID and name.V columns");
/// ```
pub fn materialize(p: &Pattern, doc: &Document, scheme: IdScheme) -> NestedRelation {
    let ids = IdAssignment::assign(doc, scheme);
    materialize_with(p, doc, &ids)
}

/// [`materialize`] against an explicit ID assignment instead of a fresh
/// positional one — the form live stores use: a maintained document's
/// IDs are carried across updates ([`smv_xml::LiveDoc`]), so re-assigning
/// them positionally would sever extent rows from their node identity.
pub fn materialize_with(p: &Pattern, doc: &Document, ids: &IdAssignment) -> NestedRelation {
    let matcher = Matcher::new(p, doc);
    let mut rel = NestedRelation::new(
        schema_of(p),
        eval_embeddings(p, doc, ids, &matcher, &|_, _| true),
    );
    rel.normalize();
    rel
}

/// Raw (un-normalized) embedding rows of `p` over `doc`, with each
/// pattern node's document-node candidates additionally filtered by
/// `allowed`. With an always-true filter this is exactly the row set
/// [`materialize_with`] normalizes; restricted filters are the delta
/// evaluator's tool (smv-views epoch maintenance): pinning one pattern
/// node to freshly inserted nodes (and its pattern-ancestors to the
/// insertion spine) yields precisely the embeddings an update batch
/// added.
pub(crate) fn eval_embeddings(
    p: &Pattern,
    doc: &Document,
    ids: &IdAssignment,
    matcher: &Matcher<'_, '_, Document>,
    allowed: &dyn Fn(PNodeId, NodeId) -> bool,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &x in matcher.candidates(p.root()) {
        if allowed(p.root(), x) {
            rows.extend(eval_node(p, p.root(), doc, ids, matcher, x, allowed));
        }
    }
    rows
}

/// The attribute cells pattern node `n` contributes when bound to
/// document node `x`, in schema order (`ID`, `L`, `V`, `C`).
pub(crate) fn own_cells(
    p: &Pattern,
    n: PNodeId,
    doc: &Document,
    ids: &IdAssignment,
    x: NodeId,
) -> Vec<Cell> {
    let nd = p.node(n);
    let mut own = Vec::new();
    if nd.attrs.id {
        own.push(Cell::Id(ids.id(x).clone()));
    }
    if nd.attrs.label {
        own.push(Cell::Label(doc.label(x)));
    }
    if nd.attrs.value {
        own.push(
            doc.value(x)
                .map(|v| Cell::Atom(v.clone()))
                .unwrap_or(Cell::Null),
        );
    }
    if nd.attrs.content {
        own.push(Cell::Content(serialize_subtree(doc, x)));
    }
    own
}

/// Rows (fragments) for the subtree rooted at pattern node `n` bound to
/// document node `x`.
#[allow(clippy::too_many_arguments)]
fn eval_node(
    p: &Pattern,
    n: PNodeId,
    doc: &Document,
    ids: &IdAssignment,
    matcher: &Matcher<'_, '_, Document>,
    x: NodeId,
    allowed: &dyn Fn(PNodeId, NodeId) -> bool,
) -> Vec<Row> {
    let mut fragments: Vec<Vec<Cell>> = vec![own_cells(p, n, doc, ids, x)];
    for &c in p.children(n) {
        let ys: Vec<NodeId> = matcher
            .candidates(c)
            .iter()
            .copied()
            .filter(|&y| {
                allowed(c, y)
                    && match p.node(c).axis {
                        Axis::Child => doc.is_parent(x, y),
                        Axis::Descendant => doc.is_ancestor(x, y),
                    }
            })
            .collect();
        let mut sub_rows: Vec<Row> = Vec::new();
        for y in &ys {
            sub_rows.extend(eval_node(p, c, doc, ids, matcher, *y, allowed));
        }
        if p.node(c).nested {
            // one table-valued cell per outer fragment (§4.5); empty table
            // when nothing matched (Fig. 12)
            if sub_rows.is_empty() && !p.node(c).optional && !ys.is_empty() {
                // matched ys but all failed deeper: kills this binding
                return Vec::new();
            }
            if sub_rows.is_empty() && !p.node(c).optional {
                return Vec::new();
            }
            let mut inner = Vec::new();
            schema_cols(p, c, &mut inner);
            let table = NestedRelation::new(Schema { cols: inner }, sub_rows);
            for f in &mut fragments {
                f.push(Cell::Table(table.clone()));
            }
        } else if sub_rows.is_empty() {
            if p.node(c).optional {
                // Def 4.1: ⊥ for the whole optional subtree
                let nulls = vec![Cell::Null; width(p, c)];
                for f in &mut fragments {
                    f.extend(nulls.iter().cloned());
                }
            } else {
                return Vec::new(); // required subtree failed
            }
        } else {
            // cartesian combination with sibling fragments
            let mut next = Vec::with_capacity(fragments.len() * sub_rows.len());
            for f in &fragments {
                for sr in &sub_rows {
                    let mut g = f.clone();
                    g.extend(sr.cells.iter().cloned());
                    next.push(g);
                }
            }
            fragments = next;
        }
    }
    fragments.into_iter().map(Row::new).collect()
}

fn schema_cols(p: &Pattern, n: PNodeId, out: &mut Vec<Column>) {
    let sub = p.extract(n);
    // extract() renumbers nodes but preserves shape; recompute names from
    // the original ids to stay consistent with schema_of
    let _ = sub;
    let full = schema_of_sub(p, n);
    out.extend(full.cols);
}

/// schema_of restricted to the subtree rooted at `n` (names keep the
/// original node ids).
fn schema_of_sub(p: &Pattern, n: PNodeId) -> Schema {
    fn rec(p: &Pattern, n: PNodeId, out: &mut Vec<Column>) {
        let nd = p.node(n);
        let base = match nd.label {
            Some(l) => format!("{}#{}", l.as_str(), n.0),
            None => format!("*#{}", n.0),
        };
        let mut push = |kind: AttrKind| {
            out.push(Column {
                name: Symbol::intern(&format!("{base}.{kind}")),
                kind: ColKind::Atom(kind),
            })
        };
        if nd.attrs.id {
            push(AttrKind::Id);
        }
        if nd.attrs.label {
            push(AttrKind::Label);
        }
        if nd.attrs.value {
            push(AttrKind::Value);
        }
        if nd.attrs.content {
            push(AttrKind::Content);
        }
        for &c in p.children(n) {
            if p.node(c).nested {
                let mut inner = Vec::new();
                rec(p, c, &mut inner);
                out.push(Column {
                    name: Symbol::intern(&format!("A#{}", c.0)),
                    kind: ColKind::Nested(Schema { cols: inner }),
                });
            } else {
                rec(p, c, out);
            }
        }
    }
    let mut cols = Vec::new();
    rec(p, n, &mut cols);
    Schema { cols }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_pattern::parse_pattern;
    use smv_xml::Value;

    #[test]
    fn schema_layout_follows_preorder() {
        let p = parse_pattern("a{id}(//b{id,v}, /c{l}(?%/d{c}))").unwrap();
        let s = schema_of(&p);
        let names: Vec<&str> = s.cols.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a#0.ID", "b#1.ID", "b#1.V", "c#2.L", "A#3"]);
        assert!(matches!(s.cols[4].kind, ColKind::Nested(_)));
    }

    #[test]
    fn flat_materialization_matches_fig11_style() {
        // Figure 11's p1: a(/c(/b{l}, //*{id,v}(/e{v,c})))-ish, simplified
        let doc = Document::from_parens(r#"a(c(b d(e="3")) c)"#);
        let p = parse_pattern("a(/c(/b{l}, //d{id}(/e{v,c})))").unwrap();
        let rel = materialize(&p, &doc, IdScheme::OrdPath);
        assert_eq!(rel.len(), 1);
        let row = &rel.rows[0];
        assert_eq!(row.cells[0], Cell::Label(smv_xml::Label::intern("b")));
        assert!(matches!(row.cells[1], Cell::Id(_)));
        assert_eq!(row.cells[2], Cell::Atom(Value::int(3)));
        assert_eq!(row.cells[3], Cell::Content("<e>3</e>".into()));
    }

    #[test]
    fn optional_yields_nulls() {
        let doc = Document::from_parens("a(c(b) c)");
        let p = parse_pattern("a(/c{id}(?/b{id}))").unwrap();
        let rel = materialize(&p, &doc, IdScheme::Dewey);
        assert_eq!(rel.len(), 2);
        let nulls: usize = rel.rows.iter().filter(|r| r.cells[1].is_null()).count();
        assert_eq!(nulls, 1, "the childless c yields ⊥: {rel}");
    }

    #[test]
    fn nested_edge_groups_bindings() {
        // the paper's V1 shape: items group their listitem contents
        let doc = Document::from_parens(r#"a(item(name="p1" li="x" li="y") item(name="p2"))"#);
        let p = parse_pattern("a(/item{id}(%?/li{v}))").unwrap();
        let rel = materialize(&p, &doc, IdScheme::OrdPath);
        assert_eq!(rel.len(), 2);
        // first item: table with 2 rows; second: empty table
        let tables: Vec<usize> = rel
            .rows
            .iter()
            .map(|r| match &r.cells[1] {
                Cell::Table(t) => t.len(),
                other => panic!("expected table, got {other}"),
            })
            .collect();
        let mut sorted = tables;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2]);
    }

    #[test]
    fn nested_inside_nested() {
        let doc = Document::from_parens(r#"r(x(y(z="1") y(z="2")) x)"#);
        let p = parse_pattern("r(%/x{id}(%/y{id}(/z{v})))").unwrap();
        let rel = materialize(&p, &doc, IdScheme::OrdPath);
        assert_eq!(rel.len(), 1, "one row for the root binding");
        let Cell::Table(outer) = &rel.rows[0].cells[0] else {
            panic!("outer nested column expected");
        };
        // the second x has no y child and the nested y edge is required,
        // so only the first x survives — with a 2-row inner table
        assert_eq!(outer.len(), 1);
        let Cell::Table(inner) = &outer.rows[0].cells[1] else {
            panic!("inner nested column expected");
        };
        assert_eq!(inner.len(), 2);
    }

    #[test]
    fn required_branch_failure_removes_binding() {
        let doc = Document::from_parens("a(item(name) item)");
        let p = parse_pattern("a(/item{id}(/name{l}))").unwrap();
        let rel = materialize(&p, &doc, IdScheme::OrdPath);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn flat_materialization_agrees_with_tuple_evaluation() {
        use smv_pattern::evaluate;
        let doc = Document::from_parens(r#"a(b(c="1") b(c="2") b)"#);
        let p = parse_pattern("a(/b{id}(?/c{id}))").unwrap();
        let rel = materialize(&p, &doc, IdScheme::Sequential);
        let tuples = evaluate(&p, &doc);
        assert_eq!(rel.len(), tuples.len());
        // sequential ids are the node pre-order indices, so compare directly
        let mut from_rel: Vec<Vec<Option<u32>>> = rel
            .rows
            .iter()
            .map(|r| {
                r.cells
                    .iter()
                    .map(|c| match c {
                        Cell::Id(smv_xml::StructId::Seq(s)) => Some(*s as u32),
                        Cell::Null => None,
                        other => panic!("unexpected cell {other}"),
                    })
                    .collect()
            })
            .collect();
        let mut from_eval: Vec<Vec<Option<u32>>> = tuples
            .into_iter()
            .map(|t| t.into_iter().map(|o| o.map(|n| n.0)).collect())
            .collect();
        from_rel.sort();
        from_eval.sort();
        assert_eq!(from_rel, from_eval);
    }
}
