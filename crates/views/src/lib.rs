//! # smv-views — materialized view definitions, storage and evaluation
//!
//! A view is an extended tree pattern plus an ID scheme (paper §1: "XML
//! Access Modules" \[3\]). Materializing a view over a document produces the
//! nested table of Figures 1(c), 11 and 12: one column per (return node,
//! stored attribute), table-valued columns for nested edges, `⊥` for
//! optional subtrees that did not bind.
//!
//! The [`Catalog`] holds view definitions and extents and serves as the
//! `ViewProvider` plans execute against. The [`epoch`] module is its
//! live-store counterpart: an [`EpochCatalog`] maintains extents under
//! document update batches and publishes immutable [`CatalogEpoch`]
//! snapshots for queries.

#![deny(clippy::print_stdout, clippy::print_stderr)]
pub mod cards;
pub mod catalog;
pub mod epoch;
pub mod materialize;

pub use cards::{col_cards, estimate_extent_bytes, estimate_extent_rows, CatalogCards, DefCards};
pub use catalog::{Catalog, View, ViewStore};
pub use epoch::{
    refresh_class, CatalogEpoch, EpochCatalog, MaintenanceReport, RefreshClass, RefreshPolicy,
};
pub use materialize::{materialize, materialize_with, schema_of};
