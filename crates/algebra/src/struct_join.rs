//! Structural joins over structural identifiers.
//!
//! The paper's plans use `⋈_≺` (parent) and `⋈_≺≺` (ancestor) joins, and
//! cite the stack-tree algorithm of Al-Khalifa et al. [1] as the
//! primitive. We implement the stack-based merge over inputs sorted in
//! document order, plus a naive nested-loop variant used as a correctness
//! oracle and as the baseline in the ablation benchmark.
//!
//! Both require IDs of a *structural* scheme (ORDPATH / Dewey); the
//! sequential scheme cannot answer ancestor tests and is rejected.

use smv_xml::StructId;
use std::cmp::Ordering;

/// Structural relationship tested by the join.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StructRel {
    /// Left is the parent of right (`≺`).
    Parent,
    /// Left is a proper ancestor of right (`≺≺`).
    Ancestor,
}

/// Output pairs `(left index, right index)` such that `left[l] rel
/// right[r]`. Naive O(n·m) loop; the oracle for tests and the ablation
/// baseline.
pub fn nested_loop_join(
    left: &[StructId],
    right: &[StructId],
    rel: StructRel,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            let hit = match rel {
                StructRel::Parent => a.is_parent_of(b),
                StructRel::Ancestor => a.is_ancestor_of(b),
            };
            if hit == Some(true) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Stack-tree structural join [1]: both inputs are first sorted in
/// document order, then merged with a stack of open ancestors.
/// O(n + m + output).
pub fn stack_tree_join(
    left: &[StructId],
    right: &[StructId],
    rel: StructRel,
) -> Vec<(usize, usize)> {
    // sort index arrays by document order
    let mut li: Vec<usize> = (0..left.len()).collect();
    let mut ri: Vec<usize> = (0..right.len()).collect();
    li.sort_by(|&a, &b| {
        left[a]
            .cmp_doc_order(&left[b])
            .expect("structural join requires a uniform structural ID scheme")
    });
    ri.sort_by(|&a, &b| {
        right[a]
            .cmp_doc_order(&right[b])
            .expect("structural join requires a uniform structural ID scheme")
    });

    let mut out = Vec::new();
    let mut stack: Vec<usize> = Vec::new(); // indices into `left`
    let mut l = 0usize;
    let mut r = 0usize;
    while r < ri.len() {
        let rid = &right[ri[r]];
        // push all left ids that start before rid and are its ancestors;
        // pop those that end before rid starts.
        while l < li.len()
            && left[li[l]].cmp_doc_order(rid).expect("uniform scheme") != Ordering::Greater
        {
            // maintain the stack invariant: the stack is a chain of
            // ancestors of the incoming left id
            while let Some(&top) = stack.last() {
                if left[top].is_ancestor_of(&left[li[l]]) == Some(true) || left[top] == left[li[l]]
                {
                    break;
                }
                stack.pop();
            }
            stack.push(li[l]);
            l += 1;
        }
        // pop stack entries whose subtree ended strictly before rid; an
        // entry *equal* to rid has not ended (its descendants follow rid)
        while let Some(&top) = stack.last() {
            if left[top].is_ancestor_of(rid) == Some(true) || left[top] == *rid {
                break;
            }
            stack.pop();
        }
        // the stack is an ancestor chain; entries below a possible
        // rid-equal top are ancestors of rid
        for &a in stack.iter() {
            if left[a].is_ancestor_of(rid) != Some(true) {
                continue;
            }
            match rel {
                StructRel::Ancestor => out.push((a, ri[r])),
                StructRel::Parent => {
                    if left[a].is_parent_of(rid) == Some(true) {
                        out.push((a, ri[r]));
                    }
                }
            }
        }
        r += 1;
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_xml::{Document, IdAssignment, IdScheme};

    fn ids_of(doc: &Document, scheme: IdScheme, label: &str) -> Vec<StructId> {
        let ids = IdAssignment::assign(doc, scheme);
        doc.iter()
            .filter(|&n| doc.label(n).as_str() == label)
            .map(|n| ids.id(n).clone())
            .collect()
    }

    fn check_agreement(doc: &Document, scheme: IdScheme, l: &str, r: &str) {
        let left = ids_of(doc, scheme, l);
        let right = ids_of(doc, scheme, r);
        for rel in [StructRel::Parent, StructRel::Ancestor] {
            let mut naive = nested_loop_join(&left, &right, rel);
            naive.sort_unstable();
            let stacked = stack_tree_join(&left, &right, rel);
            assert_eq!(naive, stacked, "{scheme:?} {rel:?} {l}/{r}");
        }
    }

    #[test]
    fn agrees_with_nested_loop_on_samples() {
        let docs = [
            "a(b(c(b) b) c(b(c)) b)",
            "a(b(b(b(b))))",
            "a(c c c)",
            "a(b(c) c(b) b(c(b(c))))",
        ];
        for d in docs {
            let doc = Document::from_parens(d);
            for scheme in [IdScheme::OrdPath, IdScheme::Dewey] {
                check_agreement(&doc, scheme, "b", "c");
                check_agreement(&doc, scheme, "a", "b");
                check_agreement(&doc, scheme, "b", "b");
            }
        }
    }

    #[test]
    fn ancestor_vs_parent_difference() {
        let doc = Document::from_parens("a(b(x(c)))");
        let left = ids_of(&doc, IdScheme::OrdPath, "b");
        let right = ids_of(&doc, IdScheme::OrdPath, "c");
        assert_eq!(
            stack_tree_join(&left, &right, StructRel::Ancestor).len(),
            1
        );
        assert_eq!(stack_tree_join(&left, &right, StructRel::Parent).len(), 0);
    }

    #[test]
    fn empty_inputs() {
        assert!(stack_tree_join(&[], &[], StructRel::Ancestor).is_empty());
        let doc = Document::from_parens("a(b)");
        let left = ids_of(&doc, IdScheme::Dewey, "a");
        assert!(stack_tree_join(&left, &[], StructRel::Parent).is_empty());
        assert!(stack_tree_join(&[], &left, StructRel::Parent).is_empty());
    }

    #[test]
    #[should_panic(expected = "uniform structural ID scheme")]
    fn mixed_schemes_rejected() {
        let doc = Document::from_parens("a(b b)");
        let mut left = ids_of(&doc, IdScheme::OrdPath, "b");
        left.push(StructId::Seq(1));
        let right = ids_of(&doc, IdScheme::OrdPath, "b");
        stack_tree_join(&left, &right, StructRel::Ancestor);
    }
}
