//! Structural joins over structural identifiers.
//!
//! The paper's plans use `⋈_≺` (parent) and `⋈_≺≺` (ancestor) joins, and
//! cite the stack-tree algorithm of Al-Khalifa et al. \[1\] as the
//! primitive. The executor's default path is
//! [`stack_tree_join_presorted`]: a stack-based merge over inputs
//! *already* sorted in document order (the executor sorts each input once
//! and tracks sortedness, so chained joins pay for sorting at most once).
//! [`stack_tree_join`] wraps it for unsorted inputs. [`nested_loop_join`]
//! is the O(n·m) correctness oracle, kept for tests and as the ablation
//! baseline — it is not reachable from `eval()`.
//!
//! All variants require IDs of a *structural* scheme (ORDPATH / Dewey);
//! the sequential scheme cannot answer ancestor tests and is rejected.

use smv_xml::StructId;
use std::borrow::Borrow;
use std::cmp::Ordering;

/// Structural relationship tested by the join.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StructRel {
    /// Left is the parent of right (`≺`).
    Parent,
    /// Left is a proper ancestor of right (`≺≺`).
    Ancestor,
}

/// Output pairs `(left index, right index)` such that `left[l] rel
/// right[r]`. Naive O(n·m) loop; the oracle for tests and the ablation
/// baseline.
pub fn nested_loop_join(
    left: &[StructId],
    right: &[StructId],
    rel: StructRel,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            let hit = match rel {
                StructRel::Parent => a.is_parent_of(b),
                StructRel::Ancestor => a.is_ancestor_of(b),
            };
            if hit == Some(true) {
                out.push((i, j));
            }
        }
    }
    out
}

/// Stack-tree structural join \[1\] over inputs **already sorted in
/// document order**: a single merge with a stack of open ancestors,
/// O(n + m + output). Accepts owned or borrowed IDs so callers can join
/// without cloning.
///
/// Output pairs index into the given slices and are emitted grouped by
/// the right side in its (sorted) order — i.e. the output is sorted by
/// the right index. Panics if the inputs mix ID schemes or use the
/// non-structural sequential scheme.
pub fn stack_tree_join_presorted<L, R>(
    left: &[L],
    right: &[R],
    rel: StructRel,
) -> Vec<(usize, usize)>
where
    L: Borrow<StructId>,
    R: Borrow<StructId>,
{
    stack_tree_join_presorted_range(left, right, rel, 0..right.len())
}

/// [`stack_tree_join_presorted`] restricted to the right-side rows in
/// `rrange` — the unit of work of the parallel executor's chunked
/// structural join. Pairs index into the **full** slices, and the pairs
/// for a given right index are exactly (and in exactly the order) the
/// full join would emit for it, so concatenating the outputs of adjacent
/// ranges reproduces the full join byte for byte. Each range pays one
/// scan of the left prefix ending at its last right id (the ancestor
/// stack cannot be seeded mid-stream), which is why ranges should be few
/// and large.
pub fn stack_tree_join_presorted_range<L, R>(
    left: &[L],
    right: &[R],
    rel: StructRel,
    rrange: std::ops::Range<usize>,
) -> Vec<(usize, usize)>
where
    L: Borrow<StructId>,
    R: Borrow<StructId>,
{
    let mut out = Vec::new();
    let mut stack: Vec<usize> = Vec::new(); // indices into `left`
    let mut l = 0usize;
    for r in rrange {
        let rid = right[r].borrow();
        // push all left ids that start before rid and are its ancestors;
        // pop those that end before rid starts.
        while l < left.len()
            && left[l]
                .borrow()
                .cmp_doc_order(rid)
                .expect("structural join requires a uniform structural ID scheme")
                != Ordering::Greater
        {
            let lid = left[l].borrow();
            // maintain the stack invariant: the stack is a chain of
            // ancestors of the incoming left id
            while let Some(&top) = stack.last() {
                let tid = left[top].borrow();
                if tid.is_ancestor_of(lid) == Some(true) || tid == lid {
                    break;
                }
                stack.pop();
            }
            stack.push(l);
            l += 1;
        }
        // pop stack entries whose subtree ended strictly before rid; an
        // entry *equal* to rid has not ended (its descendants follow rid)
        while let Some(&top) = stack.last() {
            let tid = left[top].borrow();
            if tid.is_ancestor_of(rid) == Some(true) || tid == rid {
                break;
            }
            stack.pop();
        }
        // the stack is an ancestor chain; entries below a possible
        // rid-equal top are ancestors of rid
        for &a in stack.iter() {
            let aid = left[a].borrow();
            if aid.is_ancestor_of(rid) != Some(true) {
                continue;
            }
            match rel {
                StructRel::Ancestor => out.push((a, r)),
                StructRel::Parent => {
                    if aid.is_parent_of(rid) == Some(true) {
                        out.push((a, r));
                    }
                }
            }
        }
    }
    out
}

/// [`stack_tree_join_presorted`] for unsorted inputs: sorts index views of
/// both sides in document order first. Output pairs index into the
/// *original* slices, sorted ascending.
pub fn stack_tree_join(
    left: &[StructId],
    right: &[StructId],
    rel: StructRel,
) -> Vec<(usize, usize)> {
    let li = doc_sorted_indices(left);
    let ri = doc_sorted_indices(right);
    let lsorted: Vec<&StructId> = li.iter().map(|&i| &left[i]).collect();
    let rsorted: Vec<&StructId> = ri.iter().map(|&i| &right[i]).collect();
    let mut out: Vec<(usize, usize)> = stack_tree_join_presorted(&lsorted, &rsorted, rel)
        .into_iter()
        .map(|(a, b)| (li[a], ri[b]))
        .collect();
    out.sort_unstable();
    out
}

/// Indices of `ids` in document order; panics on mixed schemes.
pub fn doc_sorted_indices<T: Borrow<StructId>>(ids: &[T]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..ids.len()).collect();
    idx.sort_by(|&a, &b| {
        ids[a]
            .borrow()
            .cmp_doc_order(ids[b].borrow())
            .expect("structural join requires a uniform structural ID scheme")
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_xml::{Document, IdAssignment, IdScheme};

    fn ids_of(doc: &Document, scheme: IdScheme, label: &str) -> Vec<StructId> {
        let ids = IdAssignment::assign(doc, scheme);
        doc.iter()
            .filter(|&n| doc.label(n).as_str() == label)
            .map(|n| ids.id(n).clone())
            .collect()
    }

    fn check_agreement(doc: &Document, scheme: IdScheme, l: &str, r: &str) {
        let left = ids_of(doc, scheme, l);
        let right = ids_of(doc, scheme, r);
        for rel in [StructRel::Parent, StructRel::Ancestor] {
            let mut naive = nested_loop_join(&left, &right, rel);
            naive.sort_unstable();
            let stacked = stack_tree_join(&left, &right, rel);
            assert_eq!(naive, stacked, "{scheme:?} {rel:?} {l}/{r}");
        }
    }

    #[test]
    fn agrees_with_nested_loop_on_samples() {
        let docs = [
            "a(b(c(b) b) c(b(c)) b)",
            "a(b(b(b(b))))",
            "a(c c c)",
            "a(b(c) c(b) b(c(b(c))))",
        ];
        for d in docs {
            let doc = Document::from_parens(d);
            for scheme in [IdScheme::OrdPath, IdScheme::Dewey] {
                check_agreement(&doc, scheme, "b", "c");
                check_agreement(&doc, scheme, "a", "b");
                check_agreement(&doc, scheme, "b", "b");
            }
        }
    }

    #[test]
    fn range_concatenation_equals_full_join() {
        let doc = Document::from_parens("a(b(c(b(c)) c) b c(b(c c)) b(b(c)))");
        let left = ids_of(&doc, IdScheme::OrdPath, "b");
        let right = ids_of(&doc, IdScheme::OrdPath, "c");
        for rel in [StructRel::Parent, StructRel::Ancestor] {
            let full = stack_tree_join_presorted(&left, &right, rel);
            for cut1 in 0..=right.len() {
                for cut2 in cut1..=right.len() {
                    let mut parts = stack_tree_join_presorted_range(&left, &right, rel, 0..cut1);
                    parts.extend(stack_tree_join_presorted_range(
                        &left,
                        &right,
                        rel,
                        cut1..cut2,
                    ));
                    parts.extend(stack_tree_join_presorted_range(
                        &left,
                        &right,
                        rel,
                        cut2..right.len(),
                    ));
                    assert_eq!(parts, full, "{rel:?} cuts at {cut1},{cut2}");
                }
            }
        }
    }

    #[test]
    fn presorted_emits_right_sorted_pairs() {
        let doc = Document::from_parens("a(b(c c) b(c))");
        let left = ids_of(&doc, IdScheme::OrdPath, "b");
        let right = ids_of(&doc, IdScheme::OrdPath, "c");
        // document-order extraction is already sorted
        let pairs = stack_tree_join_presorted(&left, &right, StructRel::Parent);
        assert_eq!(pairs.len(), 3);
        let rs: Vec<usize> = pairs.iter().map(|&(_, r)| r).collect();
        let mut sorted = rs.clone();
        sorted.sort_unstable();
        assert_eq!(rs, sorted, "output grouped by right side in order");
    }

    #[test]
    fn ancestor_vs_parent_difference() {
        let doc = Document::from_parens("a(b(x(c)))");
        let left = ids_of(&doc, IdScheme::OrdPath, "b");
        let right = ids_of(&doc, IdScheme::OrdPath, "c");
        assert_eq!(stack_tree_join(&left, &right, StructRel::Ancestor).len(), 1);
        assert_eq!(stack_tree_join(&left, &right, StructRel::Parent).len(), 0);
    }

    #[test]
    fn empty_inputs() {
        assert!(stack_tree_join(&[], &[], StructRel::Ancestor).is_empty());
        let doc = Document::from_parens("a(b)");
        let left = ids_of(&doc, IdScheme::Dewey, "a");
        assert!(stack_tree_join(&left, &[], StructRel::Parent).is_empty());
        assert!(stack_tree_join(&[], &left, StructRel::Parent).is_empty());
    }

    #[test]
    #[should_panic(expected = "uniform structural ID scheme")]
    fn mixed_schemes_rejected() {
        let doc = Document::from_parens("a(b b)");
        let mut left = ids_of(&doc, IdScheme::OrdPath, "b");
        left.push(StructId::Seq(1));
        let right = ids_of(&doc, IdScheme::OrdPath, "b");
        stack_tree_join(&left, &right, StructRel::Ancestor);
    }
}
