//! Logical algebraic plans (paper §3.2, §4.6).
//!
//! Rewritings are *plans* built from view scans with `⋈_=` (ID equality),
//! `⋈_≺` / `⋈_≺≺` (structural joins), `σ`, `π`, `∪`, plus the adaptation
//! operators of §4.6: nest (group-by) / unnest, navigation inside stored
//! `C` attributes (XPath over content), and `nav_fID` — deriving an
//! ancestor's ID from a stored descendant ID when the ID scheme allows it
//! (ORDPATH / Dewey).

use crate::relation::AttrKind;
use crate::struct_join::StructRel;
use smv_pattern::{Axis, Formula};
use smv_xml::{Label, Symbol};

/// A navigation step inside a stored content column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NavStep {
    /// Child or descendant.
    pub axis: Axis,
    /// Required label (`None` = any).
    pub label: Option<Label>,
}

/// Row predicates for `σ`.
#[derive(Clone, Debug)]
pub enum Predicate {
    /// The value in an atom column satisfies a formula (nulls fail).
    Value {
        /// Column index.
        col: usize,
        /// The predicate formula.
        formula: Formula,
    },
    /// The label in a label column equals `label`.
    LabelEq {
        /// Column index.
        col: usize,
        /// Required label.
        label: Label,
    },
    /// The column is not `⊥`.
    NotNull {
        /// Column index.
        col: usize,
    },
}

/// A logical plan over materialized views.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Scan a named view's extent.
    Scan {
        /// View name in the catalog.
        view: String,
    },
    /// `σ` — filter rows.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate.
        pred: Predicate,
    },
    /// `π` — keep the given columns, in the given order.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Column indices to keep.
        cols: Vec<usize>,
    },
    /// `⋈_=` — equality join on ID columns.
    IdJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Left join column.
        lcol: usize,
        /// Right join column.
        rcol: usize,
    },
    /// `⋈_≺` / `⋈_≺≺` — structural join on ID columns.
    StructJoin {
        /// Left (ancestor side) input.
        left: Box<Plan>,
        /// Right (descendant side) input.
        right: Box<Plan>,
        /// Left join column.
        lcol: usize,
        /// Right join column.
        rcol: usize,
        /// Parent or ancestor.
        rel: StructRel,
    },
    /// `∪` — union of same-schema inputs (set semantics).
    Union {
        /// The branches.
        inputs: Vec<Plan>,
    },
    /// Group-by: group on `key_cols`, nest the `nested_cols` into a
    /// table-valued column named `name` (§4.6 nesting adaptation).
    Nest {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping key columns.
        key_cols: Vec<usize>,
        /// Columns gathered into the nested table.
        nested_cols: Vec<usize>,
        /// Interned name of the new nested column.
        name: Symbol,
    },
    /// Flatten a table-valued column; `outer` keeps rows whose table is
    /// empty (yielding nulls).
    Unnest {
        /// Input plan.
        input: Box<Plan>,
        /// The table-valued column.
        col: usize,
        /// Keep empty groups as null rows.
        outer: bool,
    },
    /// Navigate inside a stored `C` column, producing new attribute
    /// columns for the nodes reached (§4.6 C-unfolding support).
    NavigateContent {
        /// Input plan.
        input: Box<Plan>,
        /// The content column.
        content_col: usize,
        /// Column holding the ID of the content root, if available —
        /// enables reconstructing structural IDs for inner nodes.
        base_id_col: Option<usize>,
        /// Navigation steps from the content root.
        steps: Vec<NavStep>,
        /// Attributes to emit for each reached node.
        attrs: Vec<AttrKind>,
        /// If true, rows with no reached node survive with nulls.
        optional: bool,
        /// Interned prefix for the new columns' names.
        name: Symbol,
    },
    /// `nav_fID` — derive the ID of the `levels`-up ancestor from a stored
    /// structural ID (§4.6 virtual IDs).
    DeriveParentId {
        /// Input plan.
        input: Box<Plan>,
        /// Source ID column.
        col: usize,
        /// How many parent steps to take.
        levels: usize,
        /// Interned name of the new column.
        name: Symbol,
    },
    /// Explicit duplicate elimination.
    DupElim {
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    /// Number of `Scan` leaves — the plan "size" of Proposition 3.6.
    pub fn scan_count(&self) -> usize {
        match self {
            Plan::Scan { .. } => 1,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Nest { input, .. }
            | Plan::Unnest { input, .. }
            | Plan::NavigateContent { input, .. }
            | Plan::DeriveParentId { input, .. }
            | Plan::DupElim { input } => input.scan_count(),
            Plan::IdJoin { left, right, .. } | Plan::StructJoin { left, right, .. } => {
                left.scan_count() + right.scan_count()
            }
            Plan::Union { inputs } => inputs.iter().map(Plan::scan_count).sum(),
        }
    }

    /// The distinct view names scanned.
    pub fn views_used(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn rec(p: &Plan, out: &mut Vec<String>) {
            match p {
                Plan::Scan { view } => {
                    if !out.contains(view) {
                        out.push(view.clone());
                    }
                }
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::Nest { input, .. }
                | Plan::Unnest { input, .. }
                | Plan::NavigateContent { input, .. }
                | Plan::DeriveParentId { input, .. }
                | Plan::DupElim { input } => rec(input, out),
                Plan::IdJoin { left, right, .. } | Plan::StructJoin { left, right, .. } => {
                    rec(left, out);
                    rec(right, out);
                }
                Plan::Union { inputs } => inputs.iter().for_each(|i| rec(i, out)),
            }
        }
        rec(self, &mut out);
        out
    }

    /// The operator's direct inputs, in child-index order — the same
    /// numbering [`crate::feedback::OpPath`] uses: unary inputs are child
    /// `0`, joins are left `0` / right `1`, union branches in order.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => Vec::new(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Nest { input, .. }
            | Plan::Unnest { input, .. }
            | Plan::NavigateContent { input, .. }
            | Plan::DeriveParentId { input, .. }
            | Plan::DupElim { input } => vec![input],
            Plan::IdJoin { left, right, .. } | Plan::StructJoin { left, right, .. } => {
                vec![left, right]
            }
            Plan::Union { inputs } => inputs.iter().collect(),
        }
    }

    /// The operator's rendered head, without inputs — one line of the
    /// indented [`std::fmt::Display`] tree, e.g. `Scan(v_item)` or
    /// `StructJoin[#0 ≺≺ #0]`. Shared by the plan printer, `EXPLAIN`,
    /// and located execution errors.
    pub fn op_label(&self) -> String {
        match self {
            Plan::Scan { view } => format!("Scan({view})"),
            Plan::Select { pred, .. } => {
                let p = match pred {
                    Predicate::Value { col, formula } => format!("#{col} sat {formula}"),
                    Predicate::LabelEq { col, label } => format!("#{col} = <{label}>"),
                    Predicate::NotNull { col } => format!("#{col} not null"),
                };
                format!("Select[{p}]")
            }
            Plan::Project { cols, .. } => format!("Project{cols:?}"),
            Plan::IdJoin { lcol, rcol, .. } => format!("IdJoin[#{lcol} = #{rcol}]"),
            Plan::StructJoin {
                lcol, rcol, rel, ..
            } => {
                let sym = match rel {
                    StructRel::Parent => "≺",
                    StructRel::Ancestor => "≺≺",
                };
                format!("StructJoin[#{lcol} {sym} #{rcol}]")
            }
            Plan::Union { .. } => "Union".to_string(),
            Plan::Nest {
                key_cols,
                nested_cols,
                name,
                ..
            } => format!("Nest[key={key_cols:?} nest={nested_cols:?} as {name}]"),
            Plan::Unnest { col, outer, .. } => {
                format!("Unnest[#{col}{}]", if *outer { " outer" } else { "" })
            }
            Plan::NavigateContent {
                content_col,
                steps,
                attrs,
                optional,
                name,
                ..
            } => {
                let path: String = steps
                    .iter()
                    .map(|s| {
                        format!(
                            "{}{}",
                            if s.axis == Axis::Child { "/" } else { "//" },
                            s.label.map(|l| l.as_str()).unwrap_or("*")
                        )
                    })
                    .collect();
                format!(
                    "NavigateC[#{content_col}{path} → {name}.{attrs:?}{}]",
                    if *optional { " optional" } else { "" }
                )
            }
            Plan::DeriveParentId {
                col, levels, name, ..
            } => format!("navfID[#{col} ↑{levels} as {name}]"),
            Plan::DupElim { .. } => "DupElim".to_string(),
        }
    }

    fn fmt_indent(&self, f: &mut std::fmt::Formatter<'_>, indent: usize) -> std::fmt::Result {
        writeln!(f, "{}{}", "  ".repeat(indent), self.op_label())?;
        for c in self.children() {
            c.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Plan {
        Plan::IdJoin {
            left: Box::new(Plan::Scan { view: "V1".into() }),
            right: Box::new(Plan::Select {
                input: Box::new(Plan::Scan { view: "V2".into() }),
                pred: Predicate::NotNull { col: 0 },
            }),
            lcol: 0,
            rcol: 0,
        }
    }

    #[test]
    fn scan_count_and_views() {
        let p = sample();
        assert_eq!(p.scan_count(), 2);
        assert_eq!(p.views_used(), vec!["V1".to_string(), "V2".to_string()]);
        let u = Plan::Union {
            inputs: vec![sample(), Plan::Scan { view: "V1".into() }],
        };
        assert_eq!(u.scan_count(), 3);
        assert_eq!(u.views_used().len(), 2, "views deduplicated");
    }

    #[test]
    fn display_is_indented() {
        let txt = sample().to_string();
        assert!(txt.contains("IdJoin"));
        assert!(txt.contains("  Scan(V1)"));
        assert!(txt.contains("    Scan(V2)"));
    }
}
