//! Plan execution against a view catalog.
//!
//! A materialize-everything evaluator: every operator consumes and
//! produces a [`NestedRelation`]. The hot path is engineered around three
//! ideas (see the crate docs):
//!
//! * **borrowed inputs** — `eval` returns `Cow<NestedRelation>`; a view
//!   scan borrows the catalog extent and operators clone only the cells
//!   that survive into their output, never whole input relations;
//! * **sort-based structural joins** — ancestor/parent predicates run the
//!   stack-tree merge over inputs sorted once in document order, with
//!   sortedness tracked on [`NestedRelation`] so chained joins (and scans
//!   of normalized extents) skip re-sorting; the nested-loop variant
//!   survives only as a test oracle and ablation baseline;
//! * **hashed row keys** — ID-equality joins index `&StructId` directly
//!   and grouping hashes rows structurally; no cell is ever encoded into
//!   a string to be compared.

use crate::feedback::{ExecProfile, OpPath, ParHints};
use crate::plan::{NavStep, Plan, Predicate};
use crate::relation::{AttrKind, Cell, ColKind, Column, NestedRelation, Row, Schema};
use crate::struct_join::StructRel;
use crate::struct_join::{
    doc_sorted_indices, stack_tree_join_presorted, stack_tree_join_presorted_range,
};
use smv_pattern::Axis;
use smv_xml::par::{par_map, WorkerPool};
use smv_xml::{parse_document, serialize_subtree, Document, NodeId, StructId, Symbol};
use std::borrow::Cow;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Execution options: how many worker threads, on which pool, gated how.
///
/// The default (`threads: 1`) is fully sequential and byte-identical to
/// the historical executor. With `threads > 1`, selections, id-joins,
/// structural joins and the normalization sort run as morsel-sized tasks
/// on a persistent [`WorkerPool`] — per summary-path-pair shard when both
/// join inputs are scans of sharded extents ([`ShardPartition`]), by
/// chunking the sorted right side otherwise. Results and [`ExecProfile`]
/// counters are identical at every thread count; only wall-clock changes.
#[derive(Clone, Debug)]
pub struct ExecOpts {
    /// Parallelism units this execution may occupy on the pool:
    /// `1` = sequential (the pool is never touched), `0` = the pool's
    /// size (the host's available parallelism when no pool is set),
    /// `n` = at most `n` units — the calling thread plus up to `n - 1`
    /// pool workers.
    pub threads: usize,
    /// Parallel operators engage only when their input holds at least
    /// this many rows — unless execution feedback ([`ParHints`]) has
    /// measured the operator's *output* at or above it (a small-input
    /// explosive join is worth fanning out; the static input-size gate
    /// cannot see that). Set to `0` to force the parallel path regardless
    /// of size (tests do). Morsel sizes also shrink to `min_par_rows`
    /// when it is below the default morsel, so forcing the gate also
    /// forces multi-morsel scheduling.
    pub min_par_rows: usize,
    /// The worker pool parallel execution draws from. `None` with
    /// `threads > 1` attaches the process-wide [`WorkerPool::global`] at
    /// execution start; sessions wanting isolation pass their own via
    /// [`ExecOpts::with_pool`]. Always `None`d out when `threads <= 1`.
    pub pool: Option<Arc<WorkerPool>>,
    /// Measured per-fragment output cardinalities for the plan about to
    /// run (snapshot from a `FeedbackStore`), making the `min_par_rows`
    /// gate adaptive. `None` = static gate only.
    pub par_hints: Option<Arc<ParHints>>,
}

impl PartialEq for ExecOpts {
    fn eq(&self, other: &Self) -> bool {
        fn same<T>(a: &Option<Arc<T>>, b: &Option<Arc<T>>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
        }
        self.threads == other.threads
            && self.min_par_rows == other.min_par_rows
            && same(&self.pool, &other.pool)
            && same(&self.par_hints, &other.par_hints)
    }
}

impl Eq for ExecOpts {}

impl Default for ExecOpts {
    fn default() -> ExecOpts {
        // Debug builds only: `SMV_TEST_THREADS=n` (n > 1) turns every
        // default-options execution into a forced pool run (threads = n,
        // min_par_rows = 0) so CI can drive the whole test suite through
        // the parallel paths without touching call sites. Read once per
        // process. Release builds ignore the variable entirely — a stray
        // deployment env var must not silently force per-row morsels on
        // production defaults.
        #[cfg(debug_assertions)]
        {
            static FORCED: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
            let forced = *FORCED.get_or_init(|| {
                std::env::var("SMV_TEST_THREADS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            });
            if let Some(n) = forced {
                if n > 1 {
                    return ExecOpts {
                        threads: n,
                        min_par_rows: 0,
                        pool: None,
                        par_hints: None,
                    };
                }
            }
        }
        ExecOpts {
            threads: 1,
            min_par_rows: 4096,
            pool: None,
            par_hints: None,
        }
    }
}

impl ExecOpts {
    /// Options running on `threads` parallelism units (`0` = pool size).
    pub fn with_threads(threads: usize) -> ExecOpts {
        ExecOpts {
            threads,
            ..ExecOpts::default()
        }
    }

    /// Options running on (all of) a specific worker pool — e.g. one
    /// shared by several sessions, or a private pool in tests.
    pub fn with_pool(pool: Arc<WorkerPool>) -> ExecOpts {
        ExecOpts {
            threads: pool.size(),
            pool: Some(pool),
            ..ExecOpts::default()
        }
    }

    /// A copy ready to execute: `threads: 0` resolves to the pool size
    /// once, up front (not per call site); a parallel run without a pool
    /// attaches the global one; a sequential run drops any pool so the
    /// `threads <= 1` path provably never touches it.
    fn resolved(&self) -> ExecOpts {
        let mut o = self.clone();
        if o.threads == 0 {
            o.threads = match &o.pool {
                Some(p) => p.size(),
                None => WorkerPool::global().size(),
            };
        }
        if o.threads <= 1 {
            o.pool = None;
        } else if o.pool.is_none() {
            o.pool = Some(Arc::clone(WorkerPool::global()));
        }
        o
    }

    /// Should this operator fan out? True when parallelism is on and
    /// either the input crosses the static `min_par_rows` gate or
    /// feedback measured `fragment`'s output at/above it.
    fn engage(&self, in_rows: usize, fragment: Option<&Plan>) -> bool {
        if self.threads <= 1 || self.pool.is_none() || in_rows < 2 {
            return false;
        }
        let floor = self.min_par_rows.max(2);
        if in_rows >= floor {
            return true;
        }
        match (&self.par_hints, fragment) {
            (Some(h), Some(p)) => h.measured(p).is_some_and(|rows| rows >= floor as f64),
            _ => false,
        }
    }

    /// Morsel size (in rows) for an input of `rows`: small enough that
    /// every unit gets a couple of morsels to balance over, capped at
    /// [`MORSEL_ROWS`] — and at `min_par_rows` when that is smaller, so
    /// the forced-parallel test configuration (`min_par_rows: 0`)
    /// schedules tiny inputs as genuinely many morsels.
    fn morsel_rows(&self, rows: usize) -> usize {
        let cap = MORSEL_ROWS.min(self.min_par_rows.max(1));
        rows.div_ceil(self.threads.max(1) * 2).clamp(1, cap)
    }
}

/// Upper bound on rows per morsel: large enough to amortize one queue
/// dispatch over real work, small enough that skewed operators still
/// rebalance (workers claim morsels dynamically).
const MORSEL_ROWS: usize = 4096;

/// Contiguous index ranges of `morsel` rows each, covering `0..rows`.
fn morsel_ranges(rows: usize, morsel: usize) -> Vec<std::ops::Range<usize>> {
    (0..rows.div_ceil(morsel.max(1)))
        .map(|i| i * morsel..((i + 1) * morsel).min(rows))
        .collect()
}

/// Runs `n` index tasks with `opts`'s parallelism: on the pool when one
/// is attached (resolved parallel options always have one), otherwise on
/// a scoped fallback pool. Keeps `par_map`'s contract — results in index
/// order, worker panics re-raised on the caller.
fn run_par<R, F>(opts: &ExecOpts, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match &opts.pool {
        Some(p) => p.pool_map(opts.threads, n, f),
        None => par_map(opts.threads, n, f),
    }
}

/// One summary-path shard of a materialized extent: the rows whose
/// sharding-column ID sits on one summary path, plus enough of the
/// summary's pre-order geometry (`pre`/`last_desc`/`depth`) for the
/// executor to decide path-pair joinability without a summary in hand.
#[derive(Clone, Debug)]
pub struct ExtentShard {
    /// The summary path node this shard holds (a [`NodeId`] into the
    /// summary's arena).
    pub path: NodeId,
    /// The path's pre-order rank in the summary.
    pub pre: u32,
    /// Pre-order rank of the path's last descendant (ancestor tests are
    /// interval containment: `a.pre < b.pre && b.pre <= a.last_desc`).
    pub last_desc: u32,
    /// The path's depth (root = 0); parent tests are ancestor + depth+1.
    pub depth: u32,
    /// Row indices into the (normalized) extent, ascending — i.e. in
    /// document order of the sharding column.
    pub rows: Vec<usize>,
}

/// A partition of a materialized extent's rows by the summary path of
/// one ID column (produced by `Catalog::add_sharded` in `smv-views`).
///
/// Invariants the executor relies on: `col` is the extent's first
/// column, the extent is normalized (hence sorted in document order on
/// `col`), every row with an ID in `col` appears in exactly one shard,
/// and rows whose `col` cell is not an ID (optional subtrees that bound
/// to `⊥`) are listed in `unclassified`.
#[derive(Clone, Debug, Default)]
pub struct ShardPartition {
    /// The sharding column.
    pub col: usize,
    /// Identifies the summary geometry snapshot the shard ranks were
    /// copied from (`Summary::geometry_token` in `smv-summary`). Two
    /// partitions' `pre`/`last_desc`/`depth` ranks are comparable only
    /// when their tokens are equal — summary extensions renumber the
    /// pre-order — so the executor joins per path pair only across
    /// same-token partitions and otherwise falls back to chunking.
    pub token: (u64, u64),
    /// The shards, one per summary path with at least one row.
    pub shards: Vec<ExtentShard>,
    /// Rows whose sharding-column cell is not an ID.
    pub unclassified: Vec<usize>,
}

/// Supplies view extents by name.
pub trait ViewProvider {
    /// The materialized extent of `name`, if the view exists.
    fn extent(&self, name: &str) -> Option<&NestedRelation>;

    /// The summary-path shard partition of `name`'s extent, when the
    /// store maintains one. The default is `None`: providers without
    /// sharding still execute every plan — parallel structural joins
    /// just fall back from per-path-pair tasks to chunking.
    fn shard_partition(&self, _name: &str) -> Option<&ShardPartition> {
        None
    }
}

/// A trivial provider backed by a map (tests, examples).
#[derive(Default)]
pub struct MapProvider {
    map: HashMap<String, NestedRelation>,
    shards: HashMap<String, ShardPartition>,
}

impl MapProvider {
    /// Registers a view extent. Replacing an extent drops any shard
    /// partition registered under the same name (its row indices would
    /// dangle into the new extent).
    pub fn insert(&mut self, name: &str, rel: NestedRelation) {
        self.map.insert(name.to_owned(), rel);
        self.shards.remove(name);
    }

    /// Registers a view extent together with its summary-path shard
    /// partition (the caller vouches for the [`ShardPartition`]
    /// invariants).
    pub fn insert_sharded(&mut self, name: &str, rel: NestedRelation, partition: ShardPartition) {
        self.map.insert(name.to_owned(), rel);
        self.shards.insert(name.to_owned(), partition);
    }
}

impl ViewProvider for MapProvider {
    fn extent(&self, name: &str) -> Option<&NestedRelation> {
        self.map.get(name)
    }

    fn shard_partition(&self, name: &str) -> Option<&ShardPartition> {
        self.shards.get(name)
    }
}

/// Execution failure. The executor wraps every failure in
/// [`ExecError::At`] carrying the failing operator's positional
/// [`OpPath`] and rendered name, so errors are diagnosable without a
/// debugger; match on [`ExecError::kind`] when only the cause matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The plan scans a view the provider does not know.
    UnknownView(String),
    /// Union branches with different schemas, bad column index, etc.
    Schema(String),
    /// A cell had an unexpected type for the operator.
    Type(String),
    /// A failure located at one operator of the plan tree.
    At {
        /// Positional path of the failing operator (`""` = the root).
        path: OpPath,
        /// The operator's rendered head, e.g. `Scan(v_item)`.
        op: String,
        /// What went wrong there.
        source: Box<ExecError>,
    },
}

impl ExecError {
    /// The underlying cause, with any [`ExecError::At`] location peeled.
    pub fn kind(&self) -> &ExecError {
        match self {
            ExecError::At { source, .. } => source.kind(),
            e => e,
        }
    }

    /// The failing operator's positional path, when located.
    pub fn op_path(&self) -> Option<&str> {
        match self {
            ExecError::At { path, .. } => Some(path),
            _ => None,
        }
    }

    /// The failing operator's rendered head, when located.
    pub fn op_name(&self) -> Option<&str> {
        match self {
            ExecError::At { op, .. } => Some(op),
            _ => None,
        }
    }

    /// Wraps a bare error with the operator it surfaced at; an error
    /// already located (by a deeper frame) passes through unchanged.
    fn locate(self, path: &[u32], plan: &Plan) -> ExecError {
        match self {
            e @ ExecError::At { .. } => e,
            e => ExecError::At {
                path: crate::feedback::path_key(path),
                op: plan.op_label(),
                source: Box::new(e),
            },
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownView(v) => write!(f, "unknown view `{v}`"),
            ExecError::Schema(m) => write!(f, "schema error: {m}"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::At { path, op, source } => {
                let at = if path.is_empty() { "root" } else { path };
                write!(f, "{source} at operator {at} ({op})")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes `plan` against `views`, returning a normalized relation.
///
/// Sequential ([`ExecOpts::default`]); use [`execute_with`] to run
/// structural joins on a worker pool.
///
/// ```
/// use smv_algebra::{execute, AttrKind, Cell, MapProvider, NestedRelation, Plan, Row, Schema};
/// use smv_xml::StructId;
///
/// let mut views = MapProvider::default();
/// views.insert(
///     "v",
///     NestedRelation::new(
///         Schema::atoms(&[("a.ID", AttrKind::Id)]),
///         vec![Row::new(vec![Cell::Id(StructId::Seq(7))])],
///     ),
/// );
/// let out = execute(&Plan::Scan { view: "v".into() }, &views).unwrap();
/// assert_eq!(out.len(), 1);
/// ```
pub fn execute(plan: &Plan, views: &dyn ViewProvider) -> Result<NestedRelation, ExecError> {
    execute_with(plan, views, &ExecOpts::default())
}

/// [`execute`] with explicit [`ExecOpts`]. `threads: 1` is byte-identical
/// to [`execute`]; any other thread count returns the same rows (the
/// parallel structural-join merges preserve both the row multiset and
/// the document-order `sorted_on` invariants, and the result is
/// normalized regardless).
pub fn execute_with(
    plan: &Plan,
    views: &dyn ViewProvider,
    opts: &ExecOpts,
) -> Result<NestedRelation, ExecError> {
    let opts = opts.resolved();
    let mut prof = Profiler::unprofiled();
    let mut rel = eval(plan, views, &mut prof, &opts)?.into_owned();
    normalize_with(&mut rel, &opts);
    Ok(rel)
}

/// Executes `plan` and records every operator's actual output row count
/// into an [`ExecProfile`] keyed by its positional path in the plan tree.
///
/// Profiling is counters-only — no row is copied or re-walked — so the
/// hot path is identical to [`execute`]'s; the unprofiled entry point
/// passes a `None` profiler and pays one branch per operator. The root
/// entry is overwritten after the final normalization so it always equals
/// the returned relation's size.
///
/// ```
/// use smv_algebra::{execute_profiled, AttrKind, Cell, MapProvider, NestedRelation, Plan, Row, Schema};
/// use smv_xml::StructId;
///
/// let mut views = MapProvider::default();
/// views.insert(
///     "v",
///     NestedRelation::new(
///         Schema::atoms(&[("a.ID", AttrKind::Id)]),
///         vec![Row::new(vec![Cell::Id(StructId::Seq(7))])],
///     ),
/// );
/// let (out, profile) = execute_profiled(&Plan::Scan { view: "v".into() }, &views).unwrap();
/// assert_eq!(profile.rows_at(""), Some(out.len() as u64), "root counter = result size");
/// ```
pub fn execute_profiled(
    plan: &Plan,
    views: &dyn ViewProvider,
) -> Result<(NestedRelation, ExecProfile), ExecError> {
    execute_profiled_with(plan, views, &ExecOpts::default())
}

/// [`execute_profiled`] with explicit [`ExecOpts`]. The recorded
/// per-operator counters are identical at every thread count — parallel
/// structural joins produce the same row multiset per operator, and
/// profiling happens at operator granularity, outside the worker pool.
pub fn execute_profiled_with(
    plan: &Plan,
    views: &dyn ViewProvider,
    opts: &ExecOpts,
) -> Result<(NestedRelation, ExecProfile), ExecError> {
    let opts = opts.resolved();
    let t0 = Instant::now();
    let mut prof = Profiler {
        profile: Some(ExecProfile::default()),
        path: Vec::new(),
    };
    let mut rel = eval(plan, views, &mut prof, &opts)?.into_owned();
    normalize_with(&mut rel, &opts);
    let mut profile = prof.profile.expect("profiler survives eval");
    profile.record(&[], rel.len() as u64);
    // root time spans the whole execution, final normalization included
    profile.record_time(&[], t0.elapsed().as_nanos() as u64);
    Ok((rel, profile))
}

/// In-flight execution state: the profile under construction (when
/// profiling) plus the positional path of the operator currently being
/// evaluated. The path is maintained even unprofiled — it is what ties
/// an [`ExecError`] to the operator that raised it — at the cost of one
/// integer push/pop per operator.
struct Profiler {
    profile: Option<ExecProfile>,
    path: Vec<u32>,
}

impl Profiler {
    fn unprofiled() -> Profiler {
        Profiler {
            profile: None,
            path: Vec::new(),
        }
    }
}

/// Evaluates one operator; when profiling, records its output size and
/// inclusive wall time. Failures get located at the deepest operator
/// that raised them (parent frames pass an already-located error on).
fn eval<'a>(
    plan: &Plan,
    views: &'a dyn ViewProvider,
    prof: &mut Profiler,
    opts: &ExecOpts,
) -> Result<Cow<'a, NestedRelation>, ExecError> {
    let t = prof.profile.as_ref().map(|_| Instant::now());
    let out = match eval_op(plan, views, prof, opts) {
        Ok(out) => out,
        Err(e) => return Err(e.locate(&prof.path, plan)),
    };
    if let Some(p) = &mut prof.profile {
        p.record(&prof.path, out.len() as u64);
        if let Some(t) = t {
            p.record_time(&prof.path, t.elapsed().as_nanos() as u64);
        }
    }
    Ok(out)
}

/// Evaluates the `idx`-th input of the current operator.
fn eval_child<'a>(
    plan: &Plan,
    views: &'a dyn ViewProvider,
    prof: &mut Profiler,
    opts: &ExecOpts,
    idx: u32,
) -> Result<Cow<'a, NestedRelation>, ExecError> {
    prof.path.push(idx);
    let r = eval(plan, views, prof, opts);
    prof.path.pop();
    r
}

fn eval_op<'a>(
    plan: &Plan,
    views: &'a dyn ViewProvider,
    prof: &mut Profiler,
    opts: &ExecOpts,
) -> Result<Cow<'a, NestedRelation>, ExecError> {
    match plan {
        Plan::Scan { view } => views
            .extent(view)
            .map(Cow::Borrowed)
            .ok_or_else(|| ExecError::UnknownView(view.clone())),
        Plan::Select { input, pred } => {
            let rel = eval_child(input, views, prof, opts, 0)?;
            let keep = |row: &Row| -> Result<bool, ExecError> {
                match pred {
                    Predicate::Value { col, formula } => match &row.cells[*col] {
                        Cell::Atom(v) => Ok(formula.accepts(v)),
                        Cell::Null => Ok(false),
                        other => Err(ExecError::Type(format!(
                            "value predicate on non-atom cell {other}"
                        ))),
                    },
                    Predicate::LabelEq { col, label } => match &row.cells[*col] {
                        Cell::Label(l) => Ok(l == label),
                        Cell::Null => Ok(false),
                        other => Err(ExecError::Type(format!(
                            "label predicate on non-label cell {other}"
                        ))),
                    },
                    Predicate::NotNull { col } => Ok(!row.cells[*col].is_null()),
                }
            };
            // filtering preserves row order, hence sortedness
            match rel {
                Cow::Owned(mut rel) => {
                    let mut rows = Vec::with_capacity(rel.rows.len());
                    for r in rel.rows {
                        if keep(&r)? {
                            rows.push(r);
                        }
                    }
                    rel.rows = rows;
                    Ok(Cow::Owned(rel))
                }
                Cow::Borrowed(rel) => {
                    let mut rows = Vec::new();
                    if opts.engage(rel.rows.len(), None) {
                        let ranges =
                            morsel_ranges(rel.rows.len(), opts.morsel_rows(rel.rows.len()));
                        if let Some(p) = &mut prof.profile {
                            p.add_morsels(&prof.path, ranges.len() as u64);
                        }
                        let outs: Vec<Result<Vec<Row>, ExecError>> =
                            run_par(opts, ranges.len(), |i| {
                                let mut kept = Vec::new();
                                for r in &rel.rows[ranges[i].clone()] {
                                    if keep(r)? {
                                        kept.push(r.clone());
                                    }
                                }
                                Ok(kept)
                            });
                        // concatenating morsel outputs in range order is row
                        // order; a failing morsel stops at its first bad row,
                        // so scanning outputs in order surfaces the same
                        // (earliest-row) error the sequential pass would
                        for o in outs {
                            rows.extend(o?);
                        }
                    } else {
                        for r in &rel.rows {
                            if keep(r)? {
                                rows.push(r.clone());
                            }
                        }
                    }
                    let mut out = NestedRelation::new(rel.schema.clone(), rows);
                    out.sorted_on = rel.sorted_on;
                    Ok(Cow::Owned(out))
                }
            }
        }
        Plan::Project { input, cols } => {
            let rel = eval_child(input, views, prof, opts, 0)?;
            for &c in cols {
                if c >= rel.schema.len() {
                    return Err(ExecError::Schema(format!(
                        "project column {c} out of range (schema {})",
                        rel.schema
                    )));
                }
            }
            let schema = Schema {
                cols: cols.iter().map(|&c| rel.schema.cols[c].clone()).collect(),
            };
            let sorted_on = rel
                .sorted_on
                .and_then(|s| cols.iter().position(|&c| c == s));
            let distinct = {
                let mut seen = vec![false; rel.schema.len()];
                cols.iter().all(|&c| !std::mem::replace(&mut seen[c], true))
            };
            let rows: Vec<Row> = match rel {
                // all-distinct projection over an owned input moves cells
                Cow::Owned(rel) if distinct => rel
                    .rows
                    .into_iter()
                    .map(|r| {
                        let mut taken: Vec<Option<Cell>> = r.cells.into_iter().map(Some).collect();
                        Row::new(
                            cols.iter()
                                .map(|&c| taken[c].take().expect("distinct cols"))
                                .collect(),
                        )
                    })
                    .collect(),
                rel => rel
                    .rows
                    .iter()
                    .map(|r| Row::new(cols.iter().map(|&c| r.cells[c].clone()).collect()))
                    .collect(),
            };
            let mut out = NestedRelation::new(schema, rows);
            out.sorted_on = sorted_on;
            Ok(Cow::Owned(out))
        }
        Plan::IdJoin {
            left,
            right,
            lcol,
            rcol,
        } => {
            let l = eval_child(left, views, prof, opts, 0)?;
            let r = eval_child(right, views, prof, opts, 1)?;
            let mut index: HashMap<&StructId, Vec<usize>> = HashMap::new();
            for (i, row) in l.rows.iter().enumerate() {
                if let Cell::Id(id) = &row.cells[*lcol] {
                    index.entry(id).or_default().push(i);
                }
            }
            let width = l.schema.len() + r.schema.len();
            let probe_range = |range: std::ops::Range<usize>| {
                let mut rows = Vec::new();
                for rrow in &r.rows[range] {
                    if let Cell::Id(id) = &rrow.cells[*rcol] {
                        if let Some(ls) = index.get(id) {
                            for &li in ls {
                                let mut cells = Vec::with_capacity(width);
                                cells.extend(l.rows[li].cells.iter().cloned());
                                cells.extend(rrow.cells.iter().cloned());
                                rows.push(Row::new(cells));
                            }
                        }
                    }
                }
                rows
            };
            // the static gate sees the inputs; feedback on this join's own
            // output covers the explosive-small-inputs case
            let rows = if opts.engage(l.rows.len() + r.rows.len(), Some(plan)) {
                let ranges = morsel_ranges(r.rows.len(), opts.morsel_rows(r.rows.len()));
                if let Some(p) = &mut prof.profile {
                    p.add_morsels(&prof.path, ranges.len() as u64);
                }
                let outs = run_par(opts, ranges.len(), |i| probe_range(ranges[i].clone()));
                // probe order is right-row order; morsel concatenation in
                // range order reproduces it exactly
                let mut rows = Vec::with_capacity(outs.iter().map(Vec::len).sum());
                for o in outs {
                    rows.extend(o);
                }
                rows
            } else {
                probe_range(0..r.rows.len())
            };
            let mut out = NestedRelation::new(concat_schemas(&l.schema, &r.schema), rows);
            // output follows the right side's row order
            out.sorted_on = r.sorted_on.map(|c| l.schema.len() + c);
            Ok(Cow::Owned(out))
        }
        Plan::StructJoin {
            left,
            right,
            lcol,
            rcol,
            rel,
        } => {
            let l = eval_child(left, views, prof, opts, 0)?;
            let r = eval_child(right, views, prof, opts, 1)?;
            let rows = if opts.engage(l.rows.len() + r.rows.len(), Some(plan)) {
                let (rows, tasks) = match (
                    scan_partition(left, views, *lcol, &l),
                    scan_partition(right, views, *rcol, &r),
                ) {
                    // equal tokens: both partitions' path ranks come from
                    // the same summary geometry snapshot, so the
                    // joinability intervals are comparable
                    (Some(lp), Some(rp)) if lp.token == rp.token => {
                        shard_pair_join(&l, &r, *rel, lp, rp, opts)
                    }
                    _ => chunked_struct_join(&l, &r, *lcol, *rcol, *rel, opts),
                };
                if let Some(p) = &mut prof.profile {
                    p.add_morsels(&prof.path, tasks as u64);
                }
                rows
            } else {
                let (lids, lrows) = gather_ids_sorted(&l, *lcol);
                let (rids, rrows) = gather_ids_sorted(&r, *rcol);
                let pairs = stack_tree_join_presorted(&lids, &rids, *rel);
                let width = l.schema.len() + r.schema.len();
                let mut rows = Vec::with_capacity(pairs.len());
                for (a, b) in pairs {
                    rows.push(joined_row(&l.rows[lrows[a]], &r.rows[rrows[b]], width));
                }
                rows
            };
            let mut out = NestedRelation::new(concat_schemas(&l.schema, &r.schema), rows);
            // every variant emits pairs grouped by the right side in
            // document order, so the joined relation is born sorted on
            // `rcol`
            out.sorted_on = Some(l.schema.len() + *rcol);
            Ok(Cow::Owned(out))
        }
        Plan::Union { inputs } => {
            let mut it = inputs.iter();
            let first = it
                .next()
                .ok_or_else(|| ExecError::Schema("empty union".into()))?;
            let mut acc = eval_child(first, views, prof, opts, 0)?.into_owned();
            for (i, p) in it.enumerate() {
                let r = eval_child(p, views, prof, opts, i as u32 + 1)?;
                if r.schema.cols.len() != acc.schema.cols.len() {
                    return Err(ExecError::Schema(format!(
                        "union arity mismatch: {} vs {}",
                        acc.schema, r.schema
                    )));
                }
                acc.rows.extend(r.into_owned().rows);
            }
            normalize_with(&mut acc, opts);
            Ok(Cow::Owned(acc))
        }
        Plan::Nest {
            input,
            key_cols,
            nested_cols,
            name,
        } => {
            let rel = eval_child(input, views, prof, opts, 0)?;
            let inner_schema = Schema {
                cols: nested_cols
                    .iter()
                    .map(|&c| rel.schema.cols[c].clone())
                    .collect(),
            };
            let mut schema = Schema {
                cols: key_cols
                    .iter()
                    .map(|&c| rel.schema.cols[c].clone())
                    .collect(),
            };
            schema.cols.push(Column {
                name: *name,
                kind: ColKind::Nested(inner_schema.clone()),
            });
            // group on hashed key rows (no string encoding), preserving
            // first-occurrence order
            let mut groups: HashMap<Row, usize> = HashMap::new();
            let mut order: Vec<(Row, Vec<Row>)> = Vec::new();
            for r in rel.rows.iter() {
                let key_row = Row::new(key_cols.iter().map(|&c| r.cells[c].clone()).collect());
                let slot = match groups.entry(key_row) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let i = order.len();
                        order.push((e.key().clone(), Vec::new()));
                        e.insert(i);
                        i
                    }
                };
                let inner = Row::new(nested_cols.iter().map(|&c| r.cells[c].clone()).collect());
                // all-null inner tuples encode "no binding" and are not
                // materialized in the group (Fig. 12's empty tables)
                if !inner.cells.iter().all(Cell::is_null) {
                    order[slot].1.push(inner);
                }
            }
            // groups surface in first-occurrence order, so sortedness on a
            // key column carries over to its position among the key columns
            let sorted_on = rel
                .sorted_on
                .and_then(|s| key_cols.iter().position(|&c| c == s));
            let rows = order
                .into_iter()
                .map(|(mut key_row, inner_rows)| {
                    key_row.cells.push(Cell::Table(NestedRelation::new(
                        inner_schema.clone(),
                        inner_rows,
                    )));
                    key_row
                })
                .collect();
            let mut out = NestedRelation::new(schema, rows);
            out.sorted_on = sorted_on;
            Ok(Cow::Owned(out))
        }
        Plan::Unnest { input, col, outer } => {
            let rel = eval_child(input, views, prof, opts, 0)?.into_owned();
            let ColKind::Nested(inner_schema) = rel.schema.cols[*col].kind.clone() else {
                return Err(ExecError::Type(format!(
                    "unnest on non-nested column {}",
                    rel.schema.cols[*col].name
                )));
            };
            let mut schema = Schema { cols: Vec::new() };
            for (i, c) in rel.schema.cols.iter().enumerate() {
                if i == *col {
                    schema.cols.extend(inner_schema.cols.iter().cloned());
                } else {
                    schema.cols.push(c.clone());
                }
            }
            let sorted_on = rel.sorted_on.and_then(|s| match s.cmp(col) {
                std::cmp::Ordering::Less => Some(s),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(s + inner_schema.len() - 1),
            });
            let mut rows = Vec::new();
            for r in rel.rows {
                let mut cells = r.cells;
                let Cell::Table(table) = std::mem::replace(&mut cells[*col], Cell::Null) else {
                    return Err(ExecError::Type("unnest on non-table cell".into()));
                };
                if table.rows.is_empty() {
                    if *outer {
                        rows.push(splice_owned(
                            cells,
                            *col,
                            vec![Cell::Null; inner_schema.len()],
                        ));
                    }
                    continue;
                }
                let last = table.rows.len() - 1;
                for (i, inner) in table.rows.into_iter().enumerate() {
                    if i == last {
                        rows.push(splice_owned(cells, *col, inner.cells));
                        break; // `cells` moved
                    }
                    rows.push(splice_cloned(&cells, *col, &inner.cells));
                }
            }
            let mut out = NestedRelation::new(schema, rows);
            out.sorted_on = sorted_on;
            Ok(Cow::Owned(out))
        }
        Plan::NavigateContent {
            input,
            content_col,
            base_id_col,
            steps,
            attrs,
            optional,
            name,
        } => {
            let rel = eval_child(input, views, prof, opts, 0)?;
            let mut schema = rel.schema.clone();
            for a in attrs {
                schema.cols.push(Column {
                    name: Symbol::intern(&format!("{name}.{a}")),
                    kind: ColKind::Atom(*a),
                });
            }
            let sorted_on = rel.sorted_on;
            let mut rows = Vec::new();
            for r in rel.rows.iter() {
                let reached: Vec<(Document, Vec<NodeId>)> = match &r.cells[*content_col] {
                    Cell::Content(xml) => {
                        let doc = parse_document(xml).map_err(|e| {
                            ExecError::Type(format!("stored content is not parseable: {e}"))
                        })?;
                        let nodes = navigate(&doc, steps);
                        vec![(doc, nodes)]
                    }
                    Cell::Null => vec![],
                    other => {
                        return Err(ExecError::Type(format!(
                            "navigation on non-content cell {other}"
                        )))
                    }
                };
                let base_id = base_id_col.and_then(|c| match &r.cells[c] {
                    Cell::Id(id) => Some(id.clone()),
                    _ => None,
                });
                let mut any = false;
                for (doc, nodes) in &reached {
                    for &n in nodes {
                        any = true;
                        let mut cells = Vec::with_capacity(r.cells.len() + attrs.len());
                        cells.extend(r.cells.iter().cloned());
                        for a in attrs {
                            cells.push(attr_cell(doc, n, *a, base_id.as_ref()));
                        }
                        rows.push(Row::new(cells));
                    }
                }
                if !any && *optional {
                    let mut cells = Vec::with_capacity(r.cells.len() + attrs.len());
                    cells.extend(r.cells.iter().cloned());
                    cells.extend(std::iter::repeat_n(Cell::Null, attrs.len()));
                    rows.push(Row::new(cells));
                }
            }
            let mut out = NestedRelation::new(schema, rows);
            out.sorted_on = sorted_on;
            Ok(Cow::Owned(out))
        }
        Plan::DeriveParentId {
            input,
            col,
            levels,
            name,
        } => {
            let mut rel = eval_child(input, views, prof, opts, 0)?.into_owned();
            rel.schema.cols.push(Column {
                name: *name,
                kind: ColKind::Atom(AttrKind::Id),
            });
            for r in &mut rel.rows {
                let cell = match &r.cells[*col] {
                    Cell::Id(id) => {
                        let mut cur = Some(id.clone());
                        for _ in 0..*levels {
                            cur = cur.and_then(|c| c.derive_parent());
                        }
                        cur.map(Cell::Id).unwrap_or(Cell::Null)
                    }
                    Cell::Null => Cell::Null,
                    other => {
                        return Err(ExecError::Type(format!(
                            "parent derivation on non-id cell {other}"
                        )))
                    }
                };
                r.cells.push(cell);
            }
            Ok(Cow::Owned(rel))
        }
        Plan::DupElim { input } => {
            let mut rel = eval_child(input, views, prof, opts, 0)?.into_owned();
            normalize_with(&mut rel, opts);
            Ok(Cow::Owned(rel))
        }
    }
}

/// Splices `replacement` into `cells` at `at`, consuming both (no cell is
/// cloned).
fn splice_owned(cells: Vec<Cell>, at: usize, replacement: Vec<Cell>) -> Row {
    let mut out = Vec::with_capacity(cells.len() - 1 + replacement.len());
    let mut replacement = Some(replacement);
    for (i, c) in cells.into_iter().enumerate() {
        if i == at {
            out.extend(replacement.take().expect("splice position hit once"));
        } else {
            out.push(c);
        }
    }
    Row::new(out)
}

/// Splices `replacement` into a borrowed `cells` at `at`.
fn splice_cloned(cells: &[Cell], at: usize, replacement: &[Cell]) -> Row {
    let mut out = Vec::with_capacity(cells.len() - 1 + replacement.len());
    for (i, c) in cells.iter().enumerate() {
        if i == at {
            out.extend(replacement.iter().cloned());
        } else {
            out.push(c.clone());
        }
    }
    Row::new(out)
}

fn concat_schemas(a: &Schema, b: &Schema) -> Schema {
    let mut cols = a.cols.clone();
    cols.extend(b.cols.iter().cloned());
    Schema { cols }
}

/// Concatenates a left and a right input row into one joined output row.
fn joined_row(l: &Row, r: &Row, width: usize) -> Row {
    let mut cells = Vec::with_capacity(width);
    cells.extend(l.cells.iter().cloned());
    cells.extend(r.cells.iter().cloned());
    Row::new(cells)
}

/// The shard partition behind `plan`, when the per-path-pair fast path
/// applies: `plan` is a bare scan, the provider maintains a partition on
/// exactly the join column, and the served extent is known sorted on it
/// (per-shard joins and the integer-keyed output merge both rely on
/// that). Anything else falls back to the chunked parallel join.
fn scan_partition<'a>(
    plan: &Plan,
    views: &'a dyn ViewProvider,
    col: usize,
    served: &NestedRelation,
) -> Option<&'a ShardPartition> {
    let Plan::Scan { view } = plan else {
        return None;
    };
    let p = views.shard_partition(view)?;
    (p.col == col && served.sorted_on == Some(col)).then_some(p)
}

/// The ids and extent-row indices of one shard, in document order (the
/// extent is sorted on `col` and shard rows ascend).
fn shard_ids<'x>(
    extent: &'x NestedRelation,
    shard: &ExtentShard,
    col: usize,
) -> (Vec<&'x StructId>, Vec<usize>) {
    let mut ids = Vec::with_capacity(shard.rows.len());
    let mut rows = Vec::with_capacity(shard.rows.len());
    for &i in &shard.rows {
        if let Cell::Id(id) = &extent.rows[i].cells[col] {
            ids.push(id);
            rows.push(i);
        }
    }
    (ids, rows)
}

/// Structural join decomposed per summary-path-pair shard — the paper's
/// natural decomposition of structural-join plans. Shard pair `(a, b)`
/// can produce output only when path `a` is a summary ancestor of path
/// `b` (parent joins additionally require `depth(b) = depth(a) + 1`), so
/// only those pairs produce morsels; every other pair is skipped
/// outright. A pair whose right side exceeds the morsel size splits into
/// several right-subrange morsels, so one giant path pair no longer
/// serializes the join. Both extents being sorted on their join columns,
/// global right-then-left document order *is* ascending (right row, left
/// row) index order, so merging the per-morsel outputs back into the
/// exact sequential emission order is an integer-keyed sort — no ID
/// comparison pass.
fn shard_pair_join(
    l: &NestedRelation,
    r: &NestedRelation,
    rel: StructRel,
    lp: &ShardPartition,
    rp: &ShardPartition,
    opts: &ExecOpts,
) -> (Vec<Row>, usize) {
    let lsh: Vec<(&ExtentShard, Vec<&StructId>, Vec<usize>)> = lp
        .shards
        .iter()
        .map(|s| {
            let (ids, rows) = shard_ids(l, s, lp.col);
            (s, ids, rows)
        })
        .collect();
    let rsh: Vec<(&ExtentShard, Vec<&StructId>, Vec<usize>)> = rp
        .shards
        .iter()
        .map(|s| {
            let (ids, rows) = shard_ids(r, s, rp.col);
            (s, ids, rows)
        })
        .collect();
    // morsel size relative to the whole right side: small pairs stay one
    // morsel each (they are already plentiful tasks), only dominant pairs
    // split — each extra morsel re-scans the pair's left side
    let morsel = opts.morsel_rows(r.rows.len());
    let mut tasks: Vec<(usize, usize, std::ops::Range<usize>)> = Vec::new();
    for (li, (ls, lids, _)) in lsh.iter().enumerate() {
        if lids.is_empty() {
            continue;
        }
        for (ri, (rs, rids, _)) in rsh.iter().enumerate() {
            if rids.is_empty() {
                continue;
            }
            let ancestor = ls.pre < rs.pre && rs.pre <= ls.last_desc;
            let joinable = match rel {
                StructRel::Ancestor => ancestor,
                StructRel::Parent => ancestor && rs.depth == ls.depth + 1,
            };
            if joinable {
                for rg in morsel_ranges(rids.len(), morsel) {
                    tasks.push((li, ri, rg));
                }
            }
        }
    }
    let width = l.schema.len() + r.schema.len();
    let outs: Vec<Vec<(u64, Row)>> = run_par(opts, tasks.len(), |t| {
        let (li, ri, ref rg) = tasks[t];
        let (_, lids, lrows) = &lsh[li];
        let (_, rids, rrows) = &rsh[ri];
        stack_tree_join_presorted_range(lids, rids, rel, rg.clone())
            .into_iter()
            .map(|(a, b)| {
                let key = ((rrows[b] as u64) << 32) | lrows[a] as u64;
                (key, joined_row(&l.rows[lrows[a]], &r.rows[rrows[b]], width))
            })
            .collect()
    });
    let mut keyed: Vec<(u64, Row)> = outs.into_iter().flatten().collect();
    // each (left row, right row) pair comes from exactly one morsel, so
    // keys are unique and the unstable sort is deterministic
    keyed.sort_unstable_by_key(|&(k, _)| k);
    (keyed.into_iter().map(|(_, row)| row).collect(), tasks.len())
}

/// General parallel structural join for arbitrary inputs: the sorted
/// right side splits into contiguous ranges, each range re-runs the
/// stack-tree merge against the left prefix it needs
/// ([`stack_tree_join_presorted_range`]), and the outputs concatenate in
/// range order — byte-identical to the sequential merge, since a range's
/// pairs are exactly the full join's pairs for its right rows, in the
/// same order.
fn chunked_struct_join(
    l: &NestedRelation,
    r: &NestedRelation,
    lcol: usize,
    rcol: usize,
    rel: StructRel,
    opts: &ExecOpts,
) -> (Vec<Row>, usize) {
    let (lids, lrows) = gather_ids_sorted(l, lcol);
    let (rids, rrows) = gather_ids_sorted(r, rcol);
    // a few ranges per worker so uneven per-range output balances — but
    // every extra range re-scans a left prefix (the ancestor stack
    // cannot be seeded mid-stream), so each range must carry a
    // meaningful share of right rows: a tiny right side over a huge
    // left degenerates to one range, i.e. the plain sequential merge,
    // instead of k× the left-scan work.
    let min_rows_per_range = (opts.min_par_rows / 4).max(1);
    let k = (opts.threads * 3)
        .max(rids.len().div_ceil(MORSEL_ROWS))
        .min(rids.len() / min_rows_per_range)
        .max(1);
    let chunk = rids.len().div_ceil(k).max(1);
    let ranges: Vec<std::ops::Range<usize>> = (0..k)
        .map(|i| (i * chunk).min(rids.len())..((i + 1) * chunk).min(rids.len()))
        .filter(|rg| !rg.is_empty())
        .collect();
    let width = l.schema.len() + r.schema.len();
    let outs: Vec<Vec<Row>> = run_par(opts, ranges.len(), |i| {
        stack_tree_join_presorted_range(&lids, &rids, rel, ranges[i].clone())
            .into_iter()
            .map(|(a, b)| joined_row(&l.rows[lrows[a]], &r.rows[rrows[b]], width))
            .collect()
    });
    let tasks = ranges.len();
    let mut rows = Vec::with_capacity(outs.iter().map(Vec::len).sum());
    for o in outs {
        rows.extend(o);
    }
    (rows, tasks)
}

/// Normalization (the dedup sort) with `opts`'s parallelism: rows split
/// into per-unit chunks, each chunk recursively normalizes its nested
/// tables and sorts on the pool, and the sorted runs merge on the caller.
/// `Row`'s total order compares every cell, so rows that compare equal
/// *are* equal — the merge + adjacent dedup yields exactly the sequential
/// `sort_unstable` + `dedup` result, and the same `sorted_on` marker
/// applies.
fn normalize_with(rel: &mut NestedRelation, opts: &ExecOpts) {
    if !opts.engage(rel.rows.len(), None) {
        rel.normalize();
        return;
    }
    let rows = std::mem::take(&mut rel.rows);
    // chunks are owned by the caller's frame; each task locks only its
    // own (never-contended) slot to mutate rows in place through the
    // shared borrow `run_par` requires
    let chunk = rows.len().div_ceil(opts.threads.max(1) * 2).max(1);
    let chunks: Vec<Mutex<Vec<Row>>> = {
        let mut it = rows.into_iter();
        let mut chunks = Vec::new();
        loop {
            let c: Vec<Row> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(Mutex::new(c));
        }
        chunks
    };
    run_par(opts, chunks.len(), |i| {
        let mut c = chunks[i].lock().expect("unshared chunk lock");
        for r in c.iter_mut() {
            for cell in &mut r.cells {
                if let Cell::Table(t) = cell {
                    t.normalize();
                }
            }
        }
        c.sort_unstable();
    });
    let mut runs: Vec<Vec<Row>> = chunks
        .into_iter()
        .map(|m| m.into_inner().expect("unshared chunk lock"))
        .collect();
    // binary merge tree: every row moves ⌈log₂ chunks⌉ times
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_sorted(a, b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    rel.rows = runs.pop().unwrap_or_default();
    rel.rows.dedup();
    rel.sorted_on = rel.canonical_sorted_on();
}

/// Merges two sorted row runs, stably (ties take from `a` first — with
/// `Row`'s total order ties are identical rows, so this only matters for
/// matching the sequential sort byte-for-byte).
fn merge_sorted(a: Vec<Row>, b: Vec<Row>) -> Vec<Row> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    while let (Some(x), Some(y)) = (ai.peek(), bi.peek()) {
        if x <= y {
            out.push(ai.next().expect("peeked"));
        } else {
            out.push(bi.next().expect("peeked"));
        }
    }
    out.extend(ai);
    out.extend(bi);
    out
}

/// Collects `(&id, row index)` for non-null ID cells of `col`, in document
/// order. When the relation is already sorted on `col` the pass is a plain
/// scan; otherwise the (id, row) pairs — not the rows — are sorted.
fn gather_ids_sorted(rel: &NestedRelation, col: usize) -> (Vec<&StructId>, Vec<usize>) {
    let mut ids = Vec::new();
    let mut rows = Vec::new();
    for (i, r) in rel.rows.iter().enumerate() {
        if let Cell::Id(id) = &r.cells[col] {
            ids.push(id);
            rows.push(i);
        }
    }
    if rel.sorted_on != Some(col) && !ids.is_empty() {
        let perm = doc_sorted_indices(&ids);
        ids = perm.iter().map(|&i| ids[i]).collect();
        rows = perm.iter().map(|&i| rows[i]).collect();
    }
    (ids, rows)
}

/// Runs the navigation steps from the content root.
fn navigate(doc: &Document, steps: &[NavStep]) -> Vec<NodeId> {
    let mut frontier = vec![doc.root()];
    for step in steps {
        let mut next = Vec::new();
        for &x in &frontier {
            match step.axis {
                Axis::Child => {
                    for &c in doc.children(x) {
                        if step.label.is_none_or(|l| doc.label(c) == l) {
                            next.push(c);
                        }
                    }
                }
                Axis::Descendant => {
                    for c in doc.descendants(x) {
                        if step.label.is_none_or(|l| doc.label(c) == l) {
                            next.push(c);
                        }
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    frontier
}

/// Emits one attribute cell for a node inside stored content; IDs are
/// reconstructed from the content root's ID through child ranks (possible
/// exactly for the parent-derivable schemes, §4.6).
fn attr_cell(doc: &Document, n: NodeId, attr: AttrKind, base_id: Option<&StructId>) -> Cell {
    match attr {
        AttrKind::Label => Cell::Label(doc.label(n)),
        AttrKind::Value => doc
            .value(n)
            .map(|v| Cell::Atom(v.clone()))
            .unwrap_or(Cell::Null),
        AttrKind::Content => Cell::Content(serialize_subtree(doc, n)),
        AttrKind::Id => {
            let Some(base) = base_id else {
                return Cell::Null;
            };
            // ranks from the content root down to n
            let mut ranks = Vec::new();
            let mut cur = n;
            while let Some(p) = doc.parent(cur) {
                ranks.push(doc.child_rank(cur) as usize);
                cur = p;
            }
            ranks.reverse();
            let mut id = base.clone();
            for rank in ranks {
                id = match id {
                    StructId::Ord(o) => StructId::Ord(o.child(rank)),
                    StructId::Dewey(d) => StructId::Dewey(d.child(rank)),
                    StructId::Seq(_) => return Cell::Null,
                };
            }
            Cell::Id(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_xml::{IdAssignment, IdScheme, Value};

    fn ids(doc: &Document) -> IdAssignment {
        IdAssignment::assign(doc, IdScheme::OrdPath)
    }

    /// items: a(item(name) item(name) other)
    fn provider() -> (MapProvider, Document) {
        let doc = Document::from_parens(r#"a(item(name="pen" mail) item(name="ink") other="x")"#);
        let ia = ids(&doc);
        let mut items = NestedRelation::empty(Schema::atoms(&[("item.ID", AttrKind::Id)]));
        let mut names = NestedRelation::empty(Schema::atoms(&[
            ("name.ID", AttrKind::Id),
            ("name.V", AttrKind::Value),
        ]));
        for n in doc.iter() {
            match doc.label(n).as_str() {
                "item" => items.rows.push(Row::new(vec![Cell::Id(ia.id(n).clone())])),
                "name" => names.rows.push(Row::new(vec![
                    Cell::Id(ia.id(n).clone()),
                    doc.value(n)
                        .map(|v| Cell::Atom(v.clone()))
                        .unwrap_or(Cell::Null),
                ])),
                _ => {}
            }
        }
        let mut p = MapProvider::default();
        p.insert("items", items);
        p.insert("names", names);
        (p, doc)
    }

    #[test]
    fn scan_select_project() {
        let (p, _) = provider();
        let plan = Plan::Project {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::Scan {
                    view: "names".into(),
                }),
                pred: Predicate::Value {
                    col: 1,
                    formula: smv_pattern::Formula::eq(Value::str("pen")),
                },
            }),
            cols: vec![1],
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].cells[0], Cell::Atom(Value::str("pen")));
    }

    #[test]
    fn structural_join_pairs_items_with_names() {
        let (p, _) = provider();
        let plan = Plan::StructJoin {
            left: Box::new(Plan::Scan {
                view: "items".into(),
            }),
            right: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Parent,
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema.len(), 3);
    }

    #[test]
    fn structural_join_skips_sort_on_sorted_inputs() {
        // identical results whether the inputs carry the sortedness tag
        let (p, _) = provider();
        let mut p_sorted = MapProvider::default();
        for name in ["items", "names"] {
            let mut rel = p.extent(name).unwrap().clone();
            rel.normalize();
            assert_eq!(rel.sorted_on, Some(0), "{name} extent is id-first");
            p_sorted.insert(name, rel);
        }
        let plan = Plan::StructJoin {
            left: Box::new(Plan::Scan {
                view: "items".into(),
            }),
            right: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Ancestor,
        };
        let a = execute(&plan, &p).unwrap();
        let b = execute(&plan, &p_sorted).unwrap();
        assert!(a.set_eq(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn struct_join_output_is_born_sorted_on_right_col() {
        let (p, _) = provider();
        let plan = Plan::StructJoin {
            left: Box::new(Plan::Scan {
                view: "items".into(),
            }),
            right: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Parent,
        };
        let out = eval(&plan, &p, &mut Profiler::unprofiled(), &ExecOpts::default()).unwrap();
        assert_eq!(out.sorted_on, Some(1), "sorted on the right join column");
        // rows really are in document order on that column
        let ids: Vec<&StructId> = out
            .rows
            .iter()
            .map(|r| match &r.cells[1] {
                Cell::Id(id) => id,
                other => panic!("expected id, got {other}"),
            })
            .collect();
        assert!(ids
            .windows(2)
            .all(|w| w[0].cmp_doc_order(w[1]) != Some(std::cmp::Ordering::Greater)));
    }

    #[test]
    fn id_join_on_equal_ids() {
        let (p, _) = provider();
        let plan = Plan::IdJoin {
            left: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            right: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            lcol: 0,
            rcol: 0,
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 2, "each name joins itself only");
    }

    #[test]
    fn union_dedups() {
        let (p, _) = provider();
        let plan = Plan::Union {
            inputs: vec![
                Plan::Scan {
                    view: "names".into(),
                },
                Plan::Scan {
                    view: "names".into(),
                },
            ],
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn nest_then_unnest_round_trips() {
        let (p, _) = provider();
        let nest = Plan::Nest {
            input: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            key_cols: vec![0],
            nested_cols: vec![1],
            name: "A".into(),
        };
        let nested = execute(&nest, &p).unwrap();
        assert_eq!(nested.len(), 2);
        assert!(matches!(nested.rows[0].cells[1], Cell::Table(_)));
        let unnest = Plan::Unnest {
            input: Box::new(nest),
            col: 1,
            outer: false,
        };
        let flat = execute(&unnest, &p).unwrap();
        let orig = execute(
            &Plan::Scan {
                view: "names".into(),
            },
            &p,
        )
        .unwrap();
        assert!(flat.set_eq(&orig));
    }

    #[test]
    fn outer_unnest_keeps_empty_groups() {
        let inner = Schema::atoms(&[("x.V", AttrKind::Value)]);
        let rel = NestedRelation::new(
            Schema {
                cols: vec![
                    Column {
                        name: Symbol::intern("k.ID"),
                        kind: ColKind::Atom(AttrKind::Id),
                    },
                    Column {
                        name: Symbol::intern("A"),
                        kind: ColKind::Nested(inner.clone()),
                    },
                ],
            },
            vec![Row::new(vec![
                Cell::Id(StructId::Seq(1)),
                Cell::Table(NestedRelation::empty(inner)),
            ])],
        );
        let mut p = MapProvider::default();
        p.insert("v", rel);
        let inner_plan = Plan::Unnest {
            input: Box::new(Plan::Scan { view: "v".into() }),
            col: 1,
            outer: true,
        };
        let out = execute(&inner_plan, &p).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.rows[0].cells[1].is_null());
        let dropped = execute(
            &Plan::Unnest {
                input: Box::new(Plan::Scan { view: "v".into() }),
                col: 1,
                outer: false,
            },
            &p,
        )
        .unwrap();
        assert!(dropped.is_empty());
    }

    #[test]
    fn navigate_content_extracts_descendants_with_ids() {
        // store content of <item> and navigate to name, reconstructing ids
        let doc = Document::from_parens(r#"a(item(name="pen"))"#);
        let ia = ids(&doc);
        let item = NodeId(1);
        let rel = NestedRelation::new(
            Schema::atoms(&[("item.ID", AttrKind::Id), ("item.C", AttrKind::Content)]),
            vec![Row::new(vec![
                Cell::Id(ia.id(item).clone()),
                Cell::Content(serialize_subtree(&doc, item)),
            ])],
        );
        let mut p = MapProvider::default();
        p.insert("v", rel);
        let plan = Plan::NavigateContent {
            input: Box::new(Plan::Scan { view: "v".into() }),
            content_col: 1,
            base_id_col: Some(0),
            steps: vec![NavStep {
                axis: Axis::Child,
                label: Some(smv_xml::Label::intern("name")),
            }],
            attrs: vec![AttrKind::Id, AttrKind::Value],
            optional: false,
            name: "name".into(),
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 1);
        // reconstructed id equals the real assignment
        assert_eq!(out.rows[0].cells[2], Cell::Id(ia.id(NodeId(2)).clone()));
        assert_eq!(out.rows[0].cells[3], Cell::Atom(Value::str("pen")));
    }

    #[test]
    fn navigate_content_optional_keeps_rows() {
        let doc = Document::from_parens("a(item)");
        let ia = ids(&doc);
        let rel = NestedRelation::new(
            Schema::atoms(&[("item.ID", AttrKind::Id), ("item.C", AttrKind::Content)]),
            vec![Row::new(vec![
                Cell::Id(ia.id(NodeId(1)).clone()),
                Cell::Content(serialize_subtree(&doc, NodeId(1))),
            ])],
        );
        let mut p = MapProvider::default();
        p.insert("v", rel);
        let mk = |optional| Plan::NavigateContent {
            input: Box::new(Plan::Scan { view: "v".into() }),
            content_col: 1,
            base_id_col: None,
            steps: vec![NavStep {
                axis: Axis::Descendant,
                label: Some(smv_xml::Label::intern("zz")),
            }],
            attrs: vec![AttrKind::Value],
            optional,
            name: "z".into(),
        };
        assert_eq!(execute(&mk(true), &p).unwrap().len(), 1);
        assert_eq!(execute(&mk(false), &p).unwrap().len(), 0);
    }

    #[test]
    fn derive_parent_id_walks_up() {
        let doc = Document::from_parens("a(b(c))");
        let ia = ids(&doc);
        let rel = NestedRelation::new(
            Schema::atoms(&[("c.ID", AttrKind::Id)]),
            vec![Row::new(vec![Cell::Id(ia.id(NodeId(2)).clone())])],
        );
        let mut p = MapProvider::default();
        p.insert("v", rel);
        let plan = Plan::DeriveParentId {
            input: Box::new(Plan::Scan { view: "v".into() }),
            col: 0,
            levels: 1,
            name: "b.ID".into(),
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.rows[0].cells[1], Cell::Id(ia.id(NodeId(1)).clone()));
        // two levels: root
        let plan2 = Plan::DeriveParentId {
            input: Box::new(Plan::Scan { view: "v".into() }),
            col: 0,
            levels: 2,
            name: "a.ID".into(),
        };
        let out2 = execute(&plan2, &p).unwrap();
        assert_eq!(out2.rows[0].cells[1], Cell::Id(ia.id(NodeId(0)).clone()));
        // past the root: null
        let plan3 = Plan::DeriveParentId {
            input: Box::new(Plan::Scan { view: "v".into() }),
            col: 0,
            levels: 5,
            name: "x".into(),
        };
        assert!(execute(&plan3, &p).unwrap().rows[0].cells[1].is_null());
    }

    #[test]
    fn parallel_struct_join_is_byte_identical_to_sequential() {
        // nodes in doc order: a0 b1 d2 d3 c4 d5 b6 d7; summary geometry
        // of a(b(d) c(d)): pre a0 b1 b/d2 c3 c/d4
        let doc = Document::from_parens(r#"a(b(d="1" d="2") c(d="3") b(d="4"))"#);
        let ia = ids(&doc);
        let mut lrel = NestedRelation::empty(Schema::atoms(&[("x.ID", AttrKind::Id)]));
        let mut rrel = NestedRelation::empty(Schema::atoms(&[
            ("d.ID", AttrKind::Id),
            ("d.V", AttrKind::Value),
        ]));
        for n in doc.iter() {
            match doc.label(n).as_str() {
                "b" | "c" => lrel.rows.push(Row::new(vec![Cell::Id(ia.id(n).clone())])),
                "d" => rrel.rows.push(Row::new(vec![
                    Cell::Id(ia.id(n).clone()),
                    doc.value(n).map(|v| Cell::Atom(v.clone())).unwrap(),
                ])),
                _ => {}
            }
        }
        lrel.normalize();
        rrel.normalize();
        let shard = |path: u32, pre, last_desc, depth, rows| ExtentShard {
            path: NodeId(path),
            pre,
            last_desc,
            depth,
            rows,
        };
        // left rows in doc order: b1, c4, b6 → paths b, c, b
        let lpart = ShardPartition {
            col: 0,
            token: (1, 1),
            shards: vec![shard(1, 1, 2, 1, vec![0, 2]), shard(3, 3, 4, 1, vec![1])],
            unclassified: vec![],
        };
        // right rows in doc order: d2, d3, d5, d7 → paths b/d, b/d, c/d, b/d
        let rpart = ShardPartition {
            col: 0,
            token: (1, 1),
            shards: vec![shard(2, 2, 2, 2, vec![0, 1, 3]), shard(4, 4, 4, 2, vec![2])],
            unclassified: vec![],
        };
        let mut sharded = MapProvider::default();
        sharded.insert_sharded("l", lrel.clone(), lpart);
        sharded.insert_sharded("r", rrel.clone(), rpart);
        let mut plain = MapProvider::default();
        plain.insert("l", lrel);
        plain.insert("r", rrel);
        for rel in [StructRel::Parent, StructRel::Ancestor] {
            let plan = Plan::StructJoin {
                left: Box::new(Plan::Scan { view: "l".into() }),
                right: Box::new(Plan::Scan { view: "r".into() }),
                lcol: 0,
                rcol: 0,
                rel,
            };
            // resolved so the parallel paths really run on the pool
            let opts = ExecOpts {
                threads: 3,
                min_par_rows: 0,
                ..ExecOpts::default()
            }
            .resolved();
            // pre-normalization outputs, byte for byte
            let seq = eval(
                &plan,
                &plain,
                &mut Profiler::unprofiled(),
                &ExecOpts::default(),
            )
            .unwrap();
            assert!(!seq.rows.is_empty());
            for p in [&sharded, &plain] {
                // sharded provider → per-path-pair tasks; plain → chunked
                let par = eval(&plan, p, &mut Profiler::unprofiled(), &opts).unwrap();
                assert_eq!(seq.rows, par.rows, "{rel:?} rows");
                assert_eq!(seq.sorted_on, par.sorted_on, "{rel:?} sortedness");
            }
            // profiles agree operator by operator
            let (_, prof_seq) = execute_profiled(&plan, &sharded).unwrap();
            let (_, prof_par) = execute_profiled_with(&plan, &sharded, &opts).unwrap();
            for (path, rows) in prof_seq.iter() {
                assert_eq!(prof_par.rows_at(path), Some(rows), "{rel:?} at `{path}`");
            }
        }
    }

    #[test]
    fn unknown_view_errors() {
        let p = MapProvider::default();
        let e = execute(&Plan::Scan { view: "zz".into() }, &p).unwrap_err();
        assert_eq!(e.kind(), &ExecError::UnknownView("zz".into()));
        assert_eq!(e.op_path(), Some(""), "root operator");
        assert_eq!(e.op_name(), Some("Scan(zz)"));
    }

    #[test]
    fn errors_locate_the_deepest_failing_operator() {
        // the bad scan sits at path 0.1 (select → join right)
        let plan = Plan::Select {
            input: Box::new(Plan::IdJoin {
                left: Box::new(Plan::Scan {
                    view: "items".into(),
                }),
                right: Box::new(Plan::Scan { view: "zz".into() }),
                lcol: 0,
                rcol: 0,
            }),
            pred: Predicate::NotNull { col: 0 },
        };
        let e = execute(&plan, &provider().0).unwrap_err();
        assert_eq!(e.kind(), &ExecError::UnknownView("zz".into()));
        assert_eq!(e.op_path(), Some("0.1"));
        assert_eq!(e.op_name(), Some("Scan(zz)"));
        let msg = e.to_string();
        assert!(msg.contains("unknown view `zz`"), "{msg}");
        assert!(msg.contains("0.1"), "{msg}");
        assert!(msg.contains("Scan(zz)"), "{msg}");
    }

    #[test]
    fn profiled_run_records_operator_times_and_morsels() {
        let prov = provider().0;
        let plan = Plan::Select {
            input: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            pred: Predicate::NotNull { col: 0 },
        };
        // explicit threads: 1 — a defaulted ExecOpts may be rerouted
        // through the pool by SMV_TEST_THREADS in debug CI runs
        let seq_opts = ExecOpts {
            threads: 1,
            ..ExecOpts::default()
        };
        let (_, prof) = execute_profiled_with(&plan, &prov, &seq_opts).unwrap();
        // every profiled operator has an inclusive wall time
        for (path, _) in prof.iter() {
            assert!(prof.time_ns_at(path).is_some(), "no time at `{path}`");
        }
        // sequential run: no operator fanned out morsels
        assert_eq!(prof.morsels_at(""), None);
        // forced-parallel run: the selection splits into ≥1 morsel, and
        // row counters stay identical to the sequential run
        let opts = ExecOpts {
            threads: 2,
            min_par_rows: 0,
            ..ExecOpts::default()
        };
        let (_, prof_par) = execute_profiled_with(&plan, &prov, &opts).unwrap();
        assert!(prof_par.morsels_at("").unwrap_or(0) >= 1, "select morsels");
        for (path, rows) in prof.iter() {
            assert_eq!(prof_par.rows_at(path), Some(rows), "rows at `{path}`");
        }
    }
}
