//! Plan execution against a view catalog.
//!
//! A materialize-everything evaluator: every operator consumes and
//! produces a [`NestedRelation`]. The hot path is engineered around three
//! ideas (see the crate docs):
//!
//! * **borrowed inputs** — `eval` returns `Cow<NestedRelation>`; a view
//!   scan borrows the catalog extent and operators clone only the cells
//!   that survive into their output, never whole input relations;
//! * **sort-based structural joins** — ancestor/parent predicates run the
//!   stack-tree merge over inputs sorted once in document order, with
//!   sortedness tracked on [`NestedRelation`] so chained joins (and scans
//!   of normalized extents) skip re-sorting; the nested-loop variant
//!   survives only as a test oracle and ablation baseline;
//! * **hashed row keys** — ID-equality joins index `&StructId` directly
//!   and grouping hashes rows structurally; no cell is ever encoded into
//!   a string to be compared.

use crate::feedback::ExecProfile;
use crate::plan::{NavStep, Plan, Predicate};
use crate::relation::{AttrKind, Cell, ColKind, Column, NestedRelation, Row, Schema};
#[cfg(test)]
use crate::struct_join::StructRel;
use crate::struct_join::{doc_sorted_indices, stack_tree_join_presorted};
use smv_pattern::Axis;
use smv_xml::{parse_document, serialize_subtree, Document, NodeId, StructId, Symbol};
use std::borrow::Cow;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Supplies view extents by name.
pub trait ViewProvider {
    /// The materialized extent of `name`, if the view exists.
    fn extent(&self, name: &str) -> Option<&NestedRelation>;
}

/// A trivial provider backed by a map (tests, examples).
#[derive(Default)]
pub struct MapProvider {
    map: HashMap<String, NestedRelation>,
}

impl MapProvider {
    /// Registers a view extent.
    pub fn insert(&mut self, name: &str, rel: NestedRelation) {
        self.map.insert(name.to_owned(), rel);
    }
}

impl ViewProvider for MapProvider {
    fn extent(&self, name: &str) -> Option<&NestedRelation> {
        self.map.get(name)
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The plan scans a view the provider does not know.
    UnknownView(String),
    /// Union branches with different schemas, bad column index, etc.
    Schema(String),
    /// A cell had an unexpected type for the operator.
    Type(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownView(v) => write!(f, "unknown view `{v}`"),
            ExecError::Schema(m) => write!(f, "schema error: {m}"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes `plan` against `views`, returning a normalized relation.
pub fn execute(plan: &Plan, views: &dyn ViewProvider) -> Result<NestedRelation, ExecError> {
    let mut rel = eval(plan, views, &mut None)?.into_owned();
    rel.normalize();
    Ok(rel)
}

/// Executes `plan` and records every operator's actual output row count
/// into an [`ExecProfile`] keyed by its positional path in the plan tree.
///
/// Profiling is counters-only — no row is copied or re-walked — so the
/// hot path is identical to [`execute`]'s; the unprofiled entry point
/// passes a `None` profiler and pays one branch per operator. The root
/// entry is overwritten after the final normalization so it always equals
/// the returned relation's size.
pub fn execute_profiled(
    plan: &Plan,
    views: &dyn ViewProvider,
) -> Result<(NestedRelation, ExecProfile), ExecError> {
    let mut prof = Some(Profiler {
        profile: ExecProfile::default(),
        path: Vec::new(),
    });
    let mut rel = eval(plan, views, &mut prof)?.into_owned();
    rel.normalize();
    let mut profile = prof.expect("profiler survives eval").profile;
    profile.record(&[], rel.len() as u64);
    Ok((rel, profile))
}

/// In-flight profiling state: the profile under construction plus the
/// positional path of the operator currently being evaluated.
struct Profiler {
    profile: ExecProfile,
    path: Vec<u32>,
}

/// Evaluates one operator and records its output size when profiling.
fn eval<'a>(
    plan: &Plan,
    views: &'a dyn ViewProvider,
    prof: &mut Option<Profiler>,
) -> Result<Cow<'a, NestedRelation>, ExecError> {
    let out = eval_op(plan, views, prof)?;
    if let Some(p) = prof {
        p.profile.record(&p.path, out.len() as u64);
    }
    Ok(out)
}

/// Evaluates the `idx`-th input of the current operator.
fn eval_child<'a>(
    plan: &Plan,
    views: &'a dyn ViewProvider,
    prof: &mut Option<Profiler>,
    idx: u32,
) -> Result<Cow<'a, NestedRelation>, ExecError> {
    if let Some(p) = prof {
        p.path.push(idx);
    }
    let r = eval(plan, views, prof);
    if let Some(p) = prof {
        p.path.pop();
    }
    r
}

fn eval_op<'a>(
    plan: &Plan,
    views: &'a dyn ViewProvider,
    prof: &mut Option<Profiler>,
) -> Result<Cow<'a, NestedRelation>, ExecError> {
    match plan {
        Plan::Scan { view } => views
            .extent(view)
            .map(Cow::Borrowed)
            .ok_or_else(|| ExecError::UnknownView(view.clone())),
        Plan::Select { input, pred } => {
            let rel = eval_child(input, views, prof, 0)?;
            let keep = |row: &Row| -> Result<bool, ExecError> {
                match pred {
                    Predicate::Value { col, formula } => match &row.cells[*col] {
                        Cell::Atom(v) => Ok(formula.accepts(v)),
                        Cell::Null => Ok(false),
                        other => Err(ExecError::Type(format!(
                            "value predicate on non-atom cell {other}"
                        ))),
                    },
                    Predicate::LabelEq { col, label } => match &row.cells[*col] {
                        Cell::Label(l) => Ok(l == label),
                        Cell::Null => Ok(false),
                        other => Err(ExecError::Type(format!(
                            "label predicate on non-label cell {other}"
                        ))),
                    },
                    Predicate::NotNull { col } => Ok(!row.cells[*col].is_null()),
                }
            };
            // filtering preserves row order, hence sortedness
            match rel {
                Cow::Owned(mut rel) => {
                    let mut rows = Vec::with_capacity(rel.rows.len());
                    for r in rel.rows {
                        if keep(&r)? {
                            rows.push(r);
                        }
                    }
                    rel.rows = rows;
                    Ok(Cow::Owned(rel))
                }
                Cow::Borrowed(rel) => {
                    let mut rows = Vec::new();
                    for r in &rel.rows {
                        if keep(r)? {
                            rows.push(r.clone());
                        }
                    }
                    let mut out = NestedRelation::new(rel.schema.clone(), rows);
                    out.sorted_on = rel.sorted_on;
                    Ok(Cow::Owned(out))
                }
            }
        }
        Plan::Project { input, cols } => {
            let rel = eval_child(input, views, prof, 0)?;
            for &c in cols {
                if c >= rel.schema.len() {
                    return Err(ExecError::Schema(format!(
                        "project column {c} out of range (schema {})",
                        rel.schema
                    )));
                }
            }
            let schema = Schema {
                cols: cols.iter().map(|&c| rel.schema.cols[c].clone()).collect(),
            };
            let sorted_on = rel
                .sorted_on
                .and_then(|s| cols.iter().position(|&c| c == s));
            let distinct = {
                let mut seen = vec![false; rel.schema.len()];
                cols.iter().all(|&c| !std::mem::replace(&mut seen[c], true))
            };
            let rows: Vec<Row> = match rel {
                // all-distinct projection over an owned input moves cells
                Cow::Owned(rel) if distinct => rel
                    .rows
                    .into_iter()
                    .map(|r| {
                        let mut taken: Vec<Option<Cell>> = r.cells.into_iter().map(Some).collect();
                        Row::new(
                            cols.iter()
                                .map(|&c| taken[c].take().expect("distinct cols"))
                                .collect(),
                        )
                    })
                    .collect(),
                rel => rel
                    .rows
                    .iter()
                    .map(|r| Row::new(cols.iter().map(|&c| r.cells[c].clone()).collect()))
                    .collect(),
            };
            let mut out = NestedRelation::new(schema, rows);
            out.sorted_on = sorted_on;
            Ok(Cow::Owned(out))
        }
        Plan::IdJoin {
            left,
            right,
            lcol,
            rcol,
        } => {
            let l = eval_child(left, views, prof, 0)?;
            let r = eval_child(right, views, prof, 1)?;
            let mut index: HashMap<&StructId, Vec<usize>> = HashMap::new();
            for (i, row) in l.rows.iter().enumerate() {
                if let Cell::Id(id) = &row.cells[*lcol] {
                    index.entry(id).or_default().push(i);
                }
            }
            let width = l.schema.len() + r.schema.len();
            let mut rows = Vec::new();
            for rrow in &r.rows {
                if let Cell::Id(id) = &rrow.cells[*rcol] {
                    if let Some(ls) = index.get(id) {
                        for &li in ls {
                            let mut cells = Vec::with_capacity(width);
                            cells.extend(l.rows[li].cells.iter().cloned());
                            cells.extend(rrow.cells.iter().cloned());
                            rows.push(Row::new(cells));
                        }
                    }
                }
            }
            let mut out = NestedRelation::new(concat_schemas(&l.schema, &r.schema), rows);
            // output follows the right side's row order
            out.sorted_on = r.sorted_on.map(|c| l.schema.len() + c);
            Ok(Cow::Owned(out))
        }
        Plan::StructJoin {
            left,
            right,
            lcol,
            rcol,
            rel,
        } => {
            let l = eval_child(left, views, prof, 0)?;
            let r = eval_child(right, views, prof, 1)?;
            let (lids, lrows) = gather_ids_sorted(&l, *lcol);
            let (rids, rrows) = gather_ids_sorted(&r, *rcol);
            let pairs = stack_tree_join_presorted(&lids, &rids, *rel);
            let width = l.schema.len() + r.schema.len();
            let mut rows = Vec::with_capacity(pairs.len());
            for (a, b) in pairs {
                let mut cells = Vec::with_capacity(width);
                cells.extend(l.rows[lrows[a]].cells.iter().cloned());
                cells.extend(r.rows[rrows[b]].cells.iter().cloned());
                rows.push(Row::new(cells));
            }
            let mut out = NestedRelation::new(concat_schemas(&l.schema, &r.schema), rows);
            // the merge emits pairs grouped by the right side in document
            // order, so the joined relation is born sorted on `rcol`
            out.sorted_on = Some(l.schema.len() + *rcol);
            Ok(Cow::Owned(out))
        }
        Plan::Union { inputs } => {
            let mut it = inputs.iter();
            let first = it
                .next()
                .ok_or_else(|| ExecError::Schema("empty union".into()))?;
            let mut acc = eval_child(first, views, prof, 0)?.into_owned();
            for (i, p) in it.enumerate() {
                let r = eval_child(p, views, prof, i as u32 + 1)?;
                if r.schema.cols.len() != acc.schema.cols.len() {
                    return Err(ExecError::Schema(format!(
                        "union arity mismatch: {} vs {}",
                        acc.schema, r.schema
                    )));
                }
                acc.rows.extend(r.into_owned().rows);
            }
            acc.normalize();
            Ok(Cow::Owned(acc))
        }
        Plan::Nest {
            input,
            key_cols,
            nested_cols,
            name,
        } => {
            let rel = eval_child(input, views, prof, 0)?;
            let inner_schema = Schema {
                cols: nested_cols
                    .iter()
                    .map(|&c| rel.schema.cols[c].clone())
                    .collect(),
            };
            let mut schema = Schema {
                cols: key_cols
                    .iter()
                    .map(|&c| rel.schema.cols[c].clone())
                    .collect(),
            };
            schema.cols.push(Column {
                name: *name,
                kind: ColKind::Nested(inner_schema.clone()),
            });
            // group on hashed key rows (no string encoding), preserving
            // first-occurrence order
            let mut groups: HashMap<Row, usize> = HashMap::new();
            let mut order: Vec<(Row, Vec<Row>)> = Vec::new();
            for r in rel.rows.iter() {
                let key_row = Row::new(key_cols.iter().map(|&c| r.cells[c].clone()).collect());
                let slot = match groups.entry(key_row) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let i = order.len();
                        order.push((e.key().clone(), Vec::new()));
                        e.insert(i);
                        i
                    }
                };
                let inner = Row::new(nested_cols.iter().map(|&c| r.cells[c].clone()).collect());
                // all-null inner tuples encode "no binding" and are not
                // materialized in the group (Fig. 12's empty tables)
                if !inner.cells.iter().all(Cell::is_null) {
                    order[slot].1.push(inner);
                }
            }
            // groups surface in first-occurrence order, so sortedness on a
            // key column carries over to its position among the key columns
            let sorted_on = rel
                .sorted_on
                .and_then(|s| key_cols.iter().position(|&c| c == s));
            let rows = order
                .into_iter()
                .map(|(mut key_row, inner_rows)| {
                    key_row.cells.push(Cell::Table(NestedRelation::new(
                        inner_schema.clone(),
                        inner_rows,
                    )));
                    key_row
                })
                .collect();
            let mut out = NestedRelation::new(schema, rows);
            out.sorted_on = sorted_on;
            Ok(Cow::Owned(out))
        }
        Plan::Unnest { input, col, outer } => {
            let rel = eval_child(input, views, prof, 0)?.into_owned();
            let ColKind::Nested(inner_schema) = rel.schema.cols[*col].kind.clone() else {
                return Err(ExecError::Type(format!(
                    "unnest on non-nested column {}",
                    rel.schema.cols[*col].name
                )));
            };
            let mut schema = Schema { cols: Vec::new() };
            for (i, c) in rel.schema.cols.iter().enumerate() {
                if i == *col {
                    schema.cols.extend(inner_schema.cols.iter().cloned());
                } else {
                    schema.cols.push(c.clone());
                }
            }
            let sorted_on = rel.sorted_on.and_then(|s| match s.cmp(col) {
                std::cmp::Ordering::Less => Some(s),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(s + inner_schema.len() - 1),
            });
            let mut rows = Vec::new();
            for r in rel.rows {
                let mut cells = r.cells;
                let Cell::Table(table) = std::mem::replace(&mut cells[*col], Cell::Null) else {
                    return Err(ExecError::Type("unnest on non-table cell".into()));
                };
                if table.rows.is_empty() {
                    if *outer {
                        rows.push(splice_owned(
                            cells,
                            *col,
                            vec![Cell::Null; inner_schema.len()],
                        ));
                    }
                    continue;
                }
                let last = table.rows.len() - 1;
                for (i, inner) in table.rows.into_iter().enumerate() {
                    if i == last {
                        rows.push(splice_owned(cells, *col, inner.cells));
                        break; // `cells` moved
                    }
                    rows.push(splice_cloned(&cells, *col, &inner.cells));
                }
            }
            let mut out = NestedRelation::new(schema, rows);
            out.sorted_on = sorted_on;
            Ok(Cow::Owned(out))
        }
        Plan::NavigateContent {
            input,
            content_col,
            base_id_col,
            steps,
            attrs,
            optional,
            name,
        } => {
            let rel = eval_child(input, views, prof, 0)?;
            let mut schema = rel.schema.clone();
            for a in attrs {
                schema.cols.push(Column {
                    name: Symbol::intern(&format!("{name}.{a}")),
                    kind: ColKind::Atom(*a),
                });
            }
            let sorted_on = rel.sorted_on;
            let mut rows = Vec::new();
            for r in rel.rows.iter() {
                let reached: Vec<(Document, Vec<NodeId>)> = match &r.cells[*content_col] {
                    Cell::Content(xml) => {
                        let doc = parse_document(xml).map_err(|e| {
                            ExecError::Type(format!("stored content is not parseable: {e}"))
                        })?;
                        let nodes = navigate(&doc, steps);
                        vec![(doc, nodes)]
                    }
                    Cell::Null => vec![],
                    other => {
                        return Err(ExecError::Type(format!(
                            "navigation on non-content cell {other}"
                        )))
                    }
                };
                let base_id = base_id_col.and_then(|c| match &r.cells[c] {
                    Cell::Id(id) => Some(id.clone()),
                    _ => None,
                });
                let mut any = false;
                for (doc, nodes) in &reached {
                    for &n in nodes {
                        any = true;
                        let mut cells = Vec::with_capacity(r.cells.len() + attrs.len());
                        cells.extend(r.cells.iter().cloned());
                        for a in attrs {
                            cells.push(attr_cell(doc, n, *a, base_id.as_ref()));
                        }
                        rows.push(Row::new(cells));
                    }
                }
                if !any && *optional {
                    let mut cells = Vec::with_capacity(r.cells.len() + attrs.len());
                    cells.extend(r.cells.iter().cloned());
                    cells.extend(std::iter::repeat_n(Cell::Null, attrs.len()));
                    rows.push(Row::new(cells));
                }
            }
            let mut out = NestedRelation::new(schema, rows);
            out.sorted_on = sorted_on;
            Ok(Cow::Owned(out))
        }
        Plan::DeriveParentId {
            input,
            col,
            levels,
            name,
        } => {
            let mut rel = eval_child(input, views, prof, 0)?.into_owned();
            rel.schema.cols.push(Column {
                name: *name,
                kind: ColKind::Atom(AttrKind::Id),
            });
            for r in &mut rel.rows {
                let cell = match &r.cells[*col] {
                    Cell::Id(id) => {
                        let mut cur = Some(id.clone());
                        for _ in 0..*levels {
                            cur = cur.and_then(|c| c.derive_parent());
                        }
                        cur.map(Cell::Id).unwrap_or(Cell::Null)
                    }
                    Cell::Null => Cell::Null,
                    other => {
                        return Err(ExecError::Type(format!(
                            "parent derivation on non-id cell {other}"
                        )))
                    }
                };
                r.cells.push(cell);
            }
            Ok(Cow::Owned(rel))
        }
        Plan::DupElim { input } => {
            let mut rel = eval_child(input, views, prof, 0)?.into_owned();
            rel.normalize();
            Ok(Cow::Owned(rel))
        }
    }
}

/// Splices `replacement` into `cells` at `at`, consuming both (no cell is
/// cloned).
fn splice_owned(cells: Vec<Cell>, at: usize, replacement: Vec<Cell>) -> Row {
    let mut out = Vec::with_capacity(cells.len() - 1 + replacement.len());
    let mut replacement = Some(replacement);
    for (i, c) in cells.into_iter().enumerate() {
        if i == at {
            out.extend(replacement.take().expect("splice position hit once"));
        } else {
            out.push(c);
        }
    }
    Row::new(out)
}

/// Splices `replacement` into a borrowed `cells` at `at`.
fn splice_cloned(cells: &[Cell], at: usize, replacement: &[Cell]) -> Row {
    let mut out = Vec::with_capacity(cells.len() - 1 + replacement.len());
    for (i, c) in cells.iter().enumerate() {
        if i == at {
            out.extend(replacement.iter().cloned());
        } else {
            out.push(c.clone());
        }
    }
    Row::new(out)
}

fn concat_schemas(a: &Schema, b: &Schema) -> Schema {
    let mut cols = a.cols.clone();
    cols.extend(b.cols.iter().cloned());
    Schema { cols }
}

/// Collects `(&id, row index)` for non-null ID cells of `col`, in document
/// order. When the relation is already sorted on `col` the pass is a plain
/// scan; otherwise the (id, row) pairs — not the rows — are sorted.
fn gather_ids_sorted(rel: &NestedRelation, col: usize) -> (Vec<&StructId>, Vec<usize>) {
    let mut ids = Vec::new();
    let mut rows = Vec::new();
    for (i, r) in rel.rows.iter().enumerate() {
        if let Cell::Id(id) = &r.cells[col] {
            ids.push(id);
            rows.push(i);
        }
    }
    if rel.sorted_on != Some(col) && !ids.is_empty() {
        let perm = doc_sorted_indices(&ids);
        ids = perm.iter().map(|&i| ids[i]).collect();
        rows = perm.iter().map(|&i| rows[i]).collect();
    }
    (ids, rows)
}

/// Runs the navigation steps from the content root.
fn navigate(doc: &Document, steps: &[NavStep]) -> Vec<NodeId> {
    let mut frontier = vec![doc.root()];
    for step in steps {
        let mut next = Vec::new();
        for &x in &frontier {
            match step.axis {
                Axis::Child => {
                    for &c in doc.children(x) {
                        if step.label.is_none_or(|l| doc.label(c) == l) {
                            next.push(c);
                        }
                    }
                }
                Axis::Descendant => {
                    for c in doc.descendants(x) {
                        if step.label.is_none_or(|l| doc.label(c) == l) {
                            next.push(c);
                        }
                    }
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    frontier
}

/// Emits one attribute cell for a node inside stored content; IDs are
/// reconstructed from the content root's ID through child ranks (possible
/// exactly for the parent-derivable schemes, §4.6).
fn attr_cell(doc: &Document, n: NodeId, attr: AttrKind, base_id: Option<&StructId>) -> Cell {
    match attr {
        AttrKind::Label => Cell::Label(doc.label(n)),
        AttrKind::Value => doc
            .value(n)
            .map(|v| Cell::Atom(v.clone()))
            .unwrap_or(Cell::Null),
        AttrKind::Content => Cell::Content(serialize_subtree(doc, n)),
        AttrKind::Id => {
            let Some(base) = base_id else {
                return Cell::Null;
            };
            // ranks from the content root down to n
            let mut ranks = Vec::new();
            let mut cur = n;
            while let Some(p) = doc.parent(cur) {
                ranks.push(doc.child_rank(cur) as usize);
                cur = p;
            }
            ranks.reverse();
            let mut id = base.clone();
            for rank in ranks {
                id = match id {
                    StructId::Ord(o) => StructId::Ord(o.child(rank)),
                    StructId::Dewey(d) => StructId::Dewey(d.child(rank)),
                    StructId::Seq(_) => return Cell::Null,
                };
            }
            Cell::Id(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_xml::{IdAssignment, IdScheme, Value};

    fn ids(doc: &Document) -> IdAssignment {
        IdAssignment::assign(doc, IdScheme::OrdPath)
    }

    /// items: a(item(name) item(name) other)
    fn provider() -> (MapProvider, Document) {
        let doc = Document::from_parens(r#"a(item(name="pen" mail) item(name="ink") other="x")"#);
        let ia = ids(&doc);
        let mut items = NestedRelation::empty(Schema::atoms(&[("item.ID", AttrKind::Id)]));
        let mut names = NestedRelation::empty(Schema::atoms(&[
            ("name.ID", AttrKind::Id),
            ("name.V", AttrKind::Value),
        ]));
        for n in doc.iter() {
            match doc.label(n).as_str() {
                "item" => items.rows.push(Row::new(vec![Cell::Id(ia.id(n).clone())])),
                "name" => names.rows.push(Row::new(vec![
                    Cell::Id(ia.id(n).clone()),
                    doc.value(n)
                        .map(|v| Cell::Atom(v.clone()))
                        .unwrap_or(Cell::Null),
                ])),
                _ => {}
            }
        }
        let mut p = MapProvider::default();
        p.insert("items", items);
        p.insert("names", names);
        (p, doc)
    }

    #[test]
    fn scan_select_project() {
        let (p, _) = provider();
        let plan = Plan::Project {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::Scan {
                    view: "names".into(),
                }),
                pred: Predicate::Value {
                    col: 1,
                    formula: smv_pattern::Formula::eq(Value::str("pen")),
                },
            }),
            cols: vec![1],
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].cells[0], Cell::Atom(Value::str("pen")));
    }

    #[test]
    fn structural_join_pairs_items_with_names() {
        let (p, _) = provider();
        let plan = Plan::StructJoin {
            left: Box::new(Plan::Scan {
                view: "items".into(),
            }),
            right: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Parent,
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema.len(), 3);
    }

    #[test]
    fn structural_join_skips_sort_on_sorted_inputs() {
        // identical results whether the inputs carry the sortedness tag
        let (p, _) = provider();
        let mut p_sorted = MapProvider::default();
        for name in ["items", "names"] {
            let mut rel = p.extent(name).unwrap().clone();
            rel.normalize();
            assert_eq!(rel.sorted_on, Some(0), "{name} extent is id-first");
            p_sorted.insert(name, rel);
        }
        let plan = Plan::StructJoin {
            left: Box::new(Plan::Scan {
                view: "items".into(),
            }),
            right: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Ancestor,
        };
        let a = execute(&plan, &p).unwrap();
        let b = execute(&plan, &p_sorted).unwrap();
        assert!(a.set_eq(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn struct_join_output_is_born_sorted_on_right_col() {
        let (p, _) = provider();
        let plan = Plan::StructJoin {
            left: Box::new(Plan::Scan {
                view: "items".into(),
            }),
            right: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Parent,
        };
        let out = eval(&plan, &p, &mut None).unwrap();
        assert_eq!(out.sorted_on, Some(1), "sorted on the right join column");
        // rows really are in document order on that column
        let ids: Vec<&StructId> = out
            .rows
            .iter()
            .map(|r| match &r.cells[1] {
                Cell::Id(id) => id,
                other => panic!("expected id, got {other}"),
            })
            .collect();
        assert!(ids
            .windows(2)
            .all(|w| w[0].cmp_doc_order(w[1]) != Some(std::cmp::Ordering::Greater)));
    }

    #[test]
    fn id_join_on_equal_ids() {
        let (p, _) = provider();
        let plan = Plan::IdJoin {
            left: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            right: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            lcol: 0,
            rcol: 0,
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 2, "each name joins itself only");
    }

    #[test]
    fn union_dedups() {
        let (p, _) = provider();
        let plan = Plan::Union {
            inputs: vec![
                Plan::Scan {
                    view: "names".into(),
                },
                Plan::Scan {
                    view: "names".into(),
                },
            ],
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn nest_then_unnest_round_trips() {
        let (p, _) = provider();
        let nest = Plan::Nest {
            input: Box::new(Plan::Scan {
                view: "names".into(),
            }),
            key_cols: vec![0],
            nested_cols: vec![1],
            name: "A".into(),
        };
        let nested = execute(&nest, &p).unwrap();
        assert_eq!(nested.len(), 2);
        assert!(matches!(nested.rows[0].cells[1], Cell::Table(_)));
        let unnest = Plan::Unnest {
            input: Box::new(nest),
            col: 1,
            outer: false,
        };
        let flat = execute(&unnest, &p).unwrap();
        let orig = execute(
            &Plan::Scan {
                view: "names".into(),
            },
            &p,
        )
        .unwrap();
        assert!(flat.set_eq(&orig));
    }

    #[test]
    fn outer_unnest_keeps_empty_groups() {
        let inner = Schema::atoms(&[("x.V", AttrKind::Value)]);
        let rel = NestedRelation::new(
            Schema {
                cols: vec![
                    Column {
                        name: Symbol::intern("k.ID"),
                        kind: ColKind::Atom(AttrKind::Id),
                    },
                    Column {
                        name: Symbol::intern("A"),
                        kind: ColKind::Nested(inner.clone()),
                    },
                ],
            },
            vec![Row::new(vec![
                Cell::Id(StructId::Seq(1)),
                Cell::Table(NestedRelation::empty(inner)),
            ])],
        );
        let mut p = MapProvider::default();
        p.insert("v", rel);
        let inner_plan = Plan::Unnest {
            input: Box::new(Plan::Scan { view: "v".into() }),
            col: 1,
            outer: true,
        };
        let out = execute(&inner_plan, &p).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.rows[0].cells[1].is_null());
        let dropped = execute(
            &Plan::Unnest {
                input: Box::new(Plan::Scan { view: "v".into() }),
                col: 1,
                outer: false,
            },
            &p,
        )
        .unwrap();
        assert!(dropped.is_empty());
    }

    #[test]
    fn navigate_content_extracts_descendants_with_ids() {
        // store content of <item> and navigate to name, reconstructing ids
        let doc = Document::from_parens(r#"a(item(name="pen"))"#);
        let ia = ids(&doc);
        let item = NodeId(1);
        let rel = NestedRelation::new(
            Schema::atoms(&[("item.ID", AttrKind::Id), ("item.C", AttrKind::Content)]),
            vec![Row::new(vec![
                Cell::Id(ia.id(item).clone()),
                Cell::Content(serialize_subtree(&doc, item)),
            ])],
        );
        let mut p = MapProvider::default();
        p.insert("v", rel);
        let plan = Plan::NavigateContent {
            input: Box::new(Plan::Scan { view: "v".into() }),
            content_col: 1,
            base_id_col: Some(0),
            steps: vec![NavStep {
                axis: Axis::Child,
                label: Some(smv_xml::Label::intern("name")),
            }],
            attrs: vec![AttrKind::Id, AttrKind::Value],
            optional: false,
            name: "name".into(),
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.len(), 1);
        // reconstructed id equals the real assignment
        assert_eq!(out.rows[0].cells[2], Cell::Id(ia.id(NodeId(2)).clone()));
        assert_eq!(out.rows[0].cells[3], Cell::Atom(Value::str("pen")));
    }

    #[test]
    fn navigate_content_optional_keeps_rows() {
        let doc = Document::from_parens("a(item)");
        let ia = ids(&doc);
        let rel = NestedRelation::new(
            Schema::atoms(&[("item.ID", AttrKind::Id), ("item.C", AttrKind::Content)]),
            vec![Row::new(vec![
                Cell::Id(ia.id(NodeId(1)).clone()),
                Cell::Content(serialize_subtree(&doc, NodeId(1))),
            ])],
        );
        let mut p = MapProvider::default();
        p.insert("v", rel);
        let mk = |optional| Plan::NavigateContent {
            input: Box::new(Plan::Scan { view: "v".into() }),
            content_col: 1,
            base_id_col: None,
            steps: vec![NavStep {
                axis: Axis::Descendant,
                label: Some(smv_xml::Label::intern("zz")),
            }],
            attrs: vec![AttrKind::Value],
            optional,
            name: "z".into(),
        };
        assert_eq!(execute(&mk(true), &p).unwrap().len(), 1);
        assert_eq!(execute(&mk(false), &p).unwrap().len(), 0);
    }

    #[test]
    fn derive_parent_id_walks_up() {
        let doc = Document::from_parens("a(b(c))");
        let ia = ids(&doc);
        let rel = NestedRelation::new(
            Schema::atoms(&[("c.ID", AttrKind::Id)]),
            vec![Row::new(vec![Cell::Id(ia.id(NodeId(2)).clone())])],
        );
        let mut p = MapProvider::default();
        p.insert("v", rel);
        let plan = Plan::DeriveParentId {
            input: Box::new(Plan::Scan { view: "v".into() }),
            col: 0,
            levels: 1,
            name: "b.ID".into(),
        };
        let out = execute(&plan, &p).unwrap();
        assert_eq!(out.rows[0].cells[1], Cell::Id(ia.id(NodeId(1)).clone()));
        // two levels: root
        let plan2 = Plan::DeriveParentId {
            input: Box::new(Plan::Scan { view: "v".into() }),
            col: 0,
            levels: 2,
            name: "a.ID".into(),
        };
        let out2 = execute(&plan2, &p).unwrap();
        assert_eq!(out2.rows[0].cells[1], Cell::Id(ia.id(NodeId(0)).clone()));
        // past the root: null
        let plan3 = Plan::DeriveParentId {
            input: Box::new(Plan::Scan { view: "v".into() }),
            col: 0,
            levels: 5,
            name: "x".into(),
        };
        assert!(execute(&plan3, &p).unwrap().rows[0].cells[1].is_null());
    }

    #[test]
    fn unknown_view_errors() {
        let p = MapProvider::default();
        let e = execute(&Plan::Scan { view: "zz".into() }, &p).unwrap_err();
        assert_eq!(e, ExecError::UnknownView("zz".into()));
    }
}
