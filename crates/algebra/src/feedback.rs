//! Runtime execution feedback: profiles, the feedback store, and
//! feedback-corrected scan cardinalities.
//!
//! The cost model of [`crate::cost`] is *static*: it estimates from
//! summary statistics and extent sizes, and its selectivity guesses
//! (saturated value sketches, independence across join inputs) can
//! misrank plans. This module closes the loop:
//!
//! * the executor's profiled entry point ([`crate::exec::execute_profiled`])
//!   emits an [`ExecProfile`] — the *actual* output row count of every
//!   operator, keyed by its stable [`OpPath`] into the plan tree;
//! * a [`FeedbackStore`] ingests profiles and maintains, with exponential
//!   decay across ingests, per-view scan row counts, join-selectivity
//!   memos and predicate-selectivity memos keyed by stable *plan-fragment
//!   fingerprints* (for a selection directly over a scan the key collapses
//!   to `(view, column, formula)`, for a base structural join to
//!   `(left scan, right scan, axis)` — deeper fragments key on the whole
//!   fragment);
//! * [`FeedbackCards`] decorates any [`CardSource`] with the corrected
//!   scan rows, and [`crate::cost::CostModel::with_feedback`] makes the
//!   model prefer memoized selectivities over static guesses.
//!
//! Because the rewriting enumeration is deterministic, a repeated query
//! re-enumerates the same plans and every shared fragment hits its memo —
//! the second ranking of a repeated query runs on corrected estimates.

use crate::cost::{CardSource, ScanCard};
use crate::plan::{Plan, Predicate};
use crate::struct_join::StructRel;
use std::collections::{HashMap, HashSet};

/// A stable address of one operator inside a plan tree: the child-index
/// chain from the root, rendered `"1.0"` (root = `""`). Child indexing:
/// unary operators have child `0`; joins have left `0` / right `1`;
/// union branches are numbered in order.
pub type OpPath = String;

pub(crate) fn path_key(path: &[u32]) -> OpPath {
    let mut s = String::new();
    for (i, p) in path.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        s.push_str(&p.to_string());
    }
    s
}

/// Per-operator observations of one plan execution: actual output row
/// counts (the feedback loop's input), plus — same keys — inclusive
/// per-operator wall time and the number of parallel morsels/tasks the
/// operator fanned out. Row counters are deterministic at every thread
/// count; times and morsel counts are runtime artifacts and take no part
/// in equivalence comparisons ([`ExecProfile::len`]/[`ExecProfile::iter`]
/// remain row-only).
#[derive(Clone, Debug, Default)]
pub struct ExecProfile {
    rows: HashMap<OpPath, u64>,
    time_ns: HashMap<OpPath, u64>,
    morsels: HashMap<OpPath, u64>,
}

impl ExecProfile {
    /// Records (or overwrites) the output rows of the operator at `path`.
    pub fn record(&mut self, path: &[u32], out_rows: u64) {
        self.rows.insert(path_key(path), out_rows);
    }

    /// Records (or overwrites) the operator's inclusive wall time —
    /// the operator together with its inputs, as a parent frame sees it.
    pub fn record_time(&mut self, path: &[u32], ns: u64) {
        self.time_ns.insert(path_key(path), ns);
    }

    /// Adds `n` parallel morsels/tasks executed by the operator at `path`.
    pub fn add_morsels(&mut self, path: &[u32], n: u64) {
        *self.morsels.entry(path_key(path)).or_insert(0) += n;
    }

    /// Output rows of the operator at `path`, if recorded.
    pub fn rows(&self, path: &[u32]) -> Option<u64> {
        self.rows.get(&path_key(path)).copied()
    }

    /// Output rows by rendered path string (`""` = the plan root).
    pub fn rows_at(&self, path: &str) -> Option<u64> {
        self.rows.get(path).copied()
    }

    /// Inclusive wall time (ns) by rendered path string, if recorded.
    pub fn time_ns_at(&self, path: &str) -> Option<u64> {
        self.time_ns.get(path).copied()
    }

    /// Parallel morsels/tasks fanned out by the operator at `path`;
    /// `None` when the operator ran sequentially.
    pub fn morsels_at(&self, path: &str) -> Option<u64> {
        self.morsels.get(path).copied()
    }

    /// Number of operators profiled.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates `(operator path, output rows)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.rows.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

// ---- stable plan-fragment fingerprints --------------------------------

/// FNV-1a, stable across runs and platforms (unlike `DefaultHasher`,
/// whose initial keys are an implementation detail).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_pred(h: &mut Fnv, pred: &Predicate) {
    match pred {
        Predicate::Value { col, formula } => {
            h.write(b"V");
            h.write_u64(*col as u64);
            h.write(formula.to_string().as_bytes());
        }
        Predicate::LabelEq { col, label } => {
            h.write(b"L");
            h.write_u64(*col as u64);
            h.write(label.as_str().as_bytes());
        }
        Predicate::NotNull { col } => {
            h.write(b"N");
            h.write_u64(*col as u64);
        }
    }
}

fn hash_plan(h: &mut Fnv, p: &Plan) {
    match p {
        Plan::Scan { view } => {
            h.write(b"scan");
            h.write(view.as_bytes());
        }
        Plan::Select { input, pred } => {
            h.write(b"sel");
            hash_pred(h, pred);
            hash_plan(h, input);
        }
        Plan::Project { input, cols } => {
            h.write(b"proj");
            for &c in cols {
                h.write_u64(c as u64);
            }
            hash_plan(h, input);
        }
        Plan::IdJoin {
            left,
            right,
            lcol,
            rcol,
        } => {
            h.write(b"idj");
            h.write_u64(*lcol as u64);
            h.write_u64(*rcol as u64);
            hash_plan(h, left);
            hash_plan(h, right);
        }
        Plan::StructJoin {
            left,
            right,
            lcol,
            rcol,
            rel,
        } => {
            h.write(match rel {
                StructRel::Parent => b"sjp",
                StructRel::Ancestor => b"sja",
            });
            h.write_u64(*lcol as u64);
            h.write_u64(*rcol as u64);
            hash_plan(h, left);
            hash_plan(h, right);
        }
        Plan::Union { inputs } => {
            h.write(b"uni");
            h.write_u64(inputs.len() as u64);
            for i in inputs {
                hash_plan(h, i);
            }
        }
        Plan::Nest {
            input,
            key_cols,
            nested_cols,
            name,
        } => {
            h.write(b"nest");
            for &c in key_cols {
                h.write_u64(c as u64);
            }
            h.write(b"/");
            for &c in nested_cols {
                h.write_u64(c as u64);
            }
            h.write(name.as_str().as_bytes());
            hash_plan(h, input);
        }
        Plan::Unnest { input, col, outer } => {
            h.write(if *outer { b"unno" } else { b"unn." });
            h.write_u64(*col as u64);
            hash_plan(h, input);
        }
        Plan::NavigateContent {
            input,
            content_col,
            base_id_col,
            steps,
            attrs,
            optional,
            name,
        } => {
            h.write(if *optional { b"navo" } else { b"nav." });
            h.write_u64(*content_col as u64);
            h.write_u64(base_id_col.map(|c| c as u64 + 1).unwrap_or(0));
            for s in steps {
                h.write(match s.axis {
                    smv_pattern::Axis::Child => b"/",
                    smv_pattern::Axis::Descendant => b"%",
                });
                if let Some(l) = s.label {
                    h.write(l.as_str().as_bytes());
                }
            }
            h.write_u64(attrs.len() as u64);
            h.write(name.as_str().as_bytes());
            hash_plan(h, input);
        }
        Plan::DeriveParentId {
            input, col, levels, ..
        } => {
            h.write(b"vid");
            h.write_u64(*col as u64);
            h.write_u64(*levels as u64);
            hash_plan(h, input);
        }
        Plan::DupElim { input } => {
            h.write(b"dup");
            hash_plan(h, input);
        }
    }
}

/// A stable fingerprint of a plan fragment. Two structurally identical
/// fragments (same operators, views, columns, formulas) always agree, in
/// this run and the next.
pub fn plan_fingerprint(p: &Plan) -> u64 {
    let mut h = Fnv::new();
    hash_plan(&mut h, p);
    h.finish()
}

fn select_key(input: &Plan, pred: &Predicate) -> u64 {
    let mut h = Fnv::new();
    h.write(b"SELKEY");
    hash_pred(&mut h, pred);
    hash_plan(&mut h, input);
    h.finish()
}

fn join_key(left: &Plan, right: &Plan, lcol: usize, rcol: usize, rel: Option<StructRel>) -> u64 {
    let mut h = Fnv::new();
    h.write(match rel {
        None => b"IDJKEY",
        Some(StructRel::Parent) => b"SJPKEY",
        Some(StructRel::Ancestor) => b"SJAKEY",
    });
    h.write_u64(lcol as u64);
    h.write_u64(rcol as u64);
    hash_plan(&mut h, left);
    hash_plan(&mut h, right);
    h.finish()
}

// ---- the feedback store ------------------------------------------------

/// Default EWMA weight of a fresh observation.
const DEFAULT_DECAY: f64 = 0.5;

/// A relaxed atomic event counter that clones by value, so the store's
/// `derive(Clone)` keeps working while `&self` lookup methods can count.
#[derive(Debug, Default)]
struct EventCounter(std::sync::atomic::AtomicU64);

impl EventCounter {
    fn bump(&self) {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn add(&self, n: u64) {
        self.0.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }
    fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Clone for EventCounter {
    fn clone(&self) -> Self {
        EventCounter(std::sync::atomic::AtomicU64::new(self.get()))
    }
}

/// A snapshot of the store's event counters — the "is the adaptive loop
/// actually firing" numbers, also exported to a registry by
/// [`FeedbackStore::export_metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackStats {
    /// Lookups that found a memo (scan rows, fragment rows, selection or
    /// join selectivity).
    pub hits: u64,
    /// Lookups that found nothing — the cost model fell back to its
    /// static guess.
    pub misses: u64,
    /// EWMA blends onto an *existing* memo entry: each one decayed an
    /// older observation toward a fresh one.
    pub decays: u64,
    /// Memo entries dropped by
    /// [`FeedbackStore::invalidate_fingerprints_touching`].
    pub invalidated: u64,
    /// Profiles ingested.
    pub ingests: u64,
}

/// Accumulates execution feedback across queries: per-view actual scan
/// rows, selection pass-rates and join selectivities, each maintained as
/// an exponentially-decayed moving average over ingests so drifting data
/// ages out stale observations.
#[derive(Clone, Debug)]
pub struct FeedbackStore {
    /// EWMA weight of the newest observation (`1.0` = keep only the
    /// latest, `0.0` would ignore new evidence).
    decay: f64,
    scans: HashMap<String, f64>,
    selects: HashMap<u64, f64>,
    joins: HashMap<u64, f64>,
    /// Decayed actual *output rows* per plan-fragment fingerprint — every
    /// profiled operator, not just scans/selections/joins. This is what
    /// the executor's adaptive parallelize-or-not gate reads (via
    /// [`ParHints`]): input sizes are exact for materialized inputs, but
    /// whether an operator is worth fanning out also depends on how much
    /// it produces.
    frags: HashMap<u64, f64>,
    /// Reverse index: for every view, the fingerprint keys of memo
    /// entries (selections, joins, fragments) whose plan fragment scans
    /// it — what [`FeedbackStore::invalidate_fingerprints_touching`]
    /// walks when a view's extent changes under maintenance.
    by_view: HashMap<String, HashSet<u64>>,
    ingests: u64,
    hits: EventCounter,
    misses: EventCounter,
    decays: EventCounter,
    invalidated: EventCounter,
}

impl Default for FeedbackStore {
    fn default() -> Self {
        FeedbackStore::new()
    }
}

impl FeedbackStore {
    /// An empty store with the default decay.
    pub fn new() -> FeedbackStore {
        FeedbackStore::with_decay(DEFAULT_DECAY)
    }

    /// An empty store blending each new observation with weight `decay`
    /// (clamped to `(0, 1]`).
    pub fn with_decay(decay: f64) -> FeedbackStore {
        FeedbackStore {
            decay: decay.clamp(f64::MIN_POSITIVE, 1.0),
            scans: HashMap::new(),
            selects: HashMap::new(),
            joins: HashMap::new(),
            frags: HashMap::new(),
            by_view: HashMap::new(),
            ingests: 0,
            hits: EventCounter::default(),
            misses: EventCounter::default(),
            decays: EventCounter::default(),
            invalidated: EventCounter::default(),
        }
    }

    /// Event counters since construction (hits, misses, decays, …).
    pub fn stats(&self) -> FeedbackStats {
        FeedbackStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            decays: self.decays.get(),
            invalidated: self.invalidated.get(),
            ingests: self.ingests,
        }
    }

    /// Writes the event counters and memo sizes into `reg` under the
    /// `feedback.*` namespace, so a metrics snapshot answers "is the
    /// adaptive loop firing" without rerunning the feedback tests.
    pub fn export_metrics(&self, reg: &smv_obs::MetricsRegistry) {
        let s = self.stats();
        reg.gauge_set("feedback.hits", s.hits as i64);
        reg.gauge_set("feedback.misses", s.misses as i64);
        reg.gauge_set("feedback.decays", s.decays as i64);
        reg.gauge_set("feedback.invalidated", s.invalidated as i64);
        reg.gauge_set("feedback.ingests", s.ingests as i64);
        reg.gauge_set("feedback.memo_entries", self.len() as i64);
    }

    /// Number of profiles ingested.
    pub fn ingests(&self) -> u64 {
        self.ingests
    }

    /// True when no feedback has been ingested.
    pub fn is_empty(&self) -> bool {
        self.ingests == 0
    }

    /// Number of memo entries (scans + selections + joins).
    pub fn len(&self) -> usize {
        self.scans.len() + self.selects.len() + self.joins.len()
    }

    fn blend(decay: f64, slot: &mut HashMap<u64, f64>, key: u64, obs: f64, decays: &EventCounter) {
        slot.entry(key)
            .and_modify(|v| {
                *v = decay * obs + (1.0 - decay) * *v;
                decays.bump();
            })
            .or_insert(obs);
    }

    /// Counts a memo lookup, both locally and (when tracing is enabled)
    /// into the global registry.
    fn count_lookup(&self, hit: bool) {
        if hit {
            self.hits.bump();
            smv_obs::counter_add("feedback.lookup.hit", 1);
        } else {
            self.misses.bump();
            smv_obs::counter_add("feedback.lookup.miss", 1);
        }
    }

    /// Folds one execution profile into the memos. The profile must come
    /// from executing exactly `plan` (operator paths are positional).
    pub fn ingest(&mut self, plan: &Plan, profile: &ExecProfile) {
        let mut path = Vec::new();
        self.walk(plan, profile, &mut path);
        self.ingests += 1;
    }

    /// Records `key` in the reverse index under every view of the
    /// fragment it was derived from.
    fn index_key(&mut self, key: u64, views: &[String]) {
        for v in views {
            self.by_view.entry(v.clone()).or_default().insert(key);
        }
    }

    /// Walks one fragment: recurses first (collecting the set of views
    /// the fragment scans on the way up), then folds the fragment's
    /// observations into the memos, indexing every created key by those
    /// views. Returns the fragment's view set.
    fn walk(&mut self, plan: &Plan, profile: &ExecProfile, path: &mut Vec<u32>) -> Vec<String> {
        let views: Vec<String> = match plan {
            Plan::Scan { view } => vec![view.clone()],
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Nest { input, .. }
            | Plan::Unnest { input, .. }
            | Plan::NavigateContent { input, .. }
            | Plan::DeriveParentId { input, .. }
            | Plan::DupElim { input } => {
                path.push(0);
                let v = self.walk(input, profile, path);
                path.pop();
                v
            }
            Plan::IdJoin { left, right, .. } | Plan::StructJoin { left, right, .. } => {
                path.push(0);
                let mut v = self.walk(left, profile, path);
                path.pop();
                path.push(1);
                let r = self.walk(right, profile, path);
                path.pop();
                for x in r {
                    if !v.contains(&x) {
                        v.push(x);
                    }
                }
                v
            }
            Plan::Union { inputs } => {
                let mut v: Vec<String> = Vec::new();
                for (i, p) in inputs.iter().enumerate() {
                    path.push(i as u32);
                    let b = self.walk(p, profile, path);
                    path.pop();
                    for x in b {
                        if !v.contains(&x) {
                            v.push(x);
                        }
                    }
                }
                v
            }
        };
        let out = profile.rows(path);
        if let Some(out) = out {
            let key = plan_fingerprint(plan);
            Self::blend(self.decay, &mut self.frags, key, out as f64, &self.decays);
            self.index_key(key, &views);
        }
        let child = |path: &mut Vec<u32>, i: u32, profile: &ExecProfile| {
            path.push(i);
            let r = profile.rows(path);
            path.pop();
            r
        };
        match plan {
            Plan::Scan { view } => {
                if let Some(out) = out {
                    let decay = self.decay;
                    let decays = &self.decays;
                    self.scans
                        .entry(view.clone())
                        .and_modify(|v| {
                            *v = decay * out as f64 + (1.0 - decay) * *v;
                            decays.bump();
                        })
                        .or_insert(out as f64);
                }
            }
            Plan::Select { input, pred } => {
                if let (Some(out), Some(inp)) = (out, child(path, 0, profile)) {
                    if inp > 0 {
                        let key = select_key(input, pred);
                        Self::blend(
                            self.decay,
                            &mut self.selects,
                            key,
                            out as f64 / inp as f64,
                            &self.decays,
                        );
                        self.index_key(key, &views);
                    }
                }
            }
            Plan::IdJoin {
                left,
                right,
                lcol,
                rcol,
            } => {
                if let (Some(out), Some(l), Some(r)) =
                    (out, child(path, 0, profile), child(path, 1, profile))
                {
                    if l > 0 && r > 0 {
                        let key = join_key(left, right, *lcol, *rcol, None);
                        Self::blend(
                            self.decay,
                            &mut self.joins,
                            key,
                            out as f64 / (l as f64 * r as f64),
                            &self.decays,
                        );
                        self.index_key(key, &views);
                    }
                }
            }
            Plan::StructJoin {
                left,
                right,
                lcol,
                rcol,
                rel,
            } => {
                if let (Some(out), Some(l), Some(r)) =
                    (out, child(path, 0, profile), child(path, 1, profile))
                {
                    if l > 0 && r > 0 {
                        let key = join_key(left, right, *lcol, *rcol, Some(*rel));
                        Self::blend(
                            self.decay,
                            &mut self.joins,
                            key,
                            out as f64 / (l as f64 * r as f64),
                            &self.decays,
                        );
                        self.index_key(key, &views);
                    }
                }
            }
            _ => {}
        }
        views
    }

    /// Drops every memo derived from a plan fragment scanning any of
    /// `views` — decayed scan rows, selection pass-rates, join
    /// selectivities and per-fragment measured output rows — and returns
    /// how many entries were removed. Call after view maintenance: an
    /// extent that changed invalidates observations made against its old
    /// contents, while memos over untouched views survive and keep
    /// steering plans.
    pub fn invalidate_fingerprints_touching<S: AsRef<str>>(&mut self, views: &[S]) -> usize {
        let mut keys: HashSet<u64> = HashSet::new();
        let mut removed = 0;
        for v in views {
            let v = v.as_ref();
            if self.scans.remove(v).is_some() {
                removed += 1;
            }
            if let Some(ks) = self.by_view.remove(v) {
                keys.extend(ks);
            }
        }
        for k in keys {
            removed += usize::from(self.selects.remove(&k).is_some());
            removed += usize::from(self.joins.remove(&k).is_some());
            removed += usize::from(self.frags.remove(&k).is_some());
        }
        self.invalidated.add(removed as u64);
        smv_obs::counter_add("feedback.invalidated", removed as u64);
        removed
    }

    /// Decayed actual scan rows observed for `view`.
    pub fn scan_rows(&self, view: &str) -> Option<f64> {
        let r = self.scans.get(view).copied();
        self.count_lookup(r.is_some());
        r
    }

    /// Decayed actual *output rows* observed for the plan fragment
    /// `fragment` (any operator — keyed by [`plan_fingerprint`]).
    pub fn measured_rows(&self, fragment: &Plan) -> Option<f64> {
        let r = self.frags.get(&plan_fingerprint(fragment)).copied();
        self.count_lookup(r.is_some());
        r
    }

    /// Memoized pass-rate of selecting `pred` over `input`.
    pub fn select_selectivity(&self, input: &Plan, pred: &Predicate) -> Option<f64> {
        let r = self.selects.get(&select_key(input, pred)).copied();
        self.count_lookup(r.is_some());
        r
    }

    /// Memoized join selectivity (`out / (|left| · |right|)`) of joining
    /// `left` and `right` on `(lcol, rcol)`; `rel = None` is `⋈_=`.
    pub fn join_selectivity(
        &self,
        left: &Plan,
        right: &Plan,
        lcol: usize,
        rcol: usize,
        rel: Option<StructRel>,
    ) -> Option<f64> {
        let r = self
            .joins
            .get(&join_key(left, right, lcol, rcol, rel))
            .copied();
        self.count_lookup(r.is_some());
        r
    }

    // ---- persistence --------------------------------------------------
    //
    // The memo keys are FNV-1a fingerprints, stable across runs and
    // platforms by construction (see `Fnv` above), so persisting the raw
    // u64 keys is sound: a warm-started session fingerprints its plans to
    // the same values and hits the restored memos immediately.

    /// Serializes the learned state — decay, every memo map, the
    /// view→fingerprint reverse index, and the ingest count — with all
    /// map keys sorted so the bytes are deterministic for a given state.
    /// The session-local event counters (hits/misses/…) are not stored.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_uv(buf: &mut Vec<u8>, mut x: u64) {
            loop {
                let b = (x & 0x7f) as u8;
                x >>= 7;
                if x == 0 {
                    buf.push(b);
                    return;
                }
                buf.push(b | 0x80);
            }
        }
        fn put_str(buf: &mut Vec<u8>, s: &str) {
            put_uv(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
        fn put_u64_map(buf: &mut Vec<u8>, m: &HashMap<u64, f64>) {
            let mut keys: Vec<u64> = m.keys().copied().collect();
            keys.sort_unstable();
            put_uv(buf, keys.len() as u64);
            for k in keys {
                put_uv(buf, k);
                buf.extend_from_slice(&m[&k].to_bits().to_le_bytes());
            }
        }
        let mut buf = vec![1u8]; // wire version
        buf.extend_from_slice(&self.decay.to_bits().to_le_bytes());
        let mut scans: Vec<&String> = self.scans.keys().collect();
        scans.sort();
        put_uv(&mut buf, scans.len() as u64);
        for k in scans {
            put_str(&mut buf, k);
            buf.extend_from_slice(&self.scans[k].to_bits().to_le_bytes());
        }
        put_u64_map(&mut buf, &self.selects);
        put_u64_map(&mut buf, &self.joins);
        put_u64_map(&mut buf, &self.frags);
        let mut views: Vec<&String> = self.by_view.keys().collect();
        views.sort();
        put_uv(&mut buf, views.len() as u64);
        for v in views {
            put_str(&mut buf, v);
            let mut fps: Vec<u64> = self.by_view[v].iter().copied().collect();
            fps.sort_unstable();
            put_uv(&mut buf, fps.len() as u64);
            for fp in fps {
                put_uv(&mut buf, fp);
            }
        }
        put_uv(&mut buf, self.ingests);
        buf
    }

    /// Reconstructs a store serialized by [`FeedbackStore::to_bytes`].
    /// Event counters start at zero (they describe a session, not the
    /// learned state).
    pub fn from_bytes(bytes: &[u8]) -> Result<FeedbackStore, String> {
        struct R<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl R<'_> {
            fn u8(&mut self) -> Result<u8, String> {
                let b = *self.buf.get(self.pos).ok_or("truncated feedback bytes")?;
                self.pos += 1;
                Ok(b)
            }
            fn uv(&mut self) -> Result<u64, String> {
                let mut x = 0u64;
                let mut shift = 0u32;
                loop {
                    let b = self.u8()?;
                    if shift >= 64 {
                        return Err("varint overflow".into());
                    }
                    x |= ((b & 0x7f) as u64) << shift;
                    if b & 0x80 == 0 {
                        return Ok(x);
                    }
                    shift += 7;
                }
            }
            fn f64(&mut self) -> Result<f64, String> {
                let end = self.pos + 8;
                let s = self.buf.get(self.pos..end).ok_or("truncated f64")?;
                self.pos = end;
                Ok(f64::from_bits(u64::from_le_bytes(s.try_into().unwrap())))
            }
            fn str(&mut self) -> Result<String, String> {
                let n = self.uv()? as usize;
                let end = self.pos.checked_add(n).ok_or("length overflow")?;
                let s = self.buf.get(self.pos..end).ok_or("truncated string")?;
                self.pos = end;
                String::from_utf8(s.to_vec()).map_err(|_| "invalid utf-8".to_string())
            }
            fn u64_map(&mut self) -> Result<HashMap<u64, f64>, String> {
                let n = self.uv()? as usize;
                let mut m = HashMap::with_capacity(n);
                for _ in 0..n {
                    let k = self.uv()?;
                    m.insert(k, self.f64()?);
                }
                Ok(m)
            }
        }
        let mut r = R { buf: bytes, pos: 0 };
        let version = r.u8()?;
        if version != 1 {
            return Err(format!("unsupported feedback wire version {version}"));
        }
        let decay = r.f64()?;
        if !(decay > 0.0 && decay <= 1.0) {
            return Err(format!("decay {decay} outside (0, 1]"));
        }
        let n_scans = r.uv()? as usize;
        let mut scans = HashMap::with_capacity(n_scans);
        for _ in 0..n_scans {
            let k = r.str()?;
            scans.insert(k, r.f64()?);
        }
        let selects = r.u64_map()?;
        let joins = r.u64_map()?;
        let frags = r.u64_map()?;
        let n_views = r.uv()? as usize;
        let mut by_view = HashMap::with_capacity(n_views);
        for _ in 0..n_views {
            let v = r.str()?;
            let n = r.uv()? as usize;
            let mut fps = HashSet::with_capacity(n);
            for _ in 0..n {
                fps.insert(r.uv()?);
            }
            by_view.insert(v, fps);
        }
        let ingests = r.uv()?;
        if r.pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after feedback store",
                bytes.len() - r.pos
            ));
        }
        Ok(FeedbackStore {
            decay,
            scans,
            selects,
            joins,
            frags,
            by_view,
            ingests,
            hits: EventCounter::default(),
            misses: EventCounter::default(),
            decays: EventCounter::default(),
            invalidated: EventCounter::default(),
        })
    }
}

/// A [`CardSource`] decorator replacing estimated scan rows with the
/// feedback store's decayed actuals where available. Column path
/// annotations still come from the inner source (feedback only observes
/// row counts).
pub struct FeedbackCards<'a> {
    inner: &'a dyn CardSource,
    store: &'a FeedbackStore,
}

impl<'a> FeedbackCards<'a> {
    /// Wraps `inner`, correcting its scan rows from `store`.
    pub fn new(inner: &'a dyn CardSource, store: &'a FeedbackStore) -> FeedbackCards<'a> {
        FeedbackCards { inner, store }
    }
}

impl CardSource for FeedbackCards<'_> {
    fn scan_card(&self, view: &str) -> Option<ScanCard> {
        let corrected = self.store.scan_rows(view);
        match (self.inner.scan_card(view), corrected) {
            (Some(mut sc), Some(rows)) => {
                sc.rows = rows;
                Some(sc)
            }
            (Some(sc), None) => Some(sc),
            // the view is unknown to the inner source but was executed:
            // feedback still knows its size (columns stay unannotated)
            (None, Some(rows)) => Some(ScanCard {
                rows,
                cols: Vec::new(),
            }),
            (None, None) => None,
        }
    }
}

// ---- adaptive parallelism hints ---------------------------------------

/// Measured output cardinalities for the fragments of one plan, snapshot
/// from a [`FeedbackStore`] before execution — the executor's adaptive
/// parallelize-or-not gate.
///
/// The static `min_par_rows` threshold only sees an operator's *input*
/// sizes; a selective join over large inputs and an explosive join over
/// small inputs both defeat it. `ParHints::for_plan` snapshots the
/// store's decayed per-fragment actual output rows for every operator of
/// the plan about to run, and the executor treats a fragment whose
/// *measured* output crosses the threshold as worth fanning out even when
/// its inputs alone would not qualify. Fragments never executed before
/// simply miss — the static gate still applies.
#[derive(Clone, Debug, Default)]
pub struct ParHints {
    rows: HashMap<u64, f64>,
}

impl ParHints {
    /// Snapshots the measured output rows of every fragment of `plan`
    /// that `store` has feedback for.
    pub fn for_plan(plan: &Plan, store: &FeedbackStore) -> ParHints {
        let mut hints = ParHints::default();
        hints.collect(plan, store);
        hints
    }

    fn collect(&mut self, plan: &Plan, store: &FeedbackStore) {
        if let Some(rows) = store.measured_rows(plan) {
            self.rows.insert(plan_fingerprint(plan), rows);
        }
        match plan {
            Plan::Scan { .. } => {}
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Nest { input, .. }
            | Plan::Unnest { input, .. }
            | Plan::NavigateContent { input, .. }
            | Plan::DeriveParentId { input, .. }
            | Plan::DupElim { input } => self.collect(input, store),
            Plan::IdJoin { left, right, .. } | Plan::StructJoin { left, right, .. } => {
                self.collect(left, store);
                self.collect(right, store);
            }
            Plan::Union { inputs } => {
                for i in inputs {
                    self.collect(i, store);
                }
            }
        }
    }

    /// Measured output rows of `fragment`, if the plan this snapshot was
    /// taken for contains it and feedback existed at snapshot time.
    pub fn measured(&self, fragment: &Plan) -> Option<f64> {
        self.rows.get(&plan_fingerprint(fragment)).copied()
    }

    /// Number of fragments with feedback.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no fragment had feedback.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NoCards;
    use smv_pattern::Formula;
    use smv_xml::Value;

    fn scan(v: &str) -> Plan {
        Plan::Scan { view: v.into() }
    }

    fn select(input: Plan, col: usize, formula: Formula) -> Plan {
        Plan::Select {
            input: Box::new(input),
            pred: Predicate::Value { col, formula },
        }
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let a = select(scan("v"), 1, Formula::ge(Value::int(3)));
        let b = select(scan("v"), 1, Formula::ge(Value::int(3)));
        let c = select(scan("v"), 1, Formula::ge(Value::int(4)));
        let d = select(scan("w"), 1, Formula::ge(Value::int(3)));
        assert_eq!(plan_fingerprint(&a), plan_fingerprint(&b));
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&c));
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&d));
    }

    #[test]
    fn ingest_builds_scan_select_and_join_memos() {
        let plan = Plan::StructJoin {
            left: Box::new(scan("a")),
            right: Box::new(select(scan("b"), 0, Formula::ge(Value::int(10)))),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Parent,
        };
        let mut prof = ExecProfile::default();
        prof.record(&[0], 100); // scan a
        prof.record(&[1, 0], 200); // scan b
        prof.record(&[1], 50); // select out of 200
        prof.record(&[], 40); // join out of 100 × 50
        let mut store = FeedbackStore::new();
        store.ingest(&plan, &prof);
        assert_eq!(store.scan_rows("a"), Some(100.0));
        assert_eq!(store.scan_rows("b"), Some(200.0));
        let sel = store
            .select_selectivity(
                &scan("b"),
                &Predicate::Value {
                    col: 0,
                    formula: Formula::ge(Value::int(10)),
                },
            )
            .unwrap();
        assert!((sel - 0.25).abs() < 1e-12);
        let jsel = store
            .join_selectivity(
                &scan("a"),
                &select(scan("b"), 0, Formula::ge(Value::int(10))),
                0,
                0,
                Some(StructRel::Parent),
            )
            .unwrap();
        assert!((jsel - 40.0 / (100.0 * 50.0)).abs() < 1e-12);
        // a different fragment misses
        assert!(store
            .join_selectivity(&scan("a"), &scan("b"), 0, 0, Some(StructRel::Parent))
            .is_none());
    }

    #[test]
    fn decay_blends_observations() {
        let plan = scan("v");
        let mut p1 = ExecProfile::default();
        p1.record(&[], 100);
        let mut p2 = ExecProfile::default();
        p2.record(&[], 200);
        let mut store = FeedbackStore::with_decay(0.5);
        store.ingest(&plan, &p1);
        store.ingest(&plan, &p2);
        assert_eq!(store.scan_rows("v"), Some(150.0));
        assert_eq!(store.ingests(), 2);
        // decay 1.0 keeps only the latest
        let mut latest = FeedbackStore::with_decay(1.0);
        latest.ingest(&plan, &p1);
        latest.ingest(&plan, &p2);
        assert_eq!(latest.scan_rows("v"), Some(200.0));
    }

    #[test]
    fn measured_rows_memo_and_par_hints_snapshot() {
        let plan = Plan::StructJoin {
            left: Box::new(scan("a")),
            right: Box::new(scan("b")),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Ancestor,
        };
        let mut prof = ExecProfile::default();
        prof.record(&[0], 100);
        prof.record(&[1], 200);
        prof.record(&[], 9000); // explosive join: output ≫ inputs
        let mut store = FeedbackStore::new();
        store.ingest(&plan, &prof);
        assert_eq!(store.measured_rows(&plan), Some(9000.0));
        assert_eq!(store.measured_rows(&scan("a")), Some(100.0));
        assert_eq!(store.measured_rows(&scan("never-ran")), None);
        let hints = ParHints::for_plan(&plan, &store);
        assert_eq!(hints.len(), 3);
        assert_eq!(hints.measured(&plan), Some(9000.0));
        assert_eq!(hints.measured(&scan("b")), Some(200.0));
        assert!(hints.measured(&scan("never-ran")).is_none());
        // a fresh fragment has no hints at all
        let cold = ParHints::for_plan(&scan("never-ran"), &store);
        assert!(cold.is_empty());
    }

    #[test]
    fn invalidation_is_scoped_to_touched_views() {
        let pred = || Predicate::Value {
            col: 0,
            formula: Formula::ge(Value::int(10)),
        };
        let joined = Plan::StructJoin {
            left: Box::new(scan("a")),
            right: Box::new(Plan::Select {
                input: Box::new(scan("b")),
                pred: pred(),
            }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Parent,
        };
        let mut prof = ExecProfile::default();
        prof.record(&[0], 100);
        prof.record(&[1, 0], 200);
        prof.record(&[1], 50);
        prof.record(&[], 40);
        let mut store = FeedbackStore::new();
        store.ingest(&joined, &prof);
        // an independent plan over an untouched view
        let mut other = ExecProfile::default();
        other.record(&[], 7);
        store.ingest(&scan("c"), &other);

        assert_eq!(store.invalidate_fingerprints_touching(&["zz"]), 0);
        let removed = store.invalidate_fingerprints_touching(&["b"]);
        assert!(removed > 0, "select, join and fragment memos touching b");
        assert!(store.select_selectivity(&scan("b"), &pred()).is_none());
        assert!(store
            .join_selectivity(
                &scan("a"),
                &Plan::Select {
                    input: Box::new(scan("b")),
                    pred: pred(),
                },
                0,
                0,
                Some(StructRel::Parent),
            )
            .is_none());
        assert!(store.measured_rows(&joined).is_none());
        assert!(store.scan_rows("b").is_none());
        // untouched views keep their feedback
        assert_eq!(store.scan_rows("a"), Some(100.0));
        assert_eq!(store.measured_rows(&scan("a")), Some(100.0));
        assert_eq!(store.scan_rows("c"), Some(7.0));
        // idempotent: everything touching b is already gone
        assert_eq!(store.invalidate_fingerprints_touching(&["b"]), 0);
    }

    #[test]
    fn feedback_cards_override_scan_rows() {
        let mut prof = ExecProfile::default();
        prof.record(&[], 42);
        let mut store = FeedbackStore::new();
        store.ingest(&scan("v"), &prof);
        let cards = FeedbackCards::new(&NoCards, &store);
        use crate::cost::CardSource;
        assert_eq!(cards.scan_card("v").unwrap().rows, 42.0);
        assert!(cards.scan_card("unknown").is_none());
    }
}
