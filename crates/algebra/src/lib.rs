//! # smv-algebra — logical plans and execution
//!
//! The algebraic layer the rewriting algorithm targets (paper §3.2): plans
//! over materialized views built from scans, `σ`, `π`, ID-equality joins,
//! structural joins (`⋈_≺`, `⋈_≺≺` — the stack-tree algorithm of \[1\]),
//! unions, nest/unnest, content navigation and `nav_fID` parent-ID
//! derivation (§4.6), plus the nested-relation values views materialize.

#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod cost;
pub mod exec;
pub mod explain;
pub mod feedback;
pub mod plan;
pub mod relation;
pub mod struct_join;

pub use cost::{
    histogram_accepted_fraction, sample_accepted_fraction, value_accepted_fraction, CardSource,
    ColCard, CostModel, NoCards, PlanEstimate, ScanCard,
};
pub use exec::{
    execute, execute_profiled, execute_profiled_with, execute_with, ExecError, ExecOpts,
    ExtentShard, MapProvider, ShardPartition, ViewProvider,
};
pub use explain::{explain, explain_analyze, Explain, ExplainNode};
pub use feedback::{
    plan_fingerprint, ExecProfile, FeedbackCards, FeedbackStats, FeedbackStore, OpPath, ParHints,
};
pub use plan::{NavStep, Plan, Predicate};
pub use relation::{AttrKind, Cell, ColKind, Column, NestedRelation, Row, Schema};
pub use smv_xml::par;
pub use smv_xml::par::WorkerPool;
pub use struct_join::{
    doc_sorted_indices, nested_loop_join, stack_tree_join, stack_tree_join_presorted,
    stack_tree_join_presorted_range, StructRel,
};
