//! Nested relations — the data produced by materialized views.
//!
//! A view evaluates to a *nested table which may include null values*
//! (paper §1, Fig. 1c): one column per (return node, stored attribute),
//! plus one *table-valued* column per nested edge (§4.5, Fig. 12). Set
//! semantics throughout; [`NestedRelation::normalize`] sorts and
//! deduplicates recursively so equality is structural.
//!
//! ## Performance architecture
//!
//! Rows are sorted and deduplicated through a total [`Ord`] over cells and
//! hashed through a structural [`Hash`] — there is no per-row string
//! encoding anywhere on this path (the seed's `Row::encode_key` built a
//! `String` per row per sort). Column names are interned [`Symbol`]s, so
//! schema lookup is an integer compare. [`NestedRelation`] additionally
//! tracks *sortedness*: when its rows are known to be ordered by document
//! order on some ID column, repeated structural joins on that column skip
//! re-sorting entirely.

use smv_xml::{Label, StructId, Symbol, Value};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Which stored attribute a column carries (§4.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AttrKind {
    /// Node identifier.
    Id,
    /// Node label.
    Label,
    /// Node value.
    Value,
    /// Node content (serialized subtree).
    Content,
}

impl std::fmt::Display for AttrKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AttrKind::Id => "ID",
            AttrKind::Label => "L",
            AttrKind::Value => "V",
            AttrKind::Content => "C",
        })
    }
}

/// A column: either an atomic attribute or a nested table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Interned name, e.g. `item.ID`.
    pub name: Symbol,
    /// Atomic or nested.
    pub kind: ColKind,
}

/// Column kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ColKind {
    /// An atomic attribute cell.
    Atom(AttrKind),
    /// A nested table with its own schema.
    Nested(Schema),
}

/// A relation schema.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    /// The columns, in order.
    pub cols: Vec<Column>,
}

impl Schema {
    /// Builds a schema from `(name, kind)` pairs of atomic columns.
    pub fn atoms(cols: &[(&str, AttrKind)]) -> Schema {
        Schema {
            cols: cols
                .iter()
                .map(|(n, k)| Column {
                    name: Symbol::intern(n),
                    kind: ColKind::Atom(*k),
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Index of the column named `name` (pool probe, then
    /// integer-compare; a name that was never interned cannot be a
    /// column, so misses allocate nothing).
    pub fn col(&self, name: &str) -> Option<usize> {
        self.col_sym(Symbol::lookup(name)?)
    }

    /// Index of the column with interned name `name`.
    pub fn col_sym(&self, name: Symbol) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("(")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match &c.kind {
                ColKind::Atom(k) => write!(f, "{}:{k}", c.name)?,
                ColKind::Nested(s) => write!(f, "{}:{s}", c.name)?,
            }
        }
        f.write_str(")")
    }
}

/// One cell of a row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cell {
    /// `⊥` — produced by optional edges that did not bind.
    Null,
    /// A structural (or sequential) identifier.
    Id(StructId),
    /// An element label.
    Label(Label),
    /// An atomic value.
    Atom(Value),
    /// Serialized subtree content.
    Content(String),
    /// A nested table.
    Table(NestedRelation),
}

impl Cell {
    /// Is this `⊥`?
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Canonical variant rank for the total order.
    fn rank(&self) -> u8 {
        match self {
            Cell::Null => 0,
            Cell::Id(_) => 1,
            Cell::Label(_) => 2,
            Cell::Atom(_) => 3,
            Cell::Content(_) => 4,
            Cell::Table(_) => 5,
        }
    }
}

impl PartialOrd for Cell {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cell {
    /// A total order over all cell variants, used for sorting/dedup.
    ///
    /// IDs order by (scheme, document order), labels by interner index,
    /// nested tables lexicographically by rows — canonical once the tables
    /// are normalized, but a valid total order regardless. No allocation.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Cell::Null, Cell::Null) => Ordering::Equal,
            (Cell::Id(a), Cell::Id(b)) => a.cmp(b),
            (Cell::Label(a), Cell::Label(b)) => a.cmp(b),
            (Cell::Atom(a), Cell::Atom(b)) => a.cmp(b),
            (Cell::Content(a), Cell::Content(b)) => a.cmp(b),
            (Cell::Table(a), Cell::Table(b)) => a.rows.cmp(&b.rows),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Cell {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Cell::Null => {}
            Cell::Id(id) => id.hash(state),
            Cell::Label(l) => l.hash(state),
            Cell::Atom(v) => v.hash(state),
            Cell::Content(c) => c.hash(state),
            Cell::Table(t) => t.rows.hash(state),
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Null => f.write_str("⊥"),
            Cell::Id(id) => write!(f, "{id}"),
            Cell::Label(l) => write!(f, "{l}"),
            Cell::Atom(v) => write!(f, "{v}"),
            Cell::Content(c) => {
                if c.len() > 32 {
                    write!(f, "{}…", &c[..32])
                } else {
                    f.write_str(c)
                }
            }
            Cell::Table(t) => {
                f.write_str("{")?;
                for (i, r) in t.rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{r}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// One row.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Row {
    /// The cells, aligned with the schema.
    pub cells: Vec<Cell>,
}

impl Row {
    /// Builds a row.
    pub fn new(cells: Vec<Cell>) -> Row {
        Row { cells }
    }

    /// A 64-bit structural hash of the row — the allocation-free
    /// replacement for the seed's string `encode_key`. Equal rows hash
    /// equal; used for hash-based dedup and grouping.
    pub fn hash_key(&self) -> u64 {
        let mut h = std::hash::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl PartialOrd for Row {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Row {
    /// Lexicographic cell order (canonical once nested tables are
    /// normalized).
    fn cmp(&self, other: &Self) -> Ordering {
        self.cells.cmp(&other.cells)
    }
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("⟨")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("⟩")
    }
}

/// A (possibly nested) relation: schema + rows, set semantics.
///
/// `sorted_on` is executor metadata, not data: equality and hashing
/// ignore it.
#[derive(Clone, Eq, Debug, Default)]
pub struct NestedRelation {
    /// The schema.
    pub schema: Schema,
    /// The rows (normalize before comparing).
    pub rows: Vec<Row>,
    /// When `Some(i)`, the rows are known to be ordered by document order
    /// on the ID cells of column `i` (nulls first, uniform scheme).
    /// Structural joins on column `i` skip their sorting pass.
    pub sorted_on: Option<usize>,
}

impl PartialEq for NestedRelation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Hash for NestedRelation {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rows.hash(state);
    }
}

impl NestedRelation {
    /// A relation over `schema` with the given rows.
    pub fn new(schema: Schema, rows: Vec<Row>) -> NestedRelation {
        NestedRelation {
            schema,
            rows,
            sorted_on: None,
        }
    }

    /// An empty relation over `schema`.
    pub fn empty(schema: Schema) -> NestedRelation {
        NestedRelation::new(schema, Vec::new())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sorts rows by the canonical cell order and removes duplicates,
    /// recursively normalizing nested tables first. Allocation-free per
    /// row (comparator sort + adjacent dedup — no encoded keys).
    pub fn normalize(&mut self) {
        for r in &mut self.rows {
            for c in &mut r.cells {
                if let Cell::Table(t) = c {
                    t.normalize();
                }
            }
        }
        self.rows.sort_unstable();
        self.rows.dedup();
        self.sorted_on = self.canonical_sorted_on();
    }

    /// The `sorted_on` marker normalization establishes: the canonical
    /// cell order sorts the first column by (scheme, doc order), so an ID
    /// first column leaves the relation join-ready. Shared with the
    /// executor's parallel normalization, which must set the same marker.
    pub(crate) fn canonical_sorted_on(&self) -> Option<usize> {
        match self.schema.cols.first() {
            Some(Column {
                kind: ColKind::Atom(AttrKind::Id),
                ..
            }) => Some(0),
            _ => None,
        }
    }

    /// Unions `extra` into rows that are **already in normalized order**
    /// (sorted, deduplicated, nested tables normalized): sorts and
    /// dedups `extra` alone, then merges the two sorted runs. Equivalent
    /// to `rows.extend(extra); normalize()` but O(rows + extra·log
    /// extra) instead of re-sorting the whole relation — the
    /// delta-maintenance shape, where a large surviving extent absorbs a
    /// small batch of fresh rows.
    pub fn union_sorted(&mut self, mut extra: Vec<Row>) {
        extra.sort_unstable();
        extra.dedup();
        if !extra.is_empty() {
            let old = std::mem::take(&mut self.rows);
            self.rows = Vec::with_capacity(old.len() + extra.len());
            let (mut a, mut b) = (old.into_iter().peekable(), extra.into_iter().peekable());
            while let (Some(x), Some(y)) = (a.peek(), b.peek()) {
                match x.cmp(y) {
                    std::cmp::Ordering::Less => self.rows.push(a.next().unwrap()),
                    std::cmp::Ordering::Greater => self.rows.push(b.next().unwrap()),
                    std::cmp::Ordering::Equal => {
                        self.rows.push(a.next().unwrap());
                        b.next();
                    }
                }
            }
            self.rows.extend(a);
            self.rows.extend(b);
        }
        self.sorted_on = self.canonical_sorted_on();
    }

    /// Normalized copy.
    pub fn normalized(&self) -> NestedRelation {
        let mut c = self.clone();
        c.normalize();
        c
    }

    /// Set equality (ignores row order at every nesting level).
    pub fn set_eq(&self, other: &NestedRelation) -> bool {
        self.normalized().rows == other.normalized().rows
    }
}

impl std::fmt::Display for NestedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for r in &self.rows {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> NestedRelation {
        NestedRelation::new(
            Schema::atoms(&[("a.ID", AttrKind::Id), ("a.V", AttrKind::Value)]),
            vec![
                Row::new(vec![Cell::Id(StructId::Seq(2)), Cell::Atom(Value::int(5))]),
                Row::new(vec![Cell::Id(StructId::Seq(1)), Cell::Null]),
                Row::new(vec![Cell::Id(StructId::Seq(2)), Cell::Atom(Value::int(5))]),
            ],
        )
    }

    #[test]
    fn normalize_dedups_and_sorts() {
        let mut r = rel();
        r.normalize();
        assert_eq!(r.len(), 2);
        assert_eq!(r.sorted_on, Some(0), "id-first relation is join-ready");
    }

    #[test]
    fn set_equality_ignores_order() {
        let r1 = rel();
        let mut r2 = rel();
        r2.rows.reverse();
        assert!(r1.set_eq(&r2));
        let mut r3 = rel();
        r3.rows.pop();
        r3.rows.pop();
        assert!(!r1.set_eq(&r3));
    }

    #[test]
    fn equality_ignores_sortedness_metadata() {
        let plain = rel();
        let mut tagged = rel();
        tagged.sorted_on = Some(0);
        assert_eq!(plain, tagged);
        assert_eq!(
            Row::new(vec![Cell::Table(plain)]).hash_key(),
            Row::new(vec![Cell::Table(tagged)]).hash_key()
        );
    }

    #[test]
    fn hash_key_agrees_with_equality() {
        let a = Row::new(vec![Cell::Id(StructId::Seq(2)), Cell::Atom(Value::int(5))]);
        let b = Row::new(vec![Cell::Id(StructId::Seq(2)), Cell::Atom(Value::int(5))]);
        let c = Row::new(vec![Cell::Id(StructId::Seq(3)), Cell::Atom(Value::int(5))]);
        assert_eq!(a.hash_key(), b.hash_key());
        assert_ne!(a, c);
    }

    #[test]
    fn cell_order_is_total_across_variants() {
        let cells = [
            Cell::Null,
            Cell::Id(StructId::Seq(1)),
            Cell::Label(Label::intern("x")),
            Cell::Atom(Value::int(1)),
            Cell::Content("c".into()),
            Cell::Table(NestedRelation::default()),
        ];
        for (i, a) in cells.iter().enumerate() {
            for (j, b) in cells.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "variant rank order");
            }
        }
    }

    #[test]
    fn nested_tables_compare_as_sets() {
        let inner_schema = Schema::atoms(&[("k.V", AttrKind::Value)]);
        let mk = |vals: &[i64]| {
            Cell::Table(NestedRelation::new(
                inner_schema.clone(),
                vals.iter()
                    .map(|&v| Row::new(vec![Cell::Atom(Value::int(v))]))
                    .collect(),
            ))
        };
        let schema = Schema {
            cols: vec![Column {
                name: Symbol::intern("A"),
                kind: ColKind::Nested(inner_schema.clone()),
            }],
        };
        let r1 = NestedRelation::new(schema.clone(), vec![Row::new(vec![mk(&[1, 2])])]);
        let r2 = NestedRelation::new(schema, vec![Row::new(vec![mk(&[2, 1, 1])])]);
        assert!(r1.set_eq(&r2));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::atoms(&[("x.ID", AttrKind::Id), ("y.V", AttrKind::Value)]);
        assert_eq!(s.col("y.V"), Some(1));
        assert_eq!(s.col("zz"), None);
        assert_eq!(s.col_sym(Symbol::intern("x.ID")), Some(0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_forms() {
        let r = rel();
        let txt = r.to_string();
        assert!(txt.contains("a.ID:ID"));
        assert!(txt.contains("⊥"));
    }
}
