//! Nested relations — the data produced by materialized views.
//!
//! A view evaluates to a *nested table which may include null values*
//! (paper §1, Fig. 1c): one column per (return node, stored attribute),
//! plus one *table-valued* column per nested edge (§4.5, Fig. 12). Set
//! semantics throughout; [`NestedRelation::normalize`] sorts and
//! deduplicates recursively so equality is structural.

use smv_xml::{Label, StructId, Value};

/// Which stored attribute a column carries (§4.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AttrKind {
    /// Node identifier.
    Id,
    /// Node label.
    Label,
    /// Node value.
    Value,
    /// Node content (serialized subtree).
    Content,
}

impl std::fmt::Display for AttrKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AttrKind::Id => "ID",
            AttrKind::Label => "L",
            AttrKind::Value => "V",
            AttrKind::Content => "C",
        })
    }
}

/// A column: either an atomic attribute or a nested table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Human-readable name, e.g. `item.ID`.
    pub name: String,
    /// Atomic or nested.
    pub kind: ColKind,
}

/// Column kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ColKind {
    /// An atomic attribute cell.
    Atom(AttrKind),
    /// A nested table with its own schema.
    Nested(Schema),
}

/// A relation schema.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    /// The columns, in order.
    pub cols: Vec<Column>,
}

impl Schema {
    /// Builds a schema from `(name, kind)` pairs of atomic columns.
    pub fn atoms(cols: &[(&str, AttrKind)]) -> Schema {
        Schema {
            cols: cols
                .iter()
                .map(|(n, k)| Column {
                    name: (*n).to_owned(),
                    kind: ColKind::Atom(*k),
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Index of the column named `name`.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("(")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match &c.kind {
                ColKind::Atom(k) => write!(f, "{}:{k}", c.name)?,
                ColKind::Nested(s) => write!(f, "{}:{s}", c.name)?,
            }
        }
        f.write_str(")")
    }
}

/// One cell of a row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cell {
    /// `⊥` — produced by optional edges that did not bind.
    Null,
    /// A structural (or sequential) identifier.
    Id(StructId),
    /// An element label.
    Label(Label),
    /// An atomic value.
    Atom(Value),
    /// Serialized subtree content.
    Content(String),
    /// A nested table.
    Table(NestedRelation),
}

impl Cell {
    /// Is this `⊥`?
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// A canonical encoding used for sorting/dedup (total order over all
    /// cell variants; recursion handles nested tables).
    fn encode(&self, out: &mut String) {
        match self {
            Cell::Null => out.push('N'),
            Cell::Id(id) => {
                out.push('I');
                out.push_str(&id.to_string());
            }
            Cell::Label(l) => {
                out.push('L');
                out.push_str(l.as_str());
            }
            Cell::Atom(Value::Int(i)) => {
                // left-pad so lexicographic = numeric for same sign
                out.push('a');
                out.push_str(&format!("{:+021}", i));
            }
            Cell::Atom(Value::Str(s)) => {
                out.push('s');
                out.push_str(s);
            }
            Cell::Content(c) => {
                out.push('C');
                out.push_str(c);
            }
            Cell::Table(t) => {
                out.push('T');
                out.push('[');
                let mut keys: Vec<String> = t.rows.iter().map(Row::encode_key).collect();
                keys.sort();
                for k in keys {
                    out.push_str(&k);
                    out.push(';');
                }
                out.push(']');
            }
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Null => f.write_str("⊥"),
            Cell::Id(id) => write!(f, "{id}"),
            Cell::Label(l) => write!(f, "{l}"),
            Cell::Atom(v) => write!(f, "{v}"),
            Cell::Content(c) => {
                if c.len() > 32 {
                    write!(f, "{}…", &c[..32])
                } else {
                    f.write_str(c)
                }
            }
            Cell::Table(t) => {
                f.write_str("{")?;
                for (i, r) in t.rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{r}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// One row.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Row {
    /// The cells, aligned with the schema.
    pub cells: Vec<Cell>,
}

impl Row {
    /// Builds a row.
    pub fn new(cells: Vec<Cell>) -> Row {
        Row { cells }
    }

    /// Canonical sort/dedup key.
    pub fn encode_key(&self) -> String {
        let mut s = String::new();
        for c in &self.cells {
            c.encode(&mut s);
            s.push('|');
        }
        s
    }
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("⟨")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("⟩")
    }
}

/// A (possibly nested) relation: schema + rows, set semantics.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NestedRelation {
    /// The schema.
    pub schema: Schema,
    /// The rows (normalize before comparing).
    pub rows: Vec<Row>,
}

impl NestedRelation {
    /// An empty relation over `schema`.
    pub fn empty(schema: Schema) -> NestedRelation {
        NestedRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sorts rows by canonical key and removes duplicates, recursively
    /// normalizing nested tables first.
    pub fn normalize(&mut self) {
        for r in &mut self.rows {
            for c in &mut r.cells {
                if let Cell::Table(t) = c {
                    t.normalize();
                }
            }
        }
        self.rows.sort_by_cached_key(Row::encode_key);
        self.rows.dedup();
    }

    /// Normalized copy.
    pub fn normalized(&self) -> NestedRelation {
        let mut c = self.clone();
        c.normalize();
        c
    }

    /// Set equality (ignores row order at every nesting level).
    pub fn set_eq(&self, other: &NestedRelation) -> bool {
        self.normalized().rows == other.normalized().rows
    }
}

impl std::fmt::Display for NestedRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for r in &self.rows {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> NestedRelation {
        NestedRelation {
            schema: Schema::atoms(&[("a.ID", AttrKind::Id), ("a.V", AttrKind::Value)]),
            rows: vec![
                Row::new(vec![Cell::Id(StructId::Seq(2)), Cell::Atom(Value::int(5))]),
                Row::new(vec![Cell::Id(StructId::Seq(1)), Cell::Null]),
                Row::new(vec![Cell::Id(StructId::Seq(2)), Cell::Atom(Value::int(5))]),
            ],
        }
    }

    #[test]
    fn normalize_dedups_and_sorts() {
        let mut r = rel();
        r.normalize();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let r1 = rel();
        let mut r2 = rel();
        r2.rows.reverse();
        assert!(r1.set_eq(&r2));
        let mut r3 = rel();
        r3.rows.pop();
        r3.rows.pop();
        assert!(!r1.set_eq(&r3));
    }

    #[test]
    fn nested_tables_compare_as_sets() {
        let inner_schema = Schema::atoms(&[("k.V", AttrKind::Value)]);
        let mk = |vals: &[i64]| {
            Cell::Table(NestedRelation {
                schema: inner_schema.clone(),
                rows: vals
                    .iter()
                    .map(|&v| Row::new(vec![Cell::Atom(Value::int(v))]))
                    .collect(),
            })
        };
        let schema = Schema {
            cols: vec![Column {
                name: "A".into(),
                kind: ColKind::Nested(inner_schema.clone()),
            }],
        };
        let r1 = NestedRelation {
            schema: schema.clone(),
            rows: vec![Row::new(vec![mk(&[1, 2])])],
        };
        let r2 = NestedRelation {
            schema,
            rows: vec![Row::new(vec![mk(&[2, 1, 1])])],
        };
        assert!(r1.set_eq(&r2));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::atoms(&[("x.ID", AttrKind::Id), ("y.V", AttrKind::Value)]);
        assert_eq!(s.col("y.V"), Some(1));
        assert_eq!(s.col("zz"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_forms() {
        let r = rel();
        let txt = r.to_string();
        assert!(txt.contains("a.ID:ID"));
        assert!(txt.contains("⊥"));
    }
}
