//! `EXPLAIN` / `EXPLAIN ANALYZE`: the plan renderer that puts the cost
//! model's estimated rows next to a profiled run's actual rows and wall
//! time, operator by operator.
//!
//! [`explain`] walks a [`Plan`] and asks the [`CostModel`] for an
//! estimate of every subtree (estimates are structural, so a subtree's
//! estimate is exactly what the model would say about it as a
//! standalone plan). [`explain_analyze`] additionally joins each
//! operator — by its positional [`OpPath`] — with the row counters,
//! inclusive wall times and morsel counts of an [`ExecProfile`], and
//! computes the per-operator *q-error* (`max(est/actual, actual/est)`,
//! both sides clamped to ≥ 1 row) so feedback-loop misestimates are
//! visible at a glance.
//!
//! ```
//! use smv_algebra::{
//!     execute_profiled, explain_analyze, AttrKind, Cell, CostModel, MapProvider,
//!     NestedRelation, NoCards, Plan, Row, Schema,
//! };
//! use smv_summary::Summary;
//! use smv_xml::{Document, StructId};
//!
//! let doc = Document::from_parens(r#"a(b="1")"#);
//! let summary = Summary::of(&doc);
//! let mut views = MapProvider::default();
//! views.insert(
//!     "v",
//!     NestedRelation::new(
//!         Schema::atoms(&[("b.ID", AttrKind::Id)]),
//!         vec![Row::new(vec![Cell::Id(StructId::Seq(7))])],
//!     ),
//! );
//! let plan = Plan::Scan { view: "v".into() };
//! let (_, profile) = execute_profiled(&plan, &views).unwrap();
//! let cost = CostModel::new(&summary, &NoCards);
//! let ex = explain_analyze(&plan, &cost, &profile);
//! assert_eq!(ex.root.actual_rows, Some(1));
//! assert!(ex.to_string().contains("Scan(v)"));
//! ```

use crate::cost::CostModel;
use crate::feedback::{path_key, ExecProfile, OpPath};
use crate::plan::Plan;

/// One operator of an explained plan: estimates always, actuals when the
/// explain was built from a profiled run.
#[derive(Debug, Clone)]
pub struct ExplainNode {
    /// The operator's rendered head ([`Plan::op_label`]).
    pub op: String,
    /// Positional path of the operator (`""` = the root).
    pub path: OpPath,
    /// The cost model's estimated output rows for this subtree.
    pub est_rows: f64,
    /// The cost model's estimated cumulative cost for this subtree.
    pub est_cost: f64,
    /// Actual output rows from the profiled run (`EXPLAIN ANALYZE` only).
    pub actual_rows: Option<u64>,
    /// Inclusive wall time of the operator and its inputs, nanoseconds.
    pub time_ns: Option<u64>,
    /// Parallel morsels/tasks the operator fanned out, if it ran parallel.
    pub morsels: Option<u64>,
    /// The operator's inputs, in child-index order.
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// The factor by which the estimate missed:
    /// `max(est/actual, actual/est)` with both sides clamped to ≥ 1 row
    /// (so an exact hit — and a "predicted none, got none" — is 1.0).
    /// `None` until actuals exist.
    pub fn q_error(&self) -> Option<f64> {
        self.actual_rows.map(|a| q_error(self.est_rows, a))
    }

    /// This node followed by its subtree, depth-first.
    pub fn walk(&self) -> Vec<&ExplainNode> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.walk());
        }
        out
    }

    fn fmt_indent(&self, f: &mut std::fmt::Formatter<'_>, indent: usize) -> std::fmt::Result {
        write!(
            f,
            "{}{}  (est {:.1} rows",
            "  ".repeat(indent),
            self.op,
            self.est_rows
        )?;
        if let Some(a) = self.actual_rows {
            write!(f, ", actual {a}, q-err {:.2}", q_error(self.est_rows, a))?;
        }
        if let Some(ns) = self.time_ns {
            write!(f, ", {}", fmt_duration(ns))?;
        }
        if let Some(m) = self.morsels {
            write!(f, ", {m} morsels")?;
        }
        writeln!(f, ")")?;
        for c in &self.children {
            c.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

/// A rendered plan with per-operator estimates (and, for
/// `EXPLAIN ANALYZE`, actuals). `Display` prints the indented tree.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The plan root.
    pub root: ExplainNode,
    /// True when built from a profiled run ([`explain_analyze`]).
    pub analyzed: bool,
}

impl Explain {
    /// Every operator, depth-first from the root.
    pub fn operators(&self) -> Vec<&ExplainNode> {
        self.root.walk()
    }

    /// The worst per-operator q-error of the plan, if analyzed.
    pub fn max_q_error(&self) -> Option<f64> {
        self.operators()
            .iter()
            .filter_map(|n| n.q_error())
            .fold(None, |m, q| Some(m.map_or(q, |m: f64| m.max(q))))
    }
}

impl std::fmt::Display for Explain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.root.fmt_indent(f, 0)
    }
}

/// `max(est/actual, actual/est)`, both sides clamped to ≥ 1 row.
pub fn q_error(est_rows: f64, actual_rows: u64) -> f64 {
    let e = est_rows.max(1.0);
    let a = (actual_rows as f64).max(1.0);
    (e / a).max(a / e)
}

/// Renders nanoseconds at a human scale (`873ns`, `12.4µs`, `3.21ms`, …).
pub fn fmt_duration(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn build(
    plan: &Plan,
    cost: &CostModel<'_>,
    profile: Option<&ExecProfile>,
    path: &mut Vec<u32>,
) -> ExplainNode {
    let est = cost.estimate(plan);
    let key = path_key(path);
    let children = plan
        .children()
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            path.push(i as u32);
            let n = build(c, cost, profile, path);
            path.pop();
            n
        })
        .collect();
    ExplainNode {
        op: plan.op_label(),
        est_rows: est.rows,
        est_cost: est.cost,
        actual_rows: profile.and_then(|p| p.rows_at(&key)),
        time_ns: profile.and_then(|p| p.time_ns_at(&key)),
        morsels: profile.and_then(|p| p.morsels_at(&key)),
        path: key,
        children,
    }
}

/// `EXPLAIN`: the plan with the cost model's estimated rows and cost per
/// operator. Deterministic for a fixed plan, summary and card source.
pub fn explain(plan: &Plan, cost: &CostModel<'_>) -> Explain {
    Explain {
        root: build(plan, cost, None, &mut Vec::new()),
        analyzed: false,
    }
}

/// `EXPLAIN ANALYZE`: [`explain`] joined with a profiled run of the same
/// plan — actual rows, inclusive wall time and morsel counts per
/// operator, by positional path. The profile must come from executing
/// exactly `plan` (as [`crate::exec::execute_profiled`] produces).
pub fn explain_analyze(plan: &Plan, cost: &CostModel<'_>, profile: &ExecProfile) -> Explain {
    Explain {
        root: build(plan, cost, Some(profile), &mut Vec::new()),
        analyzed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::NoCards;
    use crate::exec::{execute_profiled, execute_profiled_with, ExecOpts, MapProvider};
    use crate::plan::Predicate;
    use crate::relation::{AttrKind, Cell, NestedRelation, Row, Schema};
    use smv_summary::Summary;
    use smv_xml::{Document, StructId};

    fn fixture() -> (MapProvider, Summary) {
        let doc = Document::from_parens(r#"a(b="1" b="2" b="3")"#);
        let summary = Summary::of(&doc);
        let mut views = MapProvider::default();
        views.insert(
            "v",
            NestedRelation::new(
                Schema::atoms(&[("b.ID", AttrKind::Id), ("b.V", AttrKind::Value)]),
                (0..3)
                    .map(|i| Row::new(vec![Cell::Id(StructId::Seq(i)), Cell::Null]))
                    .collect(),
            ),
        );
        (views, summary)
    }

    fn plan() -> Plan {
        Plan::Select {
            input: Box::new(Plan::Scan { view: "v".into() }),
            pred: Predicate::NotNull { col: 0 },
        }
    }

    #[test]
    fn explain_has_estimates_and_no_actuals() {
        let (_, summary) = fixture();
        let cost = CostModel::new(&summary, &NoCards);
        let ex = explain(&plan(), &cost);
        assert!(!ex.analyzed);
        assert_eq!(ex.operators().len(), 2);
        for n in ex.operators() {
            assert!(n.est_rows >= 0.0);
            assert_eq!(n.actual_rows, None);
            assert_eq!(n.q_error(), None);
        }
        assert_eq!(ex.root.path, "");
        assert_eq!(ex.root.children[0].path, "0");
        let txt = ex.to_string();
        assert!(txt.contains("Select"), "{txt}");
        assert!(txt.contains("  Scan(v)  (est"), "{txt}");
        assert!(!txt.contains("actual"), "{txt}");
    }

    #[test]
    fn explain_analyze_joins_profile_by_path() {
        let (views, summary) = fixture();
        let cost = CostModel::new(&summary, &NoCards);
        let (out, prof) = execute_profiled(&plan(), &views).unwrap();
        let ex = explain_analyze(&plan(), &cost, &prof);
        assert!(ex.analyzed);
        assert_eq!(ex.root.actual_rows, Some(out.len() as u64));
        for n in ex.operators() {
            assert_eq!(n.actual_rows, prof.rows_at(&n.path), "at `{}`", n.path);
            assert!(n.time_ns.is_some(), "time at `{}`", n.path);
            assert!(n.q_error().is_some());
        }
        assert!(ex.max_q_error().unwrap() >= 1.0);
        let txt = ex.to_string();
        assert!(txt.contains("actual 3"), "{txt}");
        assert!(txt.contains("q-err"), "{txt}");
    }

    #[test]
    fn analyze_shows_morsels_under_forced_parallelism() {
        let (views, summary) = fixture();
        let cost = CostModel::new(&summary, &NoCards);
        let opts = ExecOpts {
            threads: 2,
            min_par_rows: 0,
            ..ExecOpts::default()
        };
        let (_, prof) = execute_profiled_with(&plan(), &views, &opts).unwrap();
        let ex = explain_analyze(&plan(), &cost, &prof);
        assert!(ex.root.morsels.unwrap_or(0) >= 1, "select fans out");
        assert!(ex.to_string().contains("morsels"));
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(q_error(10.0, 10), 1.0);
        assert_eq!(q_error(0.0, 0), 1.0, "none predicted, none seen");
        assert_eq!(q_error(20.0, 10), 2.0);
        assert_eq!(q_error(5.0, 10), 2.0);
    }

    #[test]
    fn durations_render_at_human_scale() {
        assert_eq!(fmt_duration(873), "873ns");
        assert_eq!(fmt_duration(12_400), "12.4µs");
        assert_eq!(fmt_duration(3_210_000), "3.21ms");
        assert_eq!(fmt_duration(2_500_000_000), "2.50s");
    }
}
