//! Cardinality estimation and plan costing over summary statistics.
//!
//! The rewriting algorithm (paper, Algorithm 1) enumerates *all*
//! S-equivalent plans but says nothing about which one to run. Following
//! the XML-warehouse line of work (Mahboubi & Darmont), this module turns
//! the structural summary into a cost model: every summary path carries a
//! node count, a child fan-out and value-distribution statistics (see
//! `smv-summary`), and every plan column can be annotated with the set of
//! summary paths its values may sit on. From these two ingredients the
//! model estimates, bottom-up over a [`Plan`]:
//!
//! * **output rows** — scans from view-extent sizes, structural joins
//!   from path-pair containment counts (every document node has exactly
//!   one ancestor on each ancestor path, so the containment count of a
//!   path pair `(a, b)` with `a` an ancestor of `b` is `count(b)`),
//!   selections from label counts and value selectivities, nest/unnest
//!   from fan-outs;
//! * **work** — a unit-cost sum over the operators, with materialize-
//!   everything semantics (each operator pays its input and output rows;
//!   content navigation pays a re-parse penalty per row).
//!
//! Estimates are deliberately *total*: unknown views and unannotated
//! columns fall back to documented defaults rather than failing, so the
//! model can always rank plans.

use crate::feedback::FeedbackStore;
use crate::plan::{Plan, Predicate};
use crate::struct_join::StructRel;
use smv_pattern::{Bound, Formula, Interval};
use smv_summary::{Summary, ValueHistogram};
use smv_xml::NodeId;
use std::rc::Rc;

/// Default extent size assumed for views the source does not know.
const DEFAULT_ROWS: f64 = 1_000.0;
/// Selectivity of a non-point value predicate when the distinct-value
/// sketch has saturated (or no paths are known) and nothing better can be
/// derived.
const RANGE_SEL: f64 = 1.0 / 3.0;
/// Selectivity of a label-equality selection with unknown paths.
const LABEL_SEL: f64 = 0.5;
/// Selectivity of a not-null filter with unknown paths.
const NOT_NULL_SEL: f64 = 0.9;
/// Join selectivity fallback for structural joins with unknown paths.
const STRUCT_SEL: f64 = 0.05;
/// Average nested-table size when no fan-out can be derived.
const DEFAULT_FAN: f64 = 2.0;
/// Per-row penalty for re-parsing stored content during navigation.
const CONTENT_PARSE_COST: f64 = 16.0;

/// Per-column path annotation of a relation: which summary paths the
/// column's (non-null) values may sit on. An empty candidate set means
/// *unknown*, not *empty*.
#[derive(Clone, Debug, Default)]
pub enum ColCard {
    /// Atomic column with candidate summary paths.
    Atom(Vec<NodeId>),
    /// Nested table column with its inner layout.
    Nested(Vec<ColCard>),
    /// Nothing is known about this column.
    #[default]
    Unknown,
}

impl ColCard {
    fn paths(&self) -> &[NodeId] {
        match self {
            ColCard::Atom(ps) => ps,
            _ => &[],
        }
    }
}

/// Scan-level statistics supplied by the view layer.
#[derive(Clone, Debug)]
pub struct ScanCard {
    /// Rows in the stored extent (estimated when not materialized).
    pub rows: f64,
    /// Per stored column: candidate summary paths, mirroring the view's
    /// relational schema (nested columns carry their inner layout).
    pub cols: Vec<ColCard>,
}

/// Supplies per-view scan statistics to the cost model.
pub trait CardSource {
    /// Statistics for the extent of `view`, if the view is known.
    fn scan_card(&self, view: &str) -> Option<ScanCard>;
}

/// The estimate for a (sub)plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated total work (unit-cost sum over all operators).
    pub cost: f64,
}

/// Internal per-node estimate: rows + cumulative cost + column layout.
struct Est {
    rows: f64,
    cost: f64,
    cols: Vec<ColCard>,
}

/// A summary-driven cost model for [`Plan`]s.
///
/// Scan statistics are memoized per view name: the rewriting enumeration
/// estimates thousands of plans over the same handful of scans, and a
/// [`CardSource`] may recompute path annotations on every call. The memo
/// hands cards out behind an [`Rc`], so a cache hit never deep-clones
/// the card (probes borrow the `&str` key; only a first miss allocates
/// its `String`).
///
/// With [`CostModel::with_feedback`], memoized runtime selectivities
/// (selection pass-rates, join selectivities — see
/// [`crate::feedback::FeedbackStore`]) take precedence over the static
/// summary-driven guesses wherever an observation exists.
pub struct CostModel<'a> {
    summary: &'a Summary,
    source: &'a dyn CardSource,
    feedback: Option<&'a FeedbackStore>,
    scan_cache: std::cell::RefCell<std::collections::HashMap<String, Option<Rc<ScanCard>>>>,
}

impl<'a> CostModel<'a> {
    /// Builds a model over a summary and a scan-statistics source.
    pub fn new(summary: &'a Summary, source: &'a dyn CardSource) -> CostModel<'a> {
        CostModel {
            summary,
            source,
            feedback: None,
            scan_cache: std::cell::RefCell::new(std::collections::HashMap::new()),
        }
    }

    /// Applies runtime feedback: wherever `store` holds a memoized
    /// selectivity for a selection or join fragment, it replaces the
    /// static estimate.
    pub fn with_feedback(mut self, store: &'a FeedbackStore) -> CostModel<'a> {
        self.feedback = Some(store);
        self
    }

    /// Memoized [`CardSource::scan_card`]. The probe borrows `view`
    /// (`Borrow<str>`), so a hit costs one hash lookup and an `Rc`
    /// clone; the `String` key is allocated once, on first miss.
    fn scan_card(&self, view: &str) -> Option<Rc<ScanCard>> {
        if let Some(cached) = self.scan_cache.borrow().get(view) {
            return cached.clone();
        }
        let card = self.source.scan_card(view).map(Rc::new);
        self.scan_cache
            .borrow_mut()
            .insert(view.to_owned(), card.clone());
        card
    }

    /// Estimates output rows and total work for `plan`.
    pub fn estimate(&self, plan: &Plan) -> PlanEstimate {
        let e = self.est(plan);
        PlanEstimate {
            rows: e.rows,
            cost: e.cost,
        }
    }

    /// Total document-node count over a candidate path set (`None` when
    /// the set is unknown/empty).
    fn path_total(&self, paths: &[NodeId]) -> Option<f64> {
        if paths.is_empty() {
            return None;
        }
        Some(paths.iter().map(|&p| self.summary.count(p) as f64).sum())
    }

    fn est(&self, plan: &Plan) -> Est {
        match plan {
            Plan::Scan { view } => match self.scan_card(view) {
                Some(sc) => Est {
                    rows: sc.rows,
                    cost: sc.rows,
                    cols: sc.cols.clone(),
                },
                None => Est {
                    rows: DEFAULT_ROWS,
                    cost: DEFAULT_ROWS,
                    cols: Vec::new(),
                },
            },
            Plan::Select { input, pred } => {
                let mut e = self.est(input);
                let sel = match pred {
                    Predicate::Value { col, formula } => {
                        let paths = e.cols.get(*col).map(ColCard::paths).unwrap_or(&[]);
                        match self.path_total(paths) {
                            Some(total) if total > 0.0 => {
                                let values: f64 = paths
                                    .iter()
                                    .map(|&p| self.summary.value_count(p) as f64)
                                    .sum();
                                let distinct: f64 = paths
                                    .iter()
                                    .map(|&p| self.summary.distinct_values(p) as f64)
                                    .sum::<f64>()
                                    .max(1.0);
                                let value_frac = (values / total).clamp(0.0, 1.0);
                                let pred_sel = match point_count(formula) {
                                    Some(points) => (points as f64 / distinct).min(1.0),
                                    None => self.range_selectivity(paths, formula),
                                };
                                value_frac * pred_sel
                            }
                            _ => RANGE_SEL,
                        }
                    }
                    Predicate::LabelEq { col, label } => {
                        let paths = e.cols.get(*col).map(ColCard::paths).unwrap_or(&[]);
                        match self.path_total(paths) {
                            Some(total) if total > 0.0 => {
                                let matching: Vec<NodeId> = paths
                                    .iter()
                                    .copied()
                                    .filter(|&p| self.summary.label(p) == *label)
                                    .collect();
                                let kept: f64 =
                                    matching.iter().map(|&p| self.summary.count(p) as f64).sum();
                                // the selection also narrows the column's
                                // candidate paths to the matching labels
                                if let Some(ColCard::Atom(ps)) = e.cols.get_mut(*col) {
                                    *ps = matching;
                                }
                                (kept / total).clamp(0.0, 1.0)
                            }
                            _ => LABEL_SEL,
                        }
                    }
                    Predicate::NotNull { .. } => NOT_NULL_SEL,
                };
                // an observed pass-rate for this exact fragment beats any
                // static guess (the label narrowing above still applies)
                let sel = self
                    .feedback
                    .and_then(|f| f.select_selectivity(input, pred))
                    .unwrap_or(sel);
                e.cost += e.rows;
                e.rows *= sel;
                e
            }
            Plan::Project { input, cols } => {
                let e = self.est(input);
                let projected = cols
                    .iter()
                    .map(|&c| e.cols.get(c).cloned().unwrap_or_default())
                    .collect();
                Est {
                    rows: e.rows,
                    cost: e.cost + e.rows,
                    cols: projected,
                }
            }
            Plan::IdJoin {
                left,
                right,
                lcol,
                rcol,
            } => {
                let l = self.est(left);
                let r = self.est(right);
                let lp = l.cols.get(*lcol).map(ColCard::paths).unwrap_or(&[]);
                let rp = r.cols.get(*rcol).map(ColCard::paths).unwrap_or(&[]);
                let rows = match (self.path_total(lp), self.path_total(rp)) {
                    (Some(dl), Some(dr)) if dl > 0.0 && dr > 0.0 => {
                        // IDs are unique per node: the shared key domain is
                        // the node count on the common paths
                        let shared: f64 = lp
                            .iter()
                            .filter(|p| rp.contains(p))
                            .map(|&p| self.summary.count(p) as f64)
                            .sum();
                        l.rows * r.rows * shared / (dl * dr)
                    }
                    _ => l.rows * r.rows / l.rows.max(r.rows).max(1.0),
                };
                let rows = match self
                    .feedback
                    .and_then(|f| f.join_selectivity(left, right, *lcol, *rcol, None))
                {
                    Some(s) => l.rows * r.rows * s,
                    None => rows,
                };
                let mut cols = l.cols;
                cols.extend(r.cols);
                Est {
                    rows,
                    cost: l.cost + r.cost + l.rows + r.rows + rows,
                    cols,
                }
            }
            Plan::StructJoin {
                left,
                right,
                lcol,
                rcol,
                rel,
            } => {
                let l = self.est(left);
                let r = self.est(right);
                let lp = l.cols.get(*lcol).map(ColCard::paths).unwrap_or(&[]);
                let rp = r.cols.get(*rcol).map(ColCard::paths).unwrap_or(&[]);
                let rows = match (self.path_total(lp), self.path_total(rp)) {
                    (Some(dl), Some(dr)) if dl > 0.0 && dr > 0.0 => {
                        // containment count of a path pair (a ≺≺ b) is
                        // count(b): each document node has exactly one
                        // ancestor on every ancestor path
                        let mut pairs = 0.0;
                        for &pa in lp {
                            for &pb in rp {
                                let related = match rel {
                                    StructRel::Parent => self.summary.is_parent(pa, pb),
                                    StructRel::Ancestor => self.summary.is_ancestor(pa, pb),
                                };
                                if related {
                                    pairs += self.summary.count(pb) as f64;
                                }
                            }
                        }
                        pairs * (l.rows / dl) * (r.rows / dr)
                    }
                    _ => l.rows * r.rows * STRUCT_SEL,
                };
                let rows = match self
                    .feedback
                    .and_then(|f| f.join_selectivity(left, right, *lcol, *rcol, Some(*rel)))
                {
                    Some(s) => l.rows * r.rows * s,
                    None => rows,
                };
                let mut cols = l.cols;
                cols.extend(r.cols);
                Est {
                    rows,
                    cost: l.cost + r.cost + l.rows + r.rows + rows,
                    cols,
                }
            }
            Plan::Union { inputs } => {
                let mut rows = 0.0;
                let mut cost = 0.0;
                let mut cols: Vec<ColCard> = Vec::new();
                for (i, p) in inputs.iter().enumerate() {
                    let e = self.est(p);
                    rows += e.rows;
                    cost += e.cost + e.rows;
                    if i == 0 {
                        cols = e.cols;
                    } else {
                        // merge candidate paths per position; mismatched
                        // layouts degrade to unknown
                        for (c, ec) in cols.iter_mut().zip(e.cols) {
                            *c = match (std::mem::take(c), ec) {
                                (ColCard::Atom(mut a), ColCard::Atom(b)) => {
                                    for p in b {
                                        if !a.contains(&p) {
                                            a.push(p);
                                        }
                                    }
                                    ColCard::Atom(a)
                                }
                                _ => ColCard::Unknown,
                            };
                        }
                    }
                }
                Est { rows, cost, cols }
            }
            Plan::Nest {
                input,
                key_cols,
                nested_cols,
                ..
            } => {
                let e = self.est(input);
                // distinct key tuples: at least the distinct count of any
                // single key column — take the largest single-column bound
                let key_bound = key_cols
                    .iter()
                    .filter_map(|&c| self.path_total(e.cols.get(c).map(ColCard::paths)?))
                    .fold(None::<f64>, |acc, d| Some(acc.map_or(d, |a| a.max(d))));
                let rows = match key_bound {
                    Some(d) => e.rows.min(d.max(1.0)),
                    None => e.rows * 0.5,
                };
                let mut cols: Vec<ColCard> = key_cols
                    .iter()
                    .map(|&c| e.cols.get(c).cloned().unwrap_or_default())
                    .collect();
                cols.push(ColCard::Nested(
                    nested_cols
                        .iter()
                        .map(|&c| e.cols.get(c).cloned().unwrap_or_default())
                        .collect(),
                ));
                Est {
                    rows,
                    cost: e.cost + e.rows,
                    cols,
                }
            }
            Plan::Unnest { input, col, outer } => {
                let e = self.est(input);
                let inner = match e.cols.get(*col) {
                    Some(ColCard::Nested(inner)) => inner.clone(),
                    _ => Vec::new(),
                };
                // fan-out: inner nodes per outer row, derived from the
                // summary when an outer column's path is an ancestor of an
                // inner column's path
                let fan = self.unnest_fanout(&e.cols, *col, &inner);
                let fan = if *outer { fan.max(1.0) } else { fan };
                let rows = (e.rows * fan).max(0.0);
                let mut cols: Vec<ColCard> = Vec::new();
                for (i, c) in e.cols.iter().enumerate() {
                    if i == *col {
                        if inner.is_empty() {
                            cols.push(ColCard::Unknown);
                        } else {
                            cols.extend(inner.iter().cloned());
                        }
                    } else {
                        cols.push(c.clone());
                    }
                }
                Est {
                    rows,
                    cost: e.cost + e.rows + rows,
                    cols,
                }
            }
            Plan::NavigateContent {
                input,
                content_col,
                steps,
                attrs,
                optional,
                ..
            } => {
                let e = self.est(input);
                let base = e.cols.get(*content_col).map(ColCard::paths).unwrap_or(&[]);
                // walk the steps through the summary, multiplying fan-outs
                let mut frontier: Vec<NodeId> = base.to_vec();
                let mut fan = if frontier.is_empty() {
                    DEFAULT_FAN
                } else {
                    1.0
                };
                for step in steps {
                    if frontier.is_empty() {
                        break;
                    }
                    let mut next = Vec::new();
                    let mut step_fan = 0.0;
                    for &p in &frontier {
                        for &c in self.summary.children(p) {
                            if step.label.is_none_or(|l| self.summary.label(c) == l) {
                                step_fan += self.summary.avg_fanout(c);
                                next.push(c);
                            }
                        }
                    }
                    fan *= step_fan / frontier.len().max(1) as f64;
                    frontier = next;
                }
                let fan = if *optional { fan.max(1.0) } else { fan };
                let rows = e.rows * fan;
                let mut cols = e.cols;
                for _ in attrs {
                    cols.push(if frontier.is_empty() {
                        ColCard::Unknown
                    } else {
                        ColCard::Atom(frontier.clone())
                    });
                }
                Est {
                    rows,
                    cost: e.cost + e.rows * CONTENT_PARSE_COST + rows,
                    cols,
                }
            }
            Plan::DeriveParentId {
                input, col, levels, ..
            } => {
                let e = self.est(input);
                let derived: Vec<NodeId> = e
                    .cols
                    .get(*col)
                    .map(ColCard::paths)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|&p| {
                        let mut cur = p;
                        for _ in 0..*levels {
                            cur = self.summary.parent(cur)?;
                        }
                        Some(cur)
                    })
                    .collect();
                let mut cols = e.cols;
                cols.push(if derived.is_empty() {
                    ColCard::Unknown
                } else {
                    ColCard::Atom(derived)
                });
                Est {
                    rows: e.rows,
                    cost: e.cost + e.rows,
                    cols,
                }
            }
            Plan::DupElim { input } => {
                let e = self.est(input);
                // bound distinct rows by the node counts when every column
                // is path-annotated (a relation over k annotated columns
                // cannot have more distinct rows than the product of the
                // per-column domains, capped by the input)
                let bound = e
                    .cols
                    .iter()
                    .map(|c| self.path_total(c.paths()))
                    .try_fold(1.0f64, |acc, d| d.map(|d| (acc * d.max(1.0)).min(1e18)));
                let rows = match bound {
                    Some(b) if !e.cols.is_empty() => e.rows.min(b),
                    _ => e.rows,
                };
                Est {
                    rows,
                    cost: e.cost + e.rows,
                    cols: e.cols,
                }
            }
        }
    }

    /// Selectivity of a non-point (range) predicate over the candidate
    /// paths' value distributions. While a path's distinct-value sketch
    /// has not saturated it *is* the exact distinct-value set (its
    /// extremes are the true min/max), so the fraction of distinct values
    /// the formula accepts — weighted by each path's valued-node count,
    /// assuming uniform frequency per distinct value — is an end-biased
    /// estimate far tighter than a blanket constant. Once a sketch has
    /// saturated, the end-biased equi-width histogram built from its
    /// accepted sample takes over; only a path with neither (non-numeric
    /// saturated values) degrades the whole estimate to `RANGE_SEL` (1/3).
    fn range_selectivity(&self, paths: &[NodeId], formula: &Formula) -> f64 {
        let mut kept = 0.0;
        let mut total = 0.0;
        for &p in paths {
            let Some(frac) = value_accepted_fraction(self.summary, p, formula) else {
                return RANGE_SEL; // no sample, no histogram: unknown
            };
            let values = self.summary.value_count(p) as f64;
            total += values;
            kept += values * frac;
        }
        if total > 0.0 {
            (kept / total).clamp(0.0, 1.0)
        } else {
            RANGE_SEL
        }
    }

    /// Average inner rows per outer row for an unnest: looks for an outer
    /// column whose path is an ancestor of an inner column's path and uses
    /// the summary counts; falls back to [`DEFAULT_FAN`].
    fn unnest_fanout(&self, outer_cols: &[ColCard], col: usize, inner: &[ColCard]) -> f64 {
        let inner_paths: Vec<NodeId> = inner
            .iter()
            .flat_map(|c| c.paths().iter().copied())
            .collect();
        if inner_paths.is_empty() {
            return DEFAULT_FAN;
        }
        for (i, oc) in outer_cols.iter().enumerate() {
            if i == col {
                continue;
            }
            for &pa in oc.paths() {
                let reach: f64 = inner_paths
                    .iter()
                    .filter(|&&pb| self.summary.is_ancestor(pa, pb))
                    .map(|&pb| self.summary.count(pb) as f64)
                    .sum();
                let anchor = self.summary.count(pa) as f64;
                if reach > 0.0 && anchor > 0.0 {
                    return reach / anchor;
                }
            }
        }
        DEFAULT_FAN
    }
}

/// Fraction of path `p`'s distinct-value sample that `f` accepts, while
/// the sketch is exact (`None` once it has saturated). The single source
/// of the uniform-frequency range-selectivity assumption — the plan cost
/// model and the view layer's extent estimates both derive from it, so
/// benefit-per-byte ranking and operator costing can never disagree on a
/// predicate's selectivity.
pub fn sample_accepted_fraction(s: &Summary, p: NodeId, f: &Formula) -> Option<f64> {
    let sample = s.distinct_sample(p)?;
    let (mut n, mut acc) = (0usize, 0usize);
    for v in sample {
        n += 1;
        if f.accepts(v) {
            acc += 1;
        }
    }
    Some(if n == 0 { 0.0 } else { acc as f64 / n as f64 })
}

/// Fraction of path `p`'s value distribution that `f` accepts, from the
/// best statistic available: the exact distinct-value sample while the
/// sketch is unsaturated, the end-biased equi-width histogram after
/// saturation, `None` when neither exists (non-numeric saturated
/// values). The single entry point shared by the plan cost model and the
/// view layer's extent estimates, so operator costing and benefit-per-
/// byte ranking can never disagree on a predicate's selectivity.
pub fn value_accepted_fraction(s: &Summary, p: NodeId, f: &Formula) -> Option<f64> {
    if let Some(frac) = sample_accepted_fraction(s, p, f) {
        return Some(frac);
    }
    s.value_histogram(p)
        .and_then(|h| histogram_accepted_fraction(h, f))
}

/// Fraction of a saturated path's histogram mass that `f` accepts.
///
/// Integer mass is apportioned per bucket by fractional overlap with the
/// formula's intervals (the histogram is equi-width with end-biased
/// overflow buckets tracking the true observed min/max); string mass —
/// invisible to an integer histogram — contributes the blanket
/// `RANGE_SEL` (1/3). Returns `None` on an empty histogram.
pub fn histogram_accepted_fraction(h: &ValueHistogram, f: &Formula) -> Option<f64> {
    let total = h.total() as f64;
    if total <= 0.0 {
        return None;
    }
    if f.is_top() {
        return Some(1.0);
    }
    let mut accepted = 0.0;
    for iv in f.intervals() {
        if let Some((a, b)) = interval_int_range(iv) {
            accepted += h.mass_in(a, b);
        }
    }
    accepted += h.string_count() as f64 * RANGE_SEL;
    Some((accepted / total).clamp(0.0, 1.0))
}

/// The inclusive integer range a formula interval admits, or `None` when
/// it admits no integer. Uses the domain's total order (all integers sort
/// before all strings): a string lower bound excludes every integer, a
/// string upper bound admits them all.
fn interval_int_range(iv: &Interval) -> Option<(i64, i64)> {
    use smv_xml::Value;
    let lo = match &iv.lo {
        Bound::NegInf => i64::MIN,
        Bound::Incl(Value::Int(x)) => *x,
        Bound::Excl(Value::Int(x)) => x.checked_add(1)?,
        // ints sort before strings: v > "s" admits no integer
        Bound::Incl(Value::Str(_)) | Bound::Excl(Value::Str(_)) => return None,
        Bound::PosInf => return None,
    };
    let hi = match &iv.hi {
        Bound::PosInf => i64::MAX,
        Bound::Incl(Value::Int(x)) => *x,
        Bound::Excl(Value::Int(x)) => x.checked_sub(1)?,
        // every integer is below every string
        Bound::Incl(Value::Str(_)) | Bound::Excl(Value::Str(_)) => i64::MAX,
        Bound::NegInf => return None,
    };
    (lo <= hi).then_some((lo, hi))
}

/// Number of single-point intervals in a formula, or `None` when some
/// interval admits a range (point predicates get `points / distinct`
/// selectivity, ranges a fixed default).
fn point_count(f: &Formula) -> Option<usize> {
    if f.is_top() {
        return None;
    }
    let mut points = 0;
    for iv in f.intervals() {
        match (&iv.lo, &iv.hi) {
            (Bound::Incl(a), Bound::Incl(b)) if a == b => points += 1,
            _ => return None,
        }
    }
    Some(points)
}

/// A [`CardSource`] that knows nothing — every scan falls back to the
/// default extent size. Useful in tests and as a neutral baseline.
pub struct NoCards;

impl CardSource for NoCards {
    fn scan_card(&self, _view: &str) -> Option<ScanCard> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_xml::Document;
    use std::collections::HashMap;

    struct MapCards(HashMap<String, ScanCard>);

    impl CardSource for MapCards {
        fn scan_card(&self, view: &str) -> Option<ScanCard> {
            self.0.get(view).cloned()
        }
    }

    /// r(a(b b c(d)) a(b c)): counts r=1 a=2 b=3 c=2 d=1.
    fn summary() -> Summary {
        Summary::of(&Document::from_parens(
            r#"r(a(b="1" b="2" c(d)) a(b="1" c))"#,
        ))
    }

    fn cards(s: &Summary) -> MapCards {
        let a = s.node_by_path("/r/a").unwrap();
        let b = s.node_by_path("/r/a/b").unwrap();
        let mut m = HashMap::new();
        m.insert(
            "va".to_owned(),
            ScanCard {
                rows: 2.0,
                cols: vec![ColCard::Atom(vec![a])],
            },
        );
        m.insert(
            "vb".to_owned(),
            ScanCard {
                rows: 3.0,
                cols: vec![ColCard::Atom(vec![b]), ColCard::Atom(vec![b])],
            },
        );
        MapCards(m)
    }

    #[test]
    fn scan_and_select_estimates() {
        let s = summary();
        let src = cards(&s);
        let model = CostModel::new(&s, &src);
        let scan = Plan::Scan { view: "vb".into() };
        assert_eq!(model.estimate(&scan).rows, 3.0);
        // equality on 2 distinct values over 3 valued nodes: 3 × (1/2)
        let sel = Plan::Select {
            input: Box::new(scan),
            pred: Predicate::Value {
                col: 1,
                formula: Formula::eq(smv_xml::Value::int(1)),
            },
        };
        let e = model.estimate(&sel);
        assert!((e.rows - 1.5).abs() < 1e-9, "rows = {}", e.rows);
    }

    #[test]
    fn range_selectivity_uses_distinct_sketch() {
        let s = summary();
        let src = cards(&s);
        let model = CostModel::new(&s, &src);
        // b carries values {1, 2} over 3 valued nodes; v ≥ 2 keeps one of
        // the two distinct values → selectivity 1/2, not the blanket 1/3
        let sel = Plan::Select {
            input: Box::new(Plan::Scan { view: "vb".into() }),
            pred: Predicate::Value {
                col: 1,
                formula: Formula::ge(smv_xml::Value::int(2)),
            },
        };
        let e = model.estimate(&sel);
        assert!((e.rows - 1.5).abs() < 1e-9, "rows = {}", e.rows);
        // a range outside the observed min/max keeps nothing
        let none = Plan::Select {
            input: Box::new(Plan::Scan { view: "vb".into() }),
            pred: Predicate::Value {
                col: 1,
                formula: Formula::gt(smv_xml::Value::int(99)),
            },
        };
        assert_eq!(model.estimate(&none).rows, 0.0);
    }

    #[test]
    fn saturated_sketch_falls_back_to_the_histogram() {
        // 1500 uniform distinct values saturate the sketch; the histogram
        // keeps range selectivities near the truth instead of RANGE_SEL
        let body: Vec<String> = (0..1500).map(|i| format!(r#"b="{i}""#)).collect();
        let s = Summary::of(&Document::from_parens(&format!("r({})", body.join(" "))));
        let b = s.node_by_path("/r/b").unwrap();
        assert!(s.distinct_sample(b).is_none(), "sketch saturated");
        let mut m = HashMap::new();
        m.insert(
            "vb".to_owned(),
            ScanCard {
                rows: 1500.0,
                cols: vec![ColCard::Atom(vec![b]), ColCard::Atom(vec![b])],
            },
        );
        let src = MapCards(m);
        let model = CostModel::new(&s, &src);
        // v >= 1200 keeps the top 20% of the uniform range
        let sel = Plan::Select {
            input: Box::new(Plan::Scan { view: "vb".into() }),
            pred: Predicate::Value {
                col: 1,
                formula: Formula::ge(smv_xml::Value::int(1200)),
            },
        };
        let e = model.estimate(&sel);
        assert!(
            (e.rows - 300.0).abs() < 60.0,
            "histogram estimate near truth (300): {}",
            e.rows
        );
        // direct helper agreement
        let frac = value_accepted_fraction(&s, b, &Formula::ge(smv_xml::Value::int(1200))).unwrap();
        assert!((frac - 0.2).abs() < 0.04, "accepted fraction {frac}");
    }

    #[test]
    fn feedback_overrides_static_selection_and_join_estimates() {
        use crate::feedback::{ExecProfile, FeedbackStore};
        let s = summary();
        let src = cards(&s);
        let formula = Formula::ge(smv_xml::Value::int(2));
        let sel = Plan::Select {
            input: Box::new(Plan::Scan { view: "vb".into() }),
            pred: Predicate::Value { col: 1, formula },
        };
        let join = Plan::StructJoin {
            left: Box::new(Plan::Scan { view: "va".into() }),
            right: Box::new(sel.clone()),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Parent,
        };
        // pretend execution observed: 3 scanned, 1 kept, join emitted 1
        let mut prof = ExecProfile::default();
        prof.record(&[0], 2); // scan va
        prof.record(&[1, 0], 3); // scan vb
        prof.record(&[1], 1); // select
        prof.record(&[], 1); // join
        let mut store = FeedbackStore::new();
        store.ingest(&join, &prof);
        let model = CostModel::new(&s, &src).with_feedback(&store);
        let e_sel = model.estimate(&sel);
        assert!((e_sel.rows - 1.0).abs() < 1e-9, "memoized 1/3 pass-rate");
        let e_join = model.estimate(&join);
        assert!(
            (e_join.rows - 1.0).abs() < 1e-9,
            "memoized join selectivity: rows = {}",
            e_join.rows
        );
        // without feedback the static estimates differ
        let static_model = CostModel::new(&s, &src);
        assert!((static_model.estimate(&sel).rows - 1.0).abs() > 1e-9);
    }

    #[test]
    fn structural_join_uses_containment_counts() {
        let s = summary();
        let src = cards(&s);
        let model = CostModel::new(&s, &src);
        let join = Plan::StructJoin {
            left: Box::new(Plan::Scan { view: "va".into() }),
            right: Box::new(Plan::Scan { view: "vb".into() }),
            lcol: 0,
            rcol: 0,
            rel: StructRel::Parent,
        };
        // every b has exactly one a parent: 3 pairs, full extents present
        let e = model.estimate(&join);
        assert!((e.rows - 3.0).abs() < 1e-9, "rows = {}", e.rows);
        assert!(e.cost > 5.0, "join pays its inputs: {}", e.cost);
    }

    #[test]
    fn unknown_views_fall_back_to_defaults() {
        let s = summary();
        let model = CostModel::new(&s, &NoCards);
        let e = model.estimate(&Plan::Scan { view: "zz".into() });
        assert_eq!(e.rows, DEFAULT_ROWS);
    }

    #[test]
    fn cheaper_scan_beats_filtered_wide_scan() {
        // the ranking decision bench-pr2 relies on: a narrow extent scan
        // costs less than a wide scan plus label selection
        let s = summary();
        let b = s.node_by_path("/r/a/b").unwrap();
        let c = s.node_by_path("/r/a/c").unwrap();
        let d = s.node_by_path("/r/a/c/d").unwrap();
        let mut m = HashMap::new();
        m.insert(
            "narrow".to_owned(),
            ScanCard {
                rows: 3.0,
                cols: vec![ColCard::Atom(vec![b])],
            },
        );
        m.insert(
            "wide".to_owned(),
            ScanCard {
                rows: 6.0,
                cols: vec![ColCard::Atom(vec![b, c, d])],
            },
        );
        let src = MapCards(m);
        let model = CostModel::new(&s, &src);
        let narrow = model.estimate(&Plan::Scan {
            view: "narrow".into(),
        });
        let wide = model.estimate(&Plan::Select {
            input: Box::new(Plan::Scan {
                view: "wide".into(),
            }),
            pred: Predicate::LabelEq {
                col: 0,
                label: smv_xml::Label::intern("b"),
            },
        });
        assert!(wide.cost > narrow.cost);
        // and the label selection narrows the estimate toward b's count
        assert!((wide.rows - 3.0).abs() < 1e-9, "rows = {}", wide.rows);
    }
}
