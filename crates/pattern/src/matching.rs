//! Pattern embeddings and evaluation, generic over match targets.
//!
//! Embeddings (paper §2.2) are defined from a pattern into *documents*;
//! the same machinery is reused for embeddings into *summaries* (needed to
//! build canonical models, §2.4) and into *canonical-model trees* (needed
//! by the containment test, Proposition 3.1). [`MatchTarget`] abstracts
//! the difference: each target type decides when a node *admits* a value
//! predicate —
//!
//! * a document node admits `φ` iff its value satisfies `φ` (a node with
//!   no value only admits `T`);
//! * a summary node admits any satisfiable `φ` (conforming documents may
//!   put arbitrary values there);
//! * a decorated canonical-tree node with formula `ψ` admits `φ` iff
//!   `ψ ⇒ φ` (decorated embeddings, §4.2).
//!
//! Optional (dashed) edges follow Definition 4.1: a node under an optional
//! edge maps to `⊥` **only when no match exists** under its parent's image
//! (maximal-match semantics).

use crate::ast::{Axis, PNodeId, Pattern};
use crate::formula::Formula;
use smv_summary::Summary;
use smv_xml::{Document, LabeledTree, NodeId};
use std::collections::HashSet;

/// A tree a pattern can be embedded into.
pub trait MatchTarget: LabeledTree {
    /// May a pattern node decorated with `f` be mapped onto `n`?
    fn admits(&self, n: NodeId, f: &Formula) -> bool;
}

impl MatchTarget for Document {
    fn admits(&self, n: NodeId, f: &Formula) -> bool {
        if f.is_top() {
            return true;
        }
        match self.value(n) {
            Some(v) => f.accepts(v),
            None => false,
        }
    }
}

impl MatchTarget for Summary {
    fn admits(&self, _n: NodeId, f: &Formula) -> bool {
        f.is_sat()
    }
}

/// A partial assignment of target nodes to pattern nodes; `None` is `⊥`.
pub type Assignment = Vec<Option<NodeId>>;

/// Precomputed candidate sets and embedding enumeration for one
/// (pattern, target) pair.
pub struct Matcher<'p, 't, T: MatchTarget> {
    pattern: &'p Pattern,
    target: &'t T,
    /// Per pattern node, the target nodes it can map to in *some* optional
    /// embedding (labels, predicates and all non-optional descendants
    /// check out). Sorted by node id.
    cand: Vec<Vec<NodeId>>,
}

impl<'p, 't, T: MatchTarget> Matcher<'p, 't, T> {
    /// Computes candidate sets bottom-up in `O(|p| · |t| · fanout)`.
    pub fn new(pattern: &'p Pattern, target: &'t T) -> Self {
        let n_nodes = pattern.len();
        let mut cand: Vec<Vec<NodeId>> = vec![Vec::new(); n_nodes];
        let all: Vec<NodeId> = (0..target.tree_len() as u32).map(NodeId).collect();
        for pid in (0..n_nodes as u32).map(PNodeId).rev() {
            let pnode = pattern.node(pid);
            let pool: &[NodeId] = if pid == pattern.root() {
                std::slice::from_ref(&all[target.tree_root().idx()])
            } else {
                &all
            };
            let mut list = Vec::new();
            'outer: for &x in pool {
                if let Some(l) = pnode.label {
                    if target.tree_label(x) != l {
                        continue;
                    }
                }
                if !target.admits(x, &pnode.predicate) {
                    continue;
                }
                for &m in pattern.children(pid) {
                    if pattern.node(m).optional {
                        continue; // optional children never block a match
                    }
                    let ok = cand[m.idx()]
                        .iter()
                        .any(|&y| rel_ok(target, pattern.node(m).axis, x, y));
                    if !ok {
                        continue 'outer;
                    }
                }
                list.push(x);
            }
            cand[pid.idx()] = list;
        }
        Matcher {
            pattern,
            target,
            cand,
        }
    }

    /// Candidate target nodes for a pattern node.
    pub fn candidates(&self, n: PNodeId) -> &[NodeId] {
        &self.cand[n.idx()]
    }

    /// Does at least one (optional) embedding exist?
    pub fn exists(&self) -> bool {
        !self.cand[self.pattern.root().idx()].is_empty()
    }

    /// Enumerates optional embeddings; the callback returns `false` to stop
    /// early. The assignment slice is indexed by pattern node id.
    ///
    /// Pattern node ids are assigned parents-before-children, so a plain
    /// backtracking recursion in id order is sound: each node's only
    /// constraint is against its (already assigned) parent.
    pub fn for_each_embedding(&self, mut f: impl FnMut(&Assignment) -> bool) {
        let mut asg: Assignment = vec![None; self.pattern.len()];
        self.rec(0, &mut asg, &mut f);
    }

    /// Returns false to abort the entire enumeration.
    fn rec(
        &self,
        idx: usize,
        asg: &mut Assignment,
        f: &mut impl FnMut(&Assignment) -> bool,
    ) -> bool {
        if idx == self.pattern.len() {
            return f(asg);
        }
        let m = PNodeId(idx as u32);
        let mnode = self.pattern.node(m);
        let parent_img = match self.pattern.parent(m) {
            None => {
                // the pattern root: must map onto the target root
                for &x in &self.cand[m.idx()] {
                    asg[m.idx()] = Some(x);
                    if !self.rec(idx + 1, asg, f) {
                        return false;
                    }
                }
                asg[m.idx()] = None;
                return true;
            }
            Some(p) => asg[p.idx()],
        };
        let Some(x) = parent_img else {
            // Def 4.1 3(b)(i): parent is ⊥ ⇒ child is ⊥
            asg[m.idx()] = None;
            return self.rec(idx + 1, asg, f);
        };
        let ys: Vec<NodeId> = self.cand[m.idx()]
            .iter()
            .copied()
            .filter(|&y| rel_ok(self.target, mnode.axis, x, y))
            .collect();
        if ys.is_empty() {
            if mnode.optional {
                // Def 4.1 3(b)(ii): no match exists ⇒ ⊥ (maximality)
                asg[m.idx()] = None;
                return self.rec(idx + 1, asg, f);
            }
            return true; // dead branch; backtrack
        }
        for y in ys {
            asg[m.idx()] = Some(y);
            if !self.rec(idx + 1, asg, f) {
                return false;
            }
        }
        asg[m.idx()] = None;
        true
    }

    /// All distinct return tuples (paper: `p(t)`), up to `limit` embeddings
    /// explored (guards pathological cases).
    pub fn tuples(&self, limit: usize) -> HashSet<Vec<Option<NodeId>>> {
        let returns = self.pattern.return_nodes();
        let mut out = HashSet::new();
        let mut seen = 0usize;
        self.for_each_embedding(|asg| {
            out.insert(returns.iter().map(|r| asg[r.idx()]).collect());
            seen += 1;
            seen < limit
        });
        out
    }

    /// Does any embedding produce exactly `tuple` on the return nodes?
    pub fn has_tuple(&self, tuple: &[Option<NodeId>]) -> bool {
        let returns = self.pattern.return_nodes();
        debug_assert_eq!(returns.len(), tuple.len());
        let mut found = false;
        self.for_each_embedding(|asg| {
            if returns
                .iter()
                .zip(tuple.iter())
                .all(|(r, t)| asg[r.idx()] == *t)
            {
                found = true;
                return false;
            }
            true
        });
        found
    }
}

fn rel_ok<T: MatchTarget>(t: &T, axis: Axis, x: NodeId, y: NodeId) -> bool {
    match axis {
        Axis::Child => t.tree_parent(y) == Some(x),
        Axis::Descendant => t.tree_is_ancestor(x, y),
    }
}

/// Evaluates `p(d)` on a document: the set of return tuples (Section 2.2,
/// extended with `⊥` for optional edges per §4.3).
pub fn evaluate(p: &Pattern, d: &Document) -> HashSet<Vec<Option<NodeId>>> {
    Matcher::new(p, d).tuples(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;

    fn tuple1(n: u32) -> Vec<Option<NodeId>> {
        vec![Some(NodeId(n))]
    }

    #[test]
    fn conjunctive_embedding_fig2_style() {
        // d = a(b c(b d(e)) d(c(b) b(d) b e)), p = a(//b{ret}, //d(/e))
        let d = Document::from_parens("a(b c(b d(e)) d(c(b) b(d) b e))");
        let p = parse_pattern("a(//b{ret}, //d(/e))").unwrap();
        let tuples = evaluate(&p, &d);
        // b nodes: 1, 3, 7, 8(b under d? let's see) — compute labels
        let bs: Vec<u32> = d
            .iter()
            .filter(|&n| d.label(n).as_str() == "b")
            .map(|n| n.0)
            .collect();
        let expect: HashSet<_> = bs.iter().map(|&n| tuple1(n)).collect();
        assert_eq!(tuples, expect);
    }

    #[test]
    fn child_vs_descendant_axes() {
        let d = Document::from_parens("a(b(c) c)");
        let direct = parse_pattern("a(/c{ret})").unwrap();
        let deep = parse_pattern("a(//c{ret})").unwrap();
        let t1 = evaluate(&direct, &d);
        let t2 = evaluate(&deep, &d);
        assert_eq!(t1.len(), 1);
        assert_eq!(t2.len(), 2);
    }

    #[test]
    fn wildcard_matches_any_label() {
        let d = Document::from_parens("a(b c d)");
        let p = parse_pattern("a(/*{ret})").unwrap();
        assert_eq!(evaluate(&p, &d).len(), 3);
    }

    #[test]
    fn value_predicates_filter() {
        let d = Document::from_parens(r#"a(b="1" b="5" b="9" b)"#);
        let p = parse_pattern("a(/b{ret}[v>2 and v<8])").unwrap();
        let tuples = evaluate(&p, &d);
        assert_eq!(tuples, HashSet::from([tuple1(2)]));
        // a valueless b never satisfies a non-T predicate
        let p2 = parse_pattern("a(/b{ret}[v>=0 or v<0])").unwrap();
        assert!(p2.node(PNodeId(1)).predicate.is_top(), "v>=0 or v<0 is T");
    }

    #[test]
    fn optional_edge_binds_bottom_only_when_no_match() {
        // the paper's Figure 10: p1(t) = {(c1,b2),(c1,b3),(c2,⊥)}
        // t = a(c(d(b e) d(b)) c(e))  — c1 has two b descendants via d
        // children; c2 has none.
        let d = Document::from_parens("a(c(d(b e) d(b)) c(e))");
        let p = parse_pattern("a(/c{ret}(?/d(/b{ret})))").unwrap();
        let tuples = evaluate(&p, &d);
        let c1 = NodeId(1);
        let c2 = NodeId(7);
        assert_eq!(d.label(c1).as_str(), "c");
        assert_eq!(d.label(c2).as_str(), "c");
        let b1 = NodeId(3);
        let b2 = NodeId(6);
        let expect: HashSet<Vec<Option<NodeId>>> = HashSet::from([
            vec![Some(c1), Some(b1)],
            vec![Some(c1), Some(b2)],
            vec![Some(c2), None],
        ]);
        assert_eq!(tuples, expect);
    }

    #[test]
    fn optional_under_optional_cascades_bottom() {
        let d = Document::from_parens("a(x)");
        let p = parse_pattern("a(?/b{ret}(?/c{ret}))").unwrap();
        let tuples = evaluate(&p, &d);
        assert_eq!(tuples, HashSet::from([vec![None, None]]));
    }

    #[test]
    fn optional_inner_still_maximal() {
        let d = Document::from_parens("a(b)");
        let p = parse_pattern("a(?/b{ret}(?/c{ret}))").unwrap();
        let tuples = evaluate(&p, &d);
        assert_eq!(tuples, HashSet::from([vec![Some(NodeId(1)), None]]));
    }

    #[test]
    fn non_optional_failure_kills_match() {
        let d = Document::from_parens("a(b)");
        let p = parse_pattern("a(/b{ret}(/c))").unwrap();
        assert!(evaluate(&p, &d).is_empty());
    }

    #[test]
    fn root_must_map_to_root() {
        let d = Document::from_parens("a(a(b))");
        let p = parse_pattern("a(/b{ret})").unwrap();
        // the inner a has a b child but the pattern root must map to the
        // document root, whose only child is `a`.
        assert!(evaluate(&p, &d).is_empty());
    }

    #[test]
    fn multiple_return_nodes_cross_product_of_consistent_bindings() {
        let d = Document::from_parens("a(b b c)");
        let p = parse_pattern("a(/b{ret}, /c{ret})").unwrap();
        assert_eq!(evaluate(&p, &d).len(), 2);
    }

    #[test]
    fn summary_matching_ignores_values_but_not_contradictions() {
        let s = Summary::of(&Document::from_parens("a(b)"));
        let p = parse_pattern("a(/b{ret}[v>3])").unwrap();
        let m = Matcher::new(&p, &s);
        assert!(m.exists(), "satisfiable predicate embeds into summary");
        // contradiction cannot embed anywhere
        let mut p2 = parse_pattern("a(/b{ret})").unwrap();
        p2.node_mut(PNodeId(1)).predicate = Formula::bottom();
        let m2 = Matcher::new(&p2, &s);
        assert!(!m2.exists());
    }

    #[test]
    fn has_tuple_early_exit() {
        let d = Document::from_parens("a(b b b)");
        let p = parse_pattern("a(/b{ret})").unwrap();
        let m = Matcher::new(&p, &d);
        assert!(m.has_tuple(&[Some(NodeId(2))]));
        assert!(!m.has_tuple(&[Some(NodeId(0))]));
        assert!(!m.has_tuple(&[None]));
    }
}
