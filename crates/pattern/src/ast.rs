//! Extended tree patterns (paper §2.2, §4.2-§4.5).
//!
//! A pattern is a tree whose nodes carry a label or `*`, whose edges are
//! `/` (child) or `//` (descendant) and may be **optional** (dashed in the
//! paper: produce a tuple even when the subtree fails to bind) and/or
//! **nested** (`n`-labeled: bindings of the subtree are grouped into one
//! nested table per outer tuple). Nodes may be decorated with a value
//! predicate [`Formula`] and annotated with up to four stored attributes
//! (§4.4): `ID` (identifier), `L` (label), `V` (value), `C` (content — the
//! serialized subtree).
//!
//! *Return nodes* are the nodes carrying at least one attribute, plus any
//! node explicitly marked (`ret`); the latter models the bare conjunctive
//! patterns of §2-§3 that return nodes abstractly.

use crate::formula::Formula;
use smv_xml::Label;

/// Index of a node within a [`Pattern`]; parents precede children.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PNodeId(pub u32);

impl PNodeId {
    /// The pattern root.
    pub const ROOT: PNodeId = PNodeId(0);
    /// Index as usize.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for PNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Edge axis from the parent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    /// `/` — child.
    Child,
    /// `//` — descendant.
    Descendant,
}

/// The stored-attribute annotation of a node (§4.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct Attrs {
    /// Store the node's identifier.
    pub id: bool,
    /// Store the node's label (useful for `*` nodes).
    pub label: bool,
    /// Store the node's value.
    pub value: bool,
    /// Store the node's content (serialized subtree).
    pub content: bool,
}

impl Attrs {
    /// No attributes.
    pub const NONE: Attrs = Attrs {
        id: false,
        label: false,
        value: false,
        content: false,
    };

    /// Any attribute stored?
    pub fn any(self) -> bool {
        self.id || self.label || self.value || self.content
    }

    /// Number of attributes stored.
    pub fn count(self) -> usize {
        self.id as usize + self.label as usize + self.value as usize + self.content as usize
    }

    /// Does `self` store every attribute `other` stores?
    pub fn covers(self, other: Attrs) -> bool {
        (self.id || !other.id)
            && (self.label || !other.label)
            && (self.value || !other.value)
            && (self.content || !other.content)
    }

    /// Union of stored attributes.
    pub fn union(self, other: Attrs) -> Attrs {
        Attrs {
            id: self.id || other.id,
            label: self.label || other.label,
            value: self.value || other.value,
            content: self.content || other.content,
        }
    }
}

/// One pattern node.
#[derive(Clone, Debug)]
pub struct PNode {
    /// `Some(l)` for a labeled node, `None` for `*`.
    pub label: Option<Label>,
    /// Axis of the edge from the parent (ignored at the root).
    pub axis: Axis,
    /// Dashed (optional) edge from the parent (§4.3).
    pub optional: bool,
    /// Nested (`n`) edge from the parent (§4.5).
    pub nested: bool,
    /// Stored attributes (§4.4).
    pub attrs: Attrs,
    /// Bare return-node marker (conjunctive patterns of §2-§3).
    pub ret: bool,
    /// Value predicate (§4.2); `T` when absent.
    pub predicate: Formula,
    parent: Option<PNodeId>,
    children: Vec<PNodeId>,
}

/// An extended tree pattern.
#[derive(Clone, Debug)]
pub struct Pattern {
    nodes: Vec<PNode>,
}

impl Pattern {
    /// Creates a pattern consisting of a single root node.
    pub fn new(label: Option<Label>) -> Pattern {
        Pattern {
            nodes: vec![PNode {
                label,
                axis: Axis::Child,
                optional: false,
                nested: false,
                attrs: Attrs::NONE,
                ret: false,
                predicate: Formula::top(),
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Adds a child node under `parent`; returns the new node's id.
    pub fn add_child(&mut self, parent: PNodeId, axis: Axis, label: Option<Label>) -> PNodeId {
        let id = PNodeId(self.nodes.len() as u32);
        self.nodes.push(PNode {
            label,
            axis,
            optional: false,
            nested: false,
            attrs: Attrs::NONE,
            ret: false,
            predicate: Formula::top(),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.idx()].children.push(id);
        id
    }

    /// Mutable access to a node's decorations.
    pub fn node_mut(&mut self, n: PNodeId) -> &mut PNode {
        &mut self.nodes[n.idx()]
    }

    /// Read access to a node.
    pub fn node(&self, n: PNodeId) -> &PNode {
        &self.nodes[n.idx()]
    }

    /// The root node id.
    pub fn root(&self) -> PNodeId {
        PNodeId::ROOT
    }

    /// Number of nodes (`|p|`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never true — patterns always have a root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Children of `n`, in order.
    pub fn children(&self, n: PNodeId) -> &[PNodeId] {
        &self.nodes[n.idx()].children
    }

    /// Parent of `n`.
    pub fn parent(&self, n: PNodeId) -> Option<PNodeId> {
        self.nodes[n.idx()].parent
    }

    /// All node ids, parents before children.
    pub fn iter(&self) -> impl Iterator<Item = PNodeId> + '_ {
        (0..self.nodes.len() as u32).map(PNodeId)
    }

    /// The return nodes, in node-id order: nodes with attributes or an
    /// explicit `ret` mark.
    pub fn return_nodes(&self) -> Vec<PNodeId> {
        self.iter()
            .filter(|&n| {
                let nd = self.node(n);
                nd.ret || nd.attrs.any()
            })
            .collect()
    }

    /// Arity = number of return nodes.
    pub fn arity(&self) -> usize {
        self.return_nodes().len()
    }

    /// Ids of nodes whose incoming edge is optional.
    pub fn optional_edges(&self) -> Vec<PNodeId> {
        self.iter()
            .skip(1)
            .filter(|&n| self.node(n).optional)
            .collect()
    }

    /// Ids of nodes whose incoming edge is nested.
    pub fn nested_edges(&self) -> Vec<PNodeId> {
        self.iter()
            .skip(1)
            .filter(|&n| self.node(n).nested)
            .collect()
    }

    /// Is `a` a (possibly transitive) ancestor of `b` in the pattern tree?
    pub fn is_ancestor(&self, a: PNodeId, b: PNodeId) -> bool {
        let mut cur = self.parent(b);
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Nodes of the subtree rooted at `n`, pre-order.
    pub fn subtree(&self, n: PNodeId) -> Vec<PNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in self.children(x).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The *nesting anchors* of `n`: ancestors `n'` such that the edge
    /// going down from `n'` towards `n` is nested, ordered root-to-leaf
    /// (§4.5 — the pattern-side half of a nesting sequence).
    pub fn nesting_anchors(&self, n: PNodeId) -> Vec<PNodeId> {
        let mut anchors = Vec::new();
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            if self.node(cur).nested {
                anchors.push(p);
            }
            cur = p;
        }
        anchors.reverse();
        anchors
    }

    /// A copy with every edge made non-optional (the *strict* pattern `p0`
    /// of §4.3).
    pub fn strict_copy(&self) -> Pattern {
        let mut p = self.clone();
        for i in 0..p.nodes.len() {
            p.nodes[i].optional = false;
        }
        p
    }

    /// A copy with every predicate erased (the core pattern of a decorated
    /// pattern, §4.2).
    pub fn erase_predicates(&self) -> Pattern {
        let mut p = self.clone();
        for i in 0..p.nodes.len() {
            p.nodes[i].predicate = Formula::top();
        }
        p
    }

    /// A copy with every nested flag cleared (the unnested pattern of
    /// Proposition 4.2 condition 1).
    pub fn unnest_copy(&self) -> Pattern {
        let mut p = self.clone();
        for i in 0..p.nodes.len() {
            p.nodes[i].nested = false;
        }
        p
    }

    /// A deep copy where only the given nodes are return nodes (clears all
    /// attrs/ret elsewhere). Used when choosing k return nodes prior to a
    /// containment test (§3.3).
    pub fn with_returns(&self, returns: &[PNodeId]) -> Pattern {
        let mut p = self.clone();
        for i in 0..p.nodes.len() {
            let keep = returns.contains(&PNodeId(i as u32));
            if !keep {
                p.nodes[i].ret = false;
                p.nodes[i].attrs = Attrs::NONE;
            } else if !p.nodes[i].attrs.any() {
                p.nodes[i].ret = true;
            }
        }
        p
    }

    /// Grafts a deep copy of `other`'s subtree rooted at `on` as a child of
    /// `under` in `self`, preserving decorations; returns the id of the
    /// copied subtree root. The copied root keeps its axis/optional/nested
    /// flags unless overridden by the caller afterwards.
    pub fn graft(&mut self, under: PNodeId, other: &Pattern, on: PNodeId) -> PNodeId {
        let src = other.node(on);
        let new_root = self.add_child(under, src.axis, src.label);
        {
            let nd = self.node_mut(new_root);
            nd.optional = src.optional;
            nd.nested = src.nested;
            nd.attrs = src.attrs;
            nd.ret = src.ret;
            nd.predicate = src.predicate.clone();
        }
        let kids: Vec<PNodeId> = other.children(on).to_vec();
        for c in kids {
            self.graft(new_root, other, c);
        }
        new_root
    }

    /// Extracts the subtree rooted at `n` as a standalone pattern (the
    /// extracted root loses its incoming-edge flags).
    pub fn extract(&self, n: PNodeId) -> Pattern {
        let mut p = Pattern::new(self.node(n).label);
        {
            let src = self.node(n);
            let root = p.node_mut(PNodeId::ROOT);
            root.attrs = src.attrs;
            root.ret = src.ret;
            root.predicate = src.predicate.clone();
        }
        let kids: Vec<PNodeId> = self.children(n).to_vec();
        for c in kids {
            p.graft(PNodeId::ROOT, self, c);
        }
        p
    }
}

/// The canonical textual form of a pattern — the cache key the query
/// service's pattern and plan caches are built on.
///
/// The rendering is **injective up to pattern identity**: it serializes
/// every semantically meaningful part of the pattern (labels, axes,
/// optional/nested edge flags, stored attributes, return marks, value
/// predicates in the parser's own grammar) in a fixed traversal order, so
///
/// * two patterns with equal canonical form are semantically identical —
///   they annotate, rewrite and execute identically (the property
///   `tests/properties.rs` pins), and
/// * the round-trip is idempotent: `parse_pattern(canonical_form(p))`
///   yields a pattern with the same canonical form and the same
///   semantics as `p`. (The one normalization the round-trip performs is
///   dropping a redundant explicit `ret` mark from a node that already
///   stores attributes — attribute-bearing nodes are return nodes either
///   way.)
///
/// Sibling order is deliberately **preserved**, not sorted: return-node
/// order (and therefore output column order) follows pattern node order,
/// so patterns differing only in sibling order produce differently laid
/// out results and must not share a cache entry.
pub fn canonical_form(p: &Pattern) -> String {
    p.to_string()
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn write_node(
            p: &Pattern,
            n: PNodeId,
            f: &mut std::fmt::Formatter<'_>,
        ) -> std::fmt::Result {
            let nd = p.node(n);
            match nd.label {
                Some(l) => write!(f, "{l}")?,
                None => f.write_str("*")?,
            }
            let mut parts = Vec::new();
            if nd.attrs.id {
                parts.push("id");
            }
            if nd.attrs.label {
                parts.push("l");
            }
            if nd.attrs.value {
                parts.push("v");
            }
            if nd.attrs.content {
                parts.push("c");
            }
            if nd.ret && !nd.attrs.any() {
                parts.push("ret");
            }
            if !parts.is_empty() {
                write!(f, "{{{}}}", parts.join(","))?;
            }
            if !nd.predicate.is_top() {
                write!(f, "[{}]", nd.predicate)?;
            }
            if !p.children(n).is_empty() {
                f.write_str("(")?;
                for (i, &c) in p.children(n).iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    let cd = p.node(c);
                    if cd.optional {
                        f.write_str("?")?;
                    }
                    if cd.nested {
                        f.write_str("%")?;
                    }
                    f.write_str(match cd.axis {
                        Axis::Child => "/",
                        Axis::Descendant => "//",
                    })?;
                    write_node(p, c, f)?;
                }
                f.write_str(")")?;
            }
            Ok(())
        }
        write_node(self, self.root(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smv_xml::Value;

    #[test]
    fn build_and_inspect() {
        // regions(//*{id}(/description, ?//bold{v}))
        let mut p = Pattern::new(Some(Label::intern("regions")));
        let star = p.add_child(p.root(), Axis::Descendant, None);
        p.node_mut(star).attrs.id = true;
        let desc = p.add_child(star, Axis::Child, Some(Label::intern("description")));
        let bold = p.add_child(star, Axis::Descendant, Some(Label::intern("bold")));
        p.node_mut(bold).optional = true;
        p.node_mut(bold).attrs.value = true;
        assert_eq!(p.len(), 4);
        assert_eq!(p.return_nodes(), vec![star, bold]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.optional_edges(), vec![bold]);
        assert!(p.is_ancestor(p.root(), bold));
        assert!(!p.is_ancestor(desc, bold));
        assert_eq!(p.to_string(), "regions(//*{id}(/description, ?//bold{v}))");
    }

    #[test]
    fn nesting_anchors_walk_nested_edges() {
        // a(%//b(%/c(/d{ret})))
        let mut p = Pattern::new(Some(Label::intern("a")));
        let b = p.add_child(p.root(), Axis::Descendant, Some(Label::intern("b")));
        p.node_mut(b).nested = true;
        let c = p.add_child(b, Axis::Child, Some(Label::intern("c")));
        p.node_mut(c).nested = true;
        let d = p.add_child(c, Axis::Child, Some(Label::intern("d")));
        p.node_mut(d).ret = true;
        assert_eq!(p.nesting_anchors(d), vec![p.root(), b]);
        assert_eq!(p.nesting_anchors(b), vec![p.root()]);
        assert_eq!(p.nesting_anchors(p.root()), vec![]);
    }

    #[test]
    fn strict_and_erase_copies() {
        let mut p = Pattern::new(Some(Label::intern("a")));
        let b = p.add_child(p.root(), Axis::Child, Some(Label::intern("b")));
        p.node_mut(b).optional = true;
        p.node_mut(b).predicate = Formula::eq(Value::int(3));
        let strict = p.strict_copy();
        assert!(strict.optional_edges().is_empty());
        assert!(
            !strict.node(b).predicate.is_top(),
            "strict keeps predicates"
        );
        let erased = p.erase_predicates();
        assert!(erased.node(b).predicate.is_top());
        assert!(erased.node(b).optional, "erase keeps optionality");
    }

    #[test]
    fn with_returns_narrows() {
        let mut p = Pattern::new(Some(Label::intern("a")));
        let b = p.add_child(p.root(), Axis::Child, Some(Label::intern("b")));
        p.node_mut(b).attrs.id = true;
        let c = p.add_child(p.root(), Axis::Child, Some(Label::intern("c")));
        p.node_mut(c).attrs.value = true;
        let q = p.with_returns(&[c]);
        assert_eq!(q.return_nodes(), vec![c]);
        assert!(!q.node(b).attrs.any());
    }

    #[test]
    fn graft_and_extract_round_trip() {
        let mut p = Pattern::new(Some(Label::intern("a")));
        let b = p.add_child(p.root(), Axis::Descendant, Some(Label::intern("b")));
        p.node_mut(b).attrs.id = true;
        let c = p.add_child(b, Axis::Child, None);
        p.node_mut(c).optional = true;
        let sub = p.extract(b);
        assert_eq!(sub.to_string(), "b{id}(?/*)");
        let mut host = Pattern::new(Some(Label::intern("r")));
        let grafted = host.graft(host.root(), &p, b);
        assert_eq!(host.node(grafted).axis, Axis::Descendant);
        assert_eq!(host.to_string(), "r(//b{id}(?/*))");
    }

    #[test]
    fn canonical_form_round_trips_and_normalizes_redundant_ret() {
        use crate::parser::parse_pattern;
        // A node carrying both stored attrs and an explicit ret mark: the
        // canonical form absorbs the redundant mark (attrs imply return),
        // and the round-trip is idempotent and semantics-preserving.
        let mut p = Pattern::new(Some(Label::intern("a")));
        let b = p.add_child(p.root(), Axis::Descendant, Some(Label::intern("b")));
        p.node_mut(b).attrs.value = true;
        p.node_mut(b).ret = true;
        let form = canonical_form(&p);
        assert_eq!(form, "a(//b{v})");
        let p2 = parse_pattern(&form).unwrap();
        assert_eq!(canonical_form(&p2), form, "idempotent under reparse");
        assert_eq!(p2.return_nodes(), p.return_nodes());
        assert_eq!(p2.arity(), p.arity());

        // Sibling order is preserved, not sorted: swapped children must
        // produce distinct canonical forms (output column order differs).
        let left = parse_pattern("r(/a{v}, /b{v})").unwrap();
        let right = parse_pattern("r(/b{v}, /a{v})").unwrap();
        assert_ne!(canonical_form(&left), canonical_form(&right));
    }

    #[test]
    fn attrs_cover_and_union() {
        let a = Attrs {
            id: true,
            value: true,
            ..Attrs::NONE
        };
        let b = Attrs {
            id: true,
            ..Attrs::NONE
        };
        assert!(a.covers(b));
        assert!(!b.covers(a));
        assert_eq!(a.union(b), a);
        assert_eq!(b.count(), 1);
    }
}
