//! Summary-based canonical models — `mod_S(p)` (paper §2.4, §4.1-§4.5).
//!
//! For every embedding `e : p → S`, the *canonical tree* `t_e` contains one
//! distinguished node per pattern node, connected by the label chains that
//! link their images in `S`; under an enhanced summary the tree is closed
//! under **strong edges** (§4.1). Decorated patterns put each node's
//! formula on its distinguished node and `T` elsewhere (§4.2). Optional
//! edges contribute *cut variants* `t_{e,F}` in which the subtrees hanging
//! below a subset `F` of the optional edges are erased (§4.3) — together
//! with embeddings that never mapped the optional subtree at all (its
//! paths may simply be absent from a conforming document).
//!
//! The model is **duplicate-free**: trees are hashed structurally
//! (summary path + formula + return designation, children unordered).
//!
//! Canonical trees implement [`MatchTarget`], so the containment test
//! (Proposition 3.1) evaluates `p'(t_e)` with the ordinary matcher using
//! decorated-embedding formula implication.

use crate::ast::{Axis, PNodeId, Pattern};
use crate::formula::Formula;
use crate::matching::{Assignment, MatchTarget, Matcher};
use smv_summary::Summary;
use smv_xml::{Label, LabeledTree, NodeId, Value};
use std::collections::{HashMap, HashSet};

/// One node of a canonical tree.
#[derive(Clone, Debug)]
pub struct CNode {
    /// Label (copied from the summary node).
    pub label: Label,
    /// The summary node (path) this canonical node sits on.
    pub spath: NodeId,
    /// The decoration formula (`T` on chain/closure nodes).
    pub formula: Formula,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// A canonical-model tree with its designated return nodes.
#[derive(Clone, Debug)]
pub struct CTree {
    nodes: Vec<CNode>,
    /// Per return index of the source pattern: the designated canonical
    /// node (`None` = `⊥`, the return node was cut or unmappable).
    ret: Vec<Option<NodeId>>,
    /// Per return index: the nesting sequence `ns(n_i, e)` as summary
    /// nodes, root-to-leaf (§4.5). Empty for unmapped returns.
    ret_nesting: Vec<Vec<NodeId>>,
}

impl CTree {
    /// Builds a canonical tree from an **ancestor-closed set of summary
    /// paths** with per-path formulas, designating return nodes by path.
    ///
    /// This is the representation the rewriting engine works in: any
    /// algebraic plan over views is `S`-equivalent to a union of such
    /// trees (Proposition 3.3, under the paper's §4.2 simplification that
    /// canonical trees are `S`-subtrees). Optionally closes the tree
    /// under strong edges.
    pub fn from_path_set(
        s: &Summary,
        nodes: &[(NodeId, Formula)],
        ret_paths: &[Option<NodeId>],
        strong: bool,
    ) -> CTree {
        let mut sorted: Vec<(NodeId, Formula)> = nodes.to_vec();
        sorted.sort_by_key(|(n, _)| n.0);
        sorted.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 = b.1.and(&a.1);
                true
            } else {
                false
            }
        });
        let mut t = CTree {
            nodes: Vec::new(),
            ret: vec![None; ret_paths.len()],
            ret_nesting: vec![Vec::new(); ret_paths.len()],
        };
        let mut spath_to_cnode: HashMap<NodeId, NodeId> = HashMap::new();
        for (sp, formula) in &sorted {
            let parent = s.parent(*sp).map(|p| {
                *spath_to_cnode
                    .get(&p)
                    .expect("path set must be ancestor-closed")
            });
            let id = NodeId(t.nodes.len() as u32);
            t.nodes.push(CNode {
                label: s.label(*sp),
                spath: *sp,
                formula: formula.clone(),
                parent,
                children: Vec::new(),
            });
            if let Some(p) = parent {
                t.nodes[p.idx()].children.push(id);
            }
            spath_to_cnode.insert(*sp, id);
        }
        assert!(
            !t.nodes.is_empty(),
            "from_path_set requires at least the root path"
        );
        for (i, rp) in ret_paths.iter().enumerate() {
            if let Some(p) = rp {
                t.ret[i] = Some(
                    *spath_to_cnode
                        .get(p)
                        .expect("designated return path must be in the node set"),
                );
            }
        }
        if strong {
            strong_closure(s, &mut t);
        }
        t
    }

    /// The set of summary paths used by this tree, with conjoined
    /// formulas (`T` entries included).
    pub fn path_set(&self) -> Vec<(NodeId, Formula)> {
        let mut map: HashMap<NodeId, Formula> = HashMap::new();
        for n in &self.nodes {
            map.entry(n.spath)
                .and_modify(|f| *f = f.and(&n.formula))
                .or_insert_with(|| n.formula.clone());
        }
        let mut v: Vec<(NodeId, Formula)> = map.into_iter().collect();
        v.sort_by_key(|(n, _)| n.0);
        v
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (a canonical tree has at least its root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The designated return nodes (canonical-node ids; `None` = `⊥`).
    pub fn return_nodes(&self) -> &[Option<NodeId>] {
        &self.ret
    }

    /// The designated return nodes as summary paths.
    pub fn return_paths(&self) -> Vec<Option<NodeId>> {
        self.ret
            .iter()
            .map(|o| o.map(|c| self.nodes[c.idx()].spath))
            .collect()
    }

    /// Nesting sequence of return `i` (§4.5).
    pub fn nesting_sequence(&self, i: usize) -> &[NodeId] {
        &self.ret_nesting[i]
    }

    /// The summary path of a canonical node.
    pub fn spath(&self, n: NodeId) -> NodeId {
        self.nodes[n.idx()].spath
    }

    /// The formula of a canonical node.
    pub fn formula(&self, n: NodeId) -> &Formula {
        &self.nodes[n.idx()].formula
    }

    /// Conjunction of all node formulas, as a per-summary-path map — the
    /// paper's `φ_te(v_1, …, v_{|S|})` (§4.2). Multiple canonical nodes on
    /// the same path conjoin.
    pub fn path_formula(&self) -> HashMap<NodeId, Formula> {
        let mut map: HashMap<NodeId, Formula> = HashMap::new();
        for n in &self.nodes {
            if n.formula.is_top() {
                continue;
            }
            map.entry(n.spath)
                .and_modify(|f| *f = f.and(&n.formula))
                .or_insert_with(|| n.formula.clone());
        }
        map
    }

    /// Structural dedup key: children unordered, includes path, formula and
    /// return designation.
    fn key(&self) -> String {
        fn rec(t: &CTree, n: NodeId, out: &mut String) {
            let nd = &t.nodes[n.idx()];
            out.push('(');
            out.push_str(&nd.spath.0.to_string());
            if !nd.formula.is_top() {
                out.push('[');
                out.push_str(&nd.formula.to_string());
                out.push(']');
            }
            let marks: Vec<String> = t
                .ret
                .iter()
                .enumerate()
                .filter(|(_, r)| **r == Some(n))
                .map(|(i, _)| i.to_string())
                .collect();
            if !marks.is_empty() {
                out.push('!');
                out.push_str(&marks.join(","));
            }
            let mut kids: Vec<String> = nd
                .children
                .iter()
                .map(|&c| {
                    let mut s = String::new();
                    rec(t, c, &mut s);
                    s
                })
                .collect();
            kids.sort();
            for k in kids {
                out.push_str(&k);
            }
            out.push(')');
        }
        let mut out = String::new();
        rec(self, NodeId(0), &mut out);
        // nesting sequences participate in identity (Prop 4.2 checks)
        for ns in &self.ret_nesting {
            out.push('|');
            for s in ns {
                out.push_str(&s.0.to_string());
                out.push('.');
            }
        }
        out
    }

    /// Renders the tree in parenthesized `label@path` notation (debugging).
    pub fn render(&self) -> String {
        fn rec(t: &CTree, n: NodeId, out: &mut String) {
            let nd = &t.nodes[n.idx()];
            out.push_str(nd.label.as_str());
            if !nd.formula.is_top() {
                out.push('[');
                out.push_str(&nd.formula.to_string());
                out.push(']');
            }
            if t.ret.contains(&Some(n)) {
                out.push('!');
            }
            if !nd.children.is_empty() {
                out.push('(');
                for (i, &c) in nd.children.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    rec(t, c, out);
                }
                out.push(')');
            }
        }
        let mut out = String::new();
        rec(self, NodeId(0), &mut out);
        out
    }
}

impl LabeledTree for CTree {
    fn tree_root(&self) -> NodeId {
        NodeId(0)
    }
    fn tree_label(&self, n: NodeId) -> Label {
        self.nodes[n.idx()].label
    }
    fn tree_children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.idx()].children
    }
    fn tree_parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n.idx()].parent
    }
    fn tree_value(&self, _n: NodeId) -> Option<&Value> {
        None
    }
    fn tree_is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        // canonical trees are small; parent chasing beats bookkeeping
        let mut cur = self.nodes[b.idx()].parent;
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.nodes[p.idx()].parent;
        }
        false
    }
    fn tree_len(&self) -> usize {
        self.nodes.len()
    }
}

impl MatchTarget for CTree {
    /// Decorated embedding condition (§4.2): `φ_{e(n)}(v) ⇒ φ_n(v)`.
    fn admits(&self, n: NodeId, f: &Formula) -> bool {
        self.nodes[n.idx()].formula.implies(f)
    }
}

/// Options controlling canonical-model construction.
#[derive(Clone, Debug)]
pub struct CanonOpts {
    /// Close trees under strong edges (enhanced summaries, §4.1).
    pub use_strong: bool,
    /// Cap on the number of (pre-dedup) trees materialized; exceeding it
    /// sets [`CanonicalModel::truncated`].
    pub max_trees: usize,
}

impl Default for CanonOpts {
    fn default() -> Self {
        CanonOpts {
            use_strong: true,
            max_trees: 100_000,
        }
    }
}

/// The duplicate-free canonical model `mod_S(p)`.
#[derive(Clone, Debug)]
pub struct CanonicalModel {
    /// The canonical trees.
    pub trees: Vec<CTree>,
    /// True when enumeration hit [`CanonOpts::max_trees`]; containment
    /// tests must then answer conservatively.
    pub truncated: bool,
}

impl CanonicalModel {
    /// Is the pattern `S`-satisfiable? (`mod_S(p) ≠ ∅`, §2.4.)
    pub fn is_satisfiable(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Number of distinct canonical trees — the `|mod_S(p)|` measured in
    /// the paper's Figure 13.
    pub fn size(&self) -> usize {
        self.trees.len()
    }
}

/// Computes `mod_S(p)`.
pub fn canonical_model(p: &Pattern, s: &Summary, opts: &CanonOpts) -> CanonicalModel {
    let matcher = Matcher::new(p, s);
    let mut seen: HashSet<String> = HashSet::new();
    let mut trees = Vec::new();
    let mut truncated = false;
    let mut count = 0usize;
    // Enumerate *partial* embeddings: optional subtrees may be cut even
    // when a summary match exists (documents need not contain every path).
    let mut asg: Assignment = vec![None; p.len()];
    rec_partial(p, s, &matcher, 0, &mut asg, &mut |asg| {
        count += 1;
        if count > opts.max_trees {
            truncated = true;
            return false;
        }
        let t = build_ctree(p, s, asg, opts.use_strong);
        if seen.insert(t.key()) && designation_realizable(p, &t) {
            trees.push(t);
        }
        true
    });
    CanonicalModel { trees, truncated }
}

/// Is the designated return tuple actually produced by `p` evaluated on
/// the canonical tree itself (the tuple-level form of the paper's
/// `p(t_{e,F}) ≠ ∅` condition, §4.3)?
///
/// A cut variant may become unrealizable when another branch of the tree
/// — or a strong-closure node (§4.1) — matches the cut optional subtree:
/// Definition 4.1's maximality then *forces* a binding in every document
/// containing the tree, so the `⊥` designation can never arise and the
/// tree must not witness containment failures. The check is exact: a
/// pattern node with a non-`T` predicate never matches a `T`-formula
/// closure node (implication fails), so predicate-guarded optional
/// branches keep their `⊥` variants.
fn designation_realizable(p: &Pattern, t: &CTree) -> bool {
    if t.ret.iter().all(|r| r.is_some()) {
        // the identity embedding realizes a fully-mapped designation
        return true;
    }
    Matcher::new(p, t).has_tuple(&t.ret)
}

/// Enumerates assignments where optional subtrees may be mapped *or cut*.
fn rec_partial(
    p: &Pattern,
    s: &Summary,
    matcher: &Matcher<'_, '_, Summary>,
    idx: usize,
    asg: &mut Assignment,
    f: &mut impl FnMut(&Assignment) -> bool,
) -> bool {
    if idx == p.len() {
        return f(asg);
    }
    let m = PNodeId(idx as u32);
    let mnode = p.node(m);
    let parent_img = match p.parent(m) {
        None => {
            for &x in matcher.candidates(m) {
                asg[m.idx()] = Some(x);
                if !rec_partial(p, s, matcher, idx + 1, asg, f) {
                    return false;
                }
            }
            asg[m.idx()] = None;
            return true;
        }
        Some(par) => asg[par.idx()],
    };
    let Some(x) = parent_img else {
        asg[m.idx()] = None;
        return rec_partial(p, s, matcher, idx + 1, asg, f);
    };
    let ys: Vec<NodeId> = matcher
        .candidates(m)
        .iter()
        .copied()
        .filter(|&y| match mnode.axis {
            Axis::Child => s.is_parent(x, y),
            Axis::Descendant => s.is_ancestor(x, y),
        })
        .collect();
    if mnode.optional {
        // cut variant first (documents lacking the branch)
        asg[m.idx()] = None;
        if !rec_partial(p, s, matcher, idx + 1, asg, f) {
            return false;
        }
    } else if ys.is_empty() {
        return true; // dead branch
    }
    for y in ys {
        asg[m.idx()] = Some(y);
        if !rec_partial(p, s, matcher, idx + 1, asg, f) {
            return false;
        }
    }
    asg[m.idx()] = None;
    true
}

/// Materializes the canonical tree of one (partial) embedding.
fn build_ctree(p: &Pattern, s: &Summary, asg: &Assignment, use_strong: bool) -> CTree {
    let returns = p.return_nodes();
    let mut t = CTree {
        nodes: Vec::new(),
        ret: vec![None; returns.len()],
        ret_nesting: vec![Vec::new(); returns.len()],
    };
    let sroot = asg[p.root().idx()].expect("root is always mapped");
    t.nodes.push(CNode {
        label: s.label(sroot),
        spath: sroot,
        formula: p.node(p.root()).predicate.clone(),
        parent: None,
        children: Vec::new(),
    });
    mark_return(p, &returns, p.root(), NodeId(0), asg, s, &mut t);
    add_children(p, s, asg, p.root(), NodeId(0), &returns, &mut t);
    if use_strong {
        strong_closure(s, &mut t);
    }
    t
}

fn mark_return(
    p: &Pattern,
    returns: &[PNodeId],
    pn: PNodeId,
    cn: NodeId,
    asg: &Assignment,
    _s: &Summary,
    t: &mut CTree,
) {
    if let Some(i) = returns.iter().position(|&r| r == pn) {
        t.ret[i] = Some(cn);
        t.ret_nesting[i] = p
            .nesting_anchors(pn)
            .iter()
            .map(|&a| asg[a.idx()].expect("anchors of a mapped node are mapped"))
            .collect();
    }
}

fn add_children(
    p: &Pattern,
    s: &Summary,
    asg: &Assignment,
    pn: PNodeId,
    cn: NodeId,
    returns: &[PNodeId],
    t: &mut CTree,
) {
    for &m in p.children(pn) {
        let Some(sm) = asg[m.idx()] else {
            continue; // cut or unmappable optional subtree
        };
        let sx = t.nodes[cn.idx()].spath;
        let chain = s.tree_chain_down(sx, sm);
        let mut cur = cn;
        for (i, &sn) in chain.iter().enumerate() {
            let is_last = i == chain.len() - 1;
            let formula = if is_last {
                p.node(m).predicate.clone()
            } else {
                Formula::top()
            };
            let id = NodeId(t.nodes.len() as u32);
            t.nodes.push(CNode {
                label: s.label(sn),
                spath: sn,
                formula,
                parent: Some(cur),
                children: Vec::new(),
            });
            t.nodes[cur.idx()].children.push(id);
            cur = id;
        }
        mark_return(p, returns, m, cur, asg, s, t);
        add_children(p, s, asg, m, cur, returns, t);
    }
}

/// Adds, under every tree node, the summary subtrees reachable through
/// chains of strong edges only (enhanced canonical model, §4.1).
fn strong_closure(s: &Summary, t: &mut CTree) {
    let mut queue: Vec<NodeId> = (0..t.nodes.len() as u32).map(NodeId).collect();
    while let Some(cn) = queue.pop() {
        let sp = t.nodes[cn.idx()].spath;
        for &sc in s.children(sp) {
            if !s.is_strong_edge(sc) {
                continue;
            }
            let already = t.nodes[cn.idx()]
                .children
                .iter()
                .any(|&c| t.nodes[c.idx()].spath == sc);
            if already {
                continue;
            }
            let id = NodeId(t.nodes.len() as u32);
            t.nodes.push(CNode {
                label: s.label(sc),
                spath: sc,
                formula: Formula::top(),
                parent: Some(cn),
                children: Vec::new(),
            });
            t.nodes[cn.idx()].children.push(id);
            queue.push(id);
        }
        // existing children also need their own strong children — they are
        // in the initial queue already (or pushed when created).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use smv_xml::Document;

    fn opts_plain() -> CanonOpts {
        CanonOpts {
            use_strong: false,
            max_trees: 100_000,
        }
    }

    /// The Figure 3 situation: a pattern with two `*` nodes has exactly the
    /// embeddings the summary allows.
    #[test]
    fn fig3_two_embeddings() {
        // S of the Fig. 2 document: a(b c(b d(e)) d(c(b) b(d e)))-ish;
        // build a document realizing it.
        let d = Document::from_parens("a(b c(b d(e)) d(c(b) b(d e)))");
        let s = Summary::of(&d);
        // p = a(//*(/b, //*{ret})) — upper * with a b child and a returning
        // descendant *.
        let p = parse_pattern("a(//*(/b, //*{ret}))").unwrap();
        let m = canonical_model(&p, &s, &opts_plain());
        assert!(m.is_satisfiable());
        // upper * can be c (child b, descendants b/d/e) or d (child... d's
        // children are c and b; c has child b ⇒ only d has /b child? both
        // c and d have b children); enumerate and sanity check bounds.
        assert!(m.size() >= 2, "at least two distinct canonical trees");
        for t in &m.trees {
            assert_eq!(t.return_nodes().len(), 1);
            assert!(t.return_nodes()[0].is_some());
        }
    }

    #[test]
    fn satisfiability_detects_impossible_patterns() {
        let s = Summary::of(&Document::from_parens("a(b(c))"));
        let sat = parse_pattern("a(//c{ret})").unwrap();
        assert!(canonical_model(&sat, &s, &opts_plain()).is_satisfiable());
        let unsat = parse_pattern("a(/c{ret})").unwrap();
        assert!(
            !canonical_model(&unsat, &s, &opts_plain()).is_satisfiable(),
            "c is not a direct child of a"
        );
        let unsat2 = parse_pattern("a(//z{ret})").unwrap();
        assert!(!canonical_model(&unsat2, &s, &opts_plain()).is_satisfiable());
    }

    #[test]
    fn chains_materialize_intermediate_nodes() {
        let s = Summary::of(&Document::from_parens("a(b(c(d)))"));
        let p = parse_pattern("a(//d{ret})").unwrap();
        let m = canonical_model(&p, &s, &opts_plain());
        assert_eq!(m.size(), 1);
        let t = &m.trees[0];
        // chain a -> b -> c -> d fully materialized
        assert_eq!(t.len(), 4);
        assert_eq!(t.render(), "a(b(c(d!)))");
    }

    #[test]
    fn duplicate_embeddings_collapse() {
        // p' = /a//*//e: both intermediate choices yield the same tree
        // (the paper's duplicate-free remark in §2.4).
        let d = Document::from_parens("a(b(c(e)))");
        let s = Summary::of(&d);
        let p = parse_pattern("a(//*(//e{ret}))").unwrap();
        let m = canonical_model(&p, &s, &opts_plain());
        assert_eq!(
            m.size(),
            1,
            "trees for *=b and *=c coincide: {:?}",
            m.trees.iter().map(|t| t.render()).collect::<Vec<_>>()
        );
        assert_eq!(m.trees[0].render(), "a(b(c(e!)))");
    }

    #[test]
    fn optional_edges_produce_cut_variants() {
        // Figure 10: modS(p1) = {t1, t2, t3}
        let d = Document::from_parens("a(c(d(b e) b) c)");
        let s = Summary::of(&d); // S: a(c(d(b e) b))
        let p = parse_pattern("a(/c{ret}(?/d(/b{ret}, ?/e)))").unwrap();
        let m = canonical_model(&p, &s, &opts_plain());
        // variants: full (c,d,b,e), no-e (c,d,b), no-d-subtree (c)
        let renders: HashSet<String> = m.trees.iter().map(|t| t.render()).collect();
        assert_eq!(
            renders,
            HashSet::from([
                "a(c!(d(b! e)))".to_string(),
                "a(c!(d(b!)))".to_string(),
                "a(c!)".to_string(),
            ]),
            "got {renders:?}"
        );
        // the cut variant designates ⊥ for the b return
        assert!(m
            .trees
            .iter()
            .any(|t| t.return_nodes()[1].is_none() && t.return_nodes()[0].is_some()));
    }

    #[test]
    fn strong_edges_extend_trees() {
        // every b has a c child (strong); pattern only mentions a//b
        let d = Document::from_parens("a(b(c) b(c d))");
        let s = Summary::of(&d);
        assert!(s.is_strong_edge(s.node_by_path("/a/b/c").unwrap()));
        let p = parse_pattern("a(/b{ret})").unwrap();
        let plain = canonical_model(&p, &s, &opts_plain());
        assert_eq!(plain.trees[0].render(), "a(b!)");
        let enhanced = canonical_model(&p, &s, &CanonOpts::default());
        assert_eq!(enhanced.trees[0].render(), "a(b!(c))");
    }

    #[test]
    fn strong_closure_is_recursive() {
        let d = Document::from_parens("a(b(c(d)) b(c(d)))");
        let s = Summary::of(&d);
        let p = parse_pattern("a(/b{ret})").unwrap();
        let m = canonical_model(&p, &s, &CanonOpts::default());
        assert_eq!(m.trees[0].render(), "a(b!(c(d)))");
    }

    #[test]
    fn decorated_nodes_carry_formulas() {
        let d = Document::from_parens(r#"a(b="1")"#);
        let s = Summary::of(&d);
        let p = parse_pattern("a(/b{ret}[v>2])").unwrap();
        let m = canonical_model(&p, &s, &opts_plain());
        assert_eq!(m.size(), 1);
        let t = &m.trees[0];
        let b = t.return_nodes()[0].unwrap();
        assert_eq!(t.formula(b).to_string(), "v>2");
        let pf = t.path_formula();
        assert_eq!(pf.len(), 1);
    }

    #[test]
    fn nesting_sequences_recorded() {
        let d = Document::from_parens("a(b(c))");
        let s = Summary::of(&d);
        let p = parse_pattern("a(%//b(/c{ret}))").unwrap();
        let m = canonical_model(&p, &s, &opts_plain());
        assert_eq!(m.size(), 1);
        let t = &m.trees[0];
        // the nested edge hangs below `a`, so the anchor's image is /a
        assert_eq!(t.nesting_sequence(0), &[s.root()]);
    }

    #[test]
    fn model_size_bounded_by_cap() {
        // wildcard-heavy pattern on a wide summary
        let d = Document::from_parens("a(b(x) c(x) d(x) e(x) f(x))");
        let s = Summary::of(&d);
        let p = parse_pattern("a(//*{ret}, //*{ret})").unwrap();
        let m = canonical_model(
            &p,
            &s,
            &CanonOpts {
                use_strong: false,
                max_trees: 5,
            },
        );
        assert!(m.truncated);
        assert!(m.size() <= 5);
    }

    #[test]
    fn worst_case_is_product_not_power_here() {
        // the Figure 4 shape: |modS(p)| grows with |S| × returns
        let d = Document::from_parens("r(a(a(a(a))))");
        let s = Summary::of(&d);
        let p = parse_pattern("r(//a{ret})").unwrap();
        let m = canonical_model(&p, &s, &opts_plain());
        assert_eq!(m.size(), 4, "one tree per a-depth");
    }
}
