//! Textual syntax for extended tree patterns.
//!
//! Grammar (whitespace insignificant between tokens):
//!
//! ```text
//! pattern  := node
//! node     := label attrs? pred? children?
//! label    := NAME | '*'
//! attrs    := '{' attr (',' attr)* '}'        attr := id | l | v | c | ret
//! pred     := '[' or ']'
//! or       := and ('or' and)*
//! and      := atom ('and' atom)*
//! atom     := 'v' op const | '(' or ')'
//! op       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! const    := INT | '"' chars '"'
//! children := '(' edge (',' edge)* ')'
//! edge     := ('?'|'%')* ('//'|'/')? node     # '?' optional, '%' nested,
//!                                             # default axis '/'
//! ```
//!
//! Example — the paper's view `V1` (Figure 1c): `regions` descendant `*`
//! storing `ID`, child chain `description/parlist` with a nested optional
//! `listitem` storing `C`, and an optional `bold` storing `V`:
//!
//! ```text
//! regions(//*{id}(/description(/parlist(?%/listitem{c})), ?//bold{v}))
//! ```

use crate::ast::{Attrs, Axis, PNodeId, Pattern};
use crate::formula::Formula;
use smv_xml::{Label, Value};

/// A pattern-syntax error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pattern syntax error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for PatternParseError {}

/// Parses the textual pattern syntax.
pub fn parse_pattern(input: &str) -> Result<Pattern, PatternParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let pat = p.parse_root()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.err("trailing input after pattern");
    }
    Ok(pat)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, PatternParseError> {
        Err(PatternParseError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), PatternParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn parse_name(&mut self) -> Result<String, PatternParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'@')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a label name or `*`");
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .unwrap()
            .to_owned())
    }

    fn parse_root(&mut self) -> Result<Pattern, PatternParseError> {
        // allow a leading '/' before the root label
        self.eat("/");
        let label = self.parse_label()?;
        let mut p = Pattern::new(label);
        self.parse_decorations(&mut p, PNodeId::ROOT)?;
        self.parse_children(&mut p, PNodeId::ROOT)?;
        Ok(p)
    }

    fn parse_label(&mut self) -> Result<Option<Label>, PatternParseError> {
        self.skip_ws();
        if self.eat("*") {
            Ok(None)
        } else {
            Ok(Some(Label::intern(&self.parse_name()?)))
        }
    }

    fn parse_decorations(&mut self, p: &mut Pattern, n: PNodeId) -> Result<(), PatternParseError> {
        self.skip_ws();
        if self.eat("{") {
            let mut attrs = Attrs::NONE;
            let mut ret = false;
            loop {
                self.skip_ws();
                let name = self.parse_name()?;
                match name.as_str() {
                    "id" | "ID" => attrs.id = true,
                    "l" | "L" => attrs.label = true,
                    "v" | "V" => attrs.value = true,
                    "c" | "C" => attrs.content = true,
                    "ret" => ret = true,
                    other => return self.err(format!("unknown attribute `{other}`")),
                }
                self.skip_ws();
                if self.eat(",") {
                    continue;
                }
                self.expect("}")?;
                break;
            }
            p.node_mut(n).attrs = attrs;
            p.node_mut(n).ret = ret;
        }
        self.skip_ws();
        if self.eat("[") {
            let f = self.parse_or()?;
            self.skip_ws();
            self.expect("]")?;
            p.node_mut(n).predicate = f;
        }
        Ok(())
    }

    fn parse_or(&mut self) -> Result<Formula, PatternParseError> {
        let mut f = self.parse_and()?;
        loop {
            self.skip_ws();
            if self.eat("or") {
                let g = self.parse_and()?;
                f = f.or(&g);
            } else {
                return Ok(f);
            }
        }
    }

    fn parse_and(&mut self) -> Result<Formula, PatternParseError> {
        let mut f = self.parse_atom()?;
        loop {
            self.skip_ws();
            if self.eat("and") {
                let g = self.parse_atom()?;
                f = f.and(&g);
            } else {
                return Ok(f);
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Formula, PatternParseError> {
        self.skip_ws();
        if self.eat("(") {
            let f = self.parse_or()?;
            self.skip_ws();
            self.expect(")")?;
            return Ok(f);
        }
        self.expect("v")?;
        self.skip_ws();
        // order matters: multi-char operators first
        let op = if self.eat("!=") {
            "!="
        } else if self.eat("<=") {
            "<="
        } else if self.eat(">=") {
            ">="
        } else if self.eat("=") {
            "="
        } else if self.eat("<") {
            "<"
        } else if self.eat(">") {
            ">"
        } else {
            return self.err("expected a comparison operator");
        };
        self.skip_ws();
        let c = self.parse_const()?;
        Ok(match op {
            "=" => Formula::eq(c),
            "!=" => Formula::ne(c),
            "<" => Formula::lt(c),
            "<=" => Formula::le(c),
            ">" => Formula::gt(c),
            ">=" => Formula::ge(c),
            _ => unreachable!(),
        })
    }

    fn parse_const(&mut self) -> Result<Value, PatternParseError> {
        self.skip_ws();
        if self.eat("\"") {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"') | None) {
                self.pos += 1;
            }
            if self.peek().is_none() {
                return self.err("unterminated string constant");
            }
            let s = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
            self.pos += 1;
            return Ok(Value::Str(s.into()));
        }
        let start = self.pos;
        if matches!(self.peek(), Some(b'-')) {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected an integer or quoted string constant");
        }
        let txt = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        txt.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| PatternParseError {
                position: start,
                message: format!("invalid integer `{txt}`"),
            })
    }

    fn parse_children(
        &mut self,
        p: &mut Pattern,
        parent: PNodeId,
    ) -> Result<(), PatternParseError> {
        self.skip_ws();
        if !self.eat("(") {
            return Ok(());
        }
        loop {
            self.skip_ws();
            let mut optional = false;
            let mut nested = false;
            loop {
                if self.eat("?") {
                    optional = true;
                } else if self.eat("%") {
                    nested = true;
                } else {
                    break;
                }
                self.skip_ws();
            }
            let axis = if self.eat("//") {
                Axis::Descendant
            } else {
                self.eat("/");
                Axis::Child
            };
            let label = self.parse_label()?;
            let child = p.add_child(parent, axis, label);
            p.node_mut(child).optional = optional;
            p.node_mut(child).nested = nested;
            self.parse_decorations(p, child)?;
            self.parse_children(p, child)?;
            self.skip_ws();
            if self.eat(",") {
                continue;
            }
            self.expect(")")?;
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_view_v1() {
        let p =
            parse_pattern("regions(//*{id}(/description(/parlist(?%/listitem{c})), ?//bold{v}))")
                .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.arity(), 3);
        let li = p
            .iter()
            .find(|&n| p.node(n).label.map(|l| l.as_str()) == Some("listitem"))
            .unwrap();
        assert!(p.node(li).optional);
        assert!(p.node(li).nested);
        assert!(p.node(li).attrs.content);
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [
            "a",
            "a(/b, //c)",
            "a(//*{id,v}(?/b{ret}))",
            "item{id}(?%//listitem{c}, /name{v})",
            "a(/b[v=3], /c[v>2 and v<5])",
            "a(/b[v<1 or v>9])",
            r#"a(/b[v="pen"])"#,
        ] {
            let p = parse_pattern(src).unwrap();
            let rendered = p.to_string();
            let p2 = parse_pattern(&rendered).unwrap();
            assert_eq!(p2.to_string(), rendered, "round trip of `{src}`");
        }
    }

    #[test]
    fn leading_slash_and_whitespace() {
        let p = parse_pattern("/ a ( / b , // c { ret } )").unwrap();
        assert_eq!(p.to_string(), "a(/b, //c{ret})");
    }

    #[test]
    fn wildcard_nodes() {
        let p = parse_pattern("*(//*{ret})").unwrap();
        assert_eq!(p.node(p.root()).label, None);
        assert_eq!(p.arity(), 1);
    }

    #[test]
    fn predicate_precedence_and_parens() {
        let p = parse_pattern("a(/b[v=1 or v=2 and v<10])").unwrap();
        let b = PNodeId(1);
        // and binds tighter: v=1 ∨ (v=2 ∧ v<10) accepts 1 and 2
        assert!(p.node(b).predicate.accepts(&Value::int(1)));
        assert!(p.node(b).predicate.accepts(&Value::int(2)));
        assert!(!p.node(b).predicate.accepts(&Value::int(3)));
        let q = parse_pattern("a(/b[(v=1 or v=2) and v<2])").unwrap();
        assert!(q.node(b).predicate.accepts(&Value::int(1)));
        assert!(!q.node(b).predicate.accepts(&Value::int(2)));
    }

    #[test]
    fn error_positions_and_messages() {
        assert!(parse_pattern("a(/b").is_err());
        assert!(parse_pattern("a{zz}").is_err());
        assert!(parse_pattern("a[v ~ 3]").is_err());
        assert!(parse_pattern("a(/b) trailing").is_err());
        assert!(parse_pattern("").is_err());
    }

    #[test]
    fn negative_integer_constants() {
        let p = parse_pattern("a(/b[v>=-5])").unwrap();
        assert!(p.node(PNodeId(1)).predicate.accepts(&Value::int(-5)));
        assert!(!p.node(PNodeId(1)).predicate.accepts(&Value::int(-6)));
    }
}
