//! Associated paths (paper Definition 2.1).
//!
//! The set of summary paths associated to a pattern node `n` consists of
//! the `S` nodes `e(n)` over all embeddings `e : p → S`. The paper
//! computes these in `O(|p| × |S|)`; we do the same with a bottom-up
//! candidate pass (shared with [`crate::matching::Matcher`]) followed by a
//! top-down consistency pruning — for tree-shaped patterns the two passes
//! are exact, because sibling subtrees are independent once the parent's
//! image is fixed.
//!
//! Optional subtrees participate like ordinary ones: a path is associated
//! to an optional node if *some* embedding maps it there (Definition 2.1
//! quantifies over embeddings that do map the node).

use crate::ast::{Axis, Pattern};
use crate::matching::Matcher;
use smv_summary::Summary;
use smv_xml::NodeId;

/// Per pattern node (indexed by id), the sorted set of associated summary
/// paths.
pub fn associated_paths(p: &Pattern, s: &Summary) -> Vec<Vec<NodeId>> {
    let matcher = Matcher::new(p, s);
    let mut keep: Vec<Vec<NodeId>> = vec![Vec::new(); p.len()];
    keep[p.root().idx()] = matcher.candidates(p.root()).to_vec();
    for m in p.iter().skip(1) {
        let parent = p.parent(m).expect("non-root");
        let axis = p.node(m).axis;
        let parents = &keep[parent.idx()];
        let mut list: Vec<NodeId> = matcher
            .candidates(m)
            .iter()
            .copied()
            .filter(|&y| {
                parents.iter().any(|&x| match axis {
                    Axis::Child => s.is_parent(x, y),
                    Axis::Descendant => s.is_ancestor(x, y),
                })
            })
            .collect();
        list.sort();
        list.dedup();
        keep[m.idx()] = list;
    }
    keep
}

/// Associated paths restricted to the pattern's return nodes, in return
/// order — the sets compared by Proposition 3.7.
pub fn return_paths(p: &Pattern, s: &Summary) -> Vec<Vec<NodeId>> {
    let all = associated_paths(p, s);
    p.return_nodes()
        .into_iter()
        .map(|r| all[r.idx()].clone())
        .collect()
}

/// True when node `n` of `p` is *unrelated* to every path in `qpaths`:
/// no associated path of `n` equals, is an ancestor of, or is a descendant
/// of any path in `qpaths`. This is the per-node test of Proposition 3.4
/// (view pruning).
pub fn unrelated_to(s: &Summary, npaths: &[NodeId], qpaths: &[NodeId]) -> bool {
    for &x in npaths {
        for &y in qpaths {
            if x == y || s.is_ancestor(x, y) || s.is_ancestor(y, x) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use smv_xml::Document;

    #[test]
    fn paths_follow_embeddings() {
        // S: a(b c(b d(e)))
        let d = Document::from_parens("a(b c(b d(e)))");
        let s = Summary::of(&d);
        let p = parse_pattern("a(//b{ret})").unwrap();
        let paths = associated_paths(&p, &s);
        let b_paths: Vec<String> = paths[1].iter().map(|&n| s.path_string(n)).collect();
        assert_eq!(b_paths, vec!["/a/b", "/a/c/b"]);
        assert_eq!(paths[0], vec![s.root()]);
    }

    #[test]
    fn top_down_pruning_removes_inconsistent_candidates() {
        // S: a(b(c) d(c)); pattern a(/b(/c{ret})): c's candidates include
        // /a/d/c bottom-up, but no embedding maps b's child there.
        let d = Document::from_parens("a(b(c) d(c))");
        let s = Summary::of(&d);
        let p = parse_pattern("a(/b(/c{ret}))").unwrap();
        let paths = associated_paths(&p, &s);
        let c_paths: Vec<String> = paths[2].iter().map(|&n| s.path_string(n)).collect();
        assert_eq!(c_paths, vec!["/a/b/c"]);
    }

    #[test]
    fn unsatisfiable_pattern_has_empty_paths() {
        let s = Summary::of(&Document::from_parens("a(b)"));
        let p = parse_pattern("a(/z{ret})").unwrap();
        let paths = associated_paths(&p, &s);
        assert!(paths[1].is_empty());
        assert!(
            paths[0].is_empty(),
            "root keeps no candidates when a required child is unsatisfiable"
        );
    }

    #[test]
    fn wildcards_fan_out() {
        let d = Document::from_parens("a(b(x) c(x))");
        let s = Summary::of(&d);
        let p = parse_pattern("a(/*(/x{ret}))").unwrap();
        let paths = associated_paths(&p, &s);
        assert_eq!(paths[1].len(), 2);
        assert_eq!(paths[2].len(), 2);
    }

    #[test]
    fn unrelated_test_matches_prop_3_4() {
        let d = Document::from_parens("r(a(b) c(d))");
        let s = Summary::of(&d);
        let a = s.node_by_path("/r/a").unwrap();
        let b = s.node_by_path("/r/a/b").unwrap();
        let c = s.node_by_path("/r/c").unwrap();
        let d_ = s.node_by_path("/r/c/d").unwrap();
        assert!(unrelated_to(&s, &[a, b], &[c, d_]));
        assert!(!unrelated_to(&s, &[a], &[b]), "ancestor is related");
        assert!(!unrelated_to(&s, &[b], &[b]), "equal is related");
    }

    #[test]
    fn return_paths_in_return_order() {
        let d = Document::from_parens("a(b c)");
        let s = Summary::of(&d);
        let p = parse_pattern("a(/c{id}, /b{v})").unwrap();
        let rp = return_paths(&p, &s);
        assert_eq!(rp.len(), 2);
        assert_eq!(s.path_string(rp[0][0]), "/a/c");
        assert_eq!(s.path_string(rp[1][0]), "/a/b");
    }
}
