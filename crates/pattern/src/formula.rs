//! Value-predicate formulas (paper §4.2).
//!
//! A pattern node may be decorated with a formula `φ(v)` built from atoms
//! `v θ c` (`θ ∈ {=, ≠, <, ≤, >, ≥}`) with `∧`/`∨`. Over a totally ordered
//! domain every such formula is equivalent to a **finite union of disjoint
//! intervals** — the compact representation the paper suggests — which
//! makes conjunction, disjunction, negation, satisfiability and implication
//! all cheap and exact. `T` is the full interval, `F` the empty union.

use smv_xml::Value;
use std::cmp::Ordering;

/// An endpoint of an interval.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Bound {
    /// Unbounded below.
    NegInf,
    /// Inclusive endpoint.
    Incl(Value),
    /// Exclusive endpoint.
    Excl(Value),
    /// Unbounded above.
    PosInf,
}

/// A non-empty interval of atomic values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Interval {
    /// Lower endpoint (`NegInf`, `Incl`, or `Excl`).
    pub lo: Bound,
    /// Upper endpoint (`PosInf`, `Incl`, or `Excl`).
    pub hi: Bound,
}

/// Position of a *lower* bound on the number line (earlier = admits more).
fn lo_key(b: &Bound) -> (u8, Option<&Value>, u8) {
    match b {
        Bound::NegInf => (0, None, 0),
        Bound::Incl(v) => (1, Some(v), 0),
        Bound::Excl(v) => (1, Some(v), 1),
        Bound::PosInf => (2, None, 0),
    }
}

/// Position of an *upper* bound (later = admits more).
fn hi_key(b: &Bound) -> (u8, Option<&Value>, u8) {
    match b {
        Bound::NegInf => (0, None, 0),
        Bound::Excl(v) => (1, Some(v), 0),
        Bound::Incl(v) => (1, Some(v), 1),
        Bound::PosInf => (2, None, 0),
    }
}

fn cmp_keys(a: (u8, Option<&Value>, u8), b: (u8, Option<&Value>, u8)) -> Ordering {
    a.0.cmp(&b.0)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
}

fn lo_max(a: Bound, b: Bound) -> Bound {
    if cmp_keys(lo_key(&a), lo_key(&b)) == Ordering::Less {
        b
    } else {
        a
    }
}

fn hi_min(a: Bound, b: Bound) -> Bound {
    if cmp_keys(hi_key(&a), hi_key(&b)) == Ordering::Greater {
        b
    } else {
        a
    }
}

impl Interval {
    fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Bound::NegInf, _) | (_, Bound::PosInf) => false,
            (Bound::Incl(a), Bound::Incl(b)) => a > b,
            (Bound::Incl(a), Bound::Excl(b)) | (Bound::Excl(a), Bound::Incl(b)) => a >= b,
            (Bound::Excl(a), Bound::Excl(b)) => a >= b,
            _ => unreachable!("malformed interval bounds"),
        }
    }

    fn contains(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::NegInf => true,
            Bound::Incl(a) => v >= a,
            Bound::Excl(a) => v > a,
            Bound::PosInf => false,
        };
        let hi_ok = match &self.hi {
            Bound::PosInf => true,
            Bound::Incl(a) => v <= a,
            Bound::Excl(a) => v < a,
            Bound::NegInf => false,
        };
        lo_ok && hi_ok
    }

    /// Do `self` and `next` (with `next.lo` not before `self.lo`) overlap or
    /// touch so their union is one interval?
    fn merges_with(&self, next: &Interval) -> bool {
        match (&self.hi, &next.lo) {
            (Bound::PosInf, _) | (_, Bound::NegInf) => true,
            (Bound::Incl(a), Bound::Incl(b)) => b <= a,
            (Bound::Incl(a), Bound::Excl(b)) => b <= a,
            (Bound::Excl(a), Bound::Incl(b)) => b <= a,
            // both exclusive at the same point leave a hole
            (Bound::Excl(a), Bound::Excl(b)) => b < a,
            _ => unreachable!("malformed interval bounds"),
        }
    }
}

/// A formula in canonical form: a sorted union of disjoint, non-touching
/// intervals. `T` = one `(−∞, +∞)` interval; `F` = empty union.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Formula {
    intervals: Vec<Interval>,
}

impl Formula {
    /// `T` — satisfied by every value.
    pub fn top() -> Formula {
        Formula {
            intervals: vec![Interval {
                lo: Bound::NegInf,
                hi: Bound::PosInf,
            }],
        }
    }

    /// `F` — satisfied by no value.
    pub fn bottom() -> Formula {
        Formula { intervals: vec![] }
    }

    /// `v = c`.
    pub fn eq(c: Value) -> Formula {
        Formula {
            intervals: vec![Interval {
                lo: Bound::Incl(c.clone()),
                hi: Bound::Incl(c),
            }],
        }
    }

    /// `v ≠ c`.
    pub fn ne(c: Value) -> Formula {
        Formula::eq(c).not()
    }

    /// `v < c`.
    pub fn lt(c: Value) -> Formula {
        Formula {
            intervals: vec![Interval {
                lo: Bound::NegInf,
                hi: Bound::Excl(c),
            }],
        }
    }

    /// `v ≤ c`.
    pub fn le(c: Value) -> Formula {
        Formula {
            intervals: vec![Interval {
                lo: Bound::NegInf,
                hi: Bound::Incl(c),
            }],
        }
    }

    /// `v > c`.
    pub fn gt(c: Value) -> Formula {
        Formula {
            intervals: vec![Interval {
                lo: Bound::Excl(c),
                hi: Bound::PosInf,
            }],
        }
    }

    /// `v ≥ c`.
    pub fn ge(c: Value) -> Formula {
        Formula {
            intervals: vec![Interval {
                lo: Bound::Incl(c),
                hi: Bound::PosInf,
            }],
        }
    }

    fn normalize(mut intervals: Vec<Interval>) -> Formula {
        intervals.retain(|i| !i.is_empty());
        intervals.sort_by(|a, b| {
            cmp_keys(lo_key(&a.lo), lo_key(&b.lo))
                .then_with(|| cmp_keys(hi_key(&a.hi), hi_key(&b.hi)))
        });
        let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match out.last_mut() {
                Some(last) if last.merges_with(&iv) => {
                    if cmp_keys(hi_key(&iv.hi), hi_key(&last.hi)) == Ordering::Greater {
                        last.hi = iv.hi;
                    }
                }
                _ => out.push(iv),
            }
        }
        Formula { intervals: out }
    }

    /// `self ∨ other`.
    pub fn or(&self, other: &Formula) -> Formula {
        let mut ivs = self.intervals.clone();
        ivs.extend(other.intervals.iter().cloned());
        Formula::normalize(ivs)
    }

    /// `self ∧ other`.
    pub fn and(&self, other: &Formula) -> Formula {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                let iv = Interval {
                    lo: lo_max(a.lo.clone(), b.lo.clone()),
                    hi: hi_min(a.hi.clone(), b.hi.clone()),
                };
                if !iv.is_empty() {
                    out.push(iv);
                }
            }
        }
        Formula::normalize(out)
    }

    /// `¬self`.
    pub fn not(&self) -> Formula {
        // walk the gaps between intervals
        let mut out = Vec::new();
        let mut lo = Bound::NegInf;
        for iv in &self.intervals {
            let gap_hi = match &iv.lo {
                Bound::NegInf => None, // no gap before
                Bound::Incl(v) => Some(Bound::Excl(v.clone())),
                Bound::Excl(v) => Some(Bound::Incl(v.clone())),
                Bound::PosInf => unreachable!(),
            };
            if let Some(hi) = gap_hi {
                let g = Interval { lo, hi };
                if !g.is_empty() {
                    out.push(g);
                }
            }
            lo = match &iv.hi {
                Bound::PosInf => return Formula::normalize(out),
                Bound::Incl(v) => Bound::Excl(v.clone()),
                Bound::Excl(v) => Bound::Incl(v.clone()),
                Bound::NegInf => unreachable!(),
            };
        }
        out.push(Interval {
            lo,
            hi: Bound::PosInf,
        });
        Formula::normalize(out)
    }

    /// Is the formula satisfiable (≠ `F`)?
    pub fn is_sat(&self) -> bool {
        !self.intervals.is_empty()
    }

    /// Is the formula `T`?
    pub fn is_top(&self) -> bool {
        self.intervals.len() == 1
            && self.intervals[0].lo == Bound::NegInf
            && self.intervals[0].hi == Bound::PosInf
    }

    /// Does `v` satisfy the formula?
    pub fn accepts(&self, v: &Value) -> bool {
        self.intervals.iter().any(|i| i.contains(v))
    }

    /// `self ⇒ other` (validity of the implication).
    pub fn implies(&self, other: &Formula) -> bool {
        !self.and(&other.not()).is_sat()
    }

    /// The canonical intervals (read-only; mainly for display/tests).
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }
}

impl Default for Formula {
    fn default() -> Self {
        Formula::top()
    }
}

impl std::fmt::Display for Formula {
    /// Renders in the *pattern predicate grammar* (see `smv-pattern`'s
    /// parser), so that `Display` → parse round-trips: intervals become
    /// `and`-conjunctions of atoms joined by `or`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn fmt_const(v: &Value) -> String {
            match v {
                Value::Int(i) => i.to_string(),
                Value::Str(s) => format!("{s:?}"),
            }
        }
        if self.is_top() {
            return f.write_str("T");
        }
        if !self.is_sat() {
            // unsatisfiable but still parseable
            return f.write_str("v<0 and v>0");
        }
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                f.write_str(" or ")?;
            }
            match (&iv.lo, &iv.hi) {
                (Bound::Incl(a), Bound::Incl(b)) if a == b => write!(f, "v={}", fmt_const(a))?,
                (Bound::NegInf, Bound::Incl(b)) => write!(f, "v<={}", fmt_const(b))?,
                (Bound::NegInf, Bound::Excl(b)) => write!(f, "v<{}", fmt_const(b))?,
                (Bound::Incl(a), Bound::PosInf) => write!(f, "v>={}", fmt_const(a))?,
                (Bound::Excl(a), Bound::PosInf) => write!(f, "v>{}", fmt_const(a))?,
                (lo, hi) => {
                    match lo {
                        Bound::Incl(v) => write!(f, "v>={}", fmt_const(v))?,
                        Bound::Excl(v) => write!(f, "v>{}", fmt_const(v))?,
                        _ => unreachable!(),
                    }
                    f.write_str(" and ")?;
                    match hi {
                        Bound::Incl(v) => write!(f, "v<={}", fmt_const(v))?,
                        Bound::Excl(v) => write!(f, "v<{}", fmt_const(v))?,
                        _ => unreachable!(),
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    #[test]
    fn atoms_accept_correctly() {
        assert!(Formula::eq(v(3)).accepts(&v(3)));
        assert!(!Formula::eq(v(3)).accepts(&v(4)));
        assert!(Formula::lt(v(3)).accepts(&v(2)));
        assert!(!Formula::lt(v(3)).accepts(&v(3)));
        assert!(Formula::le(v(3)).accepts(&v(3)));
        assert!(Formula::gt(v(3)).accepts(&v(4)));
        assert!(Formula::ne(v(3)).accepts(&v(4)));
        assert!(!Formula::ne(v(3)).accepts(&v(3)));
    }

    #[test]
    fn and_or_not() {
        // (v > 2) ∧ (v < 5): accepts 3, 4, rejects 2, 5
        let f = Formula::gt(v(2)).and(&Formula::lt(v(5)));
        assert!(f.accepts(&v(3)) && f.accepts(&v(4)));
        assert!(!f.accepts(&v(2)) && !f.accepts(&v(5)));
        // negation
        let g = f.not();
        assert!(g.accepts(&v(2)) && g.accepts(&v(5)));
        assert!(!g.accepts(&v(3)));
        // double negation is identity (canonical form)
        assert_eq!(g.not(), f);
    }

    #[test]
    fn normalization_merges_touching() {
        // v<5 ∨ v>=5 == T
        let f = Formula::lt(v(5)).or(&Formula::ge(v(5)));
        assert!(f.is_top());
        // v<5 ∨ v>5 != T (hole at 5)
        let g = Formula::lt(v(5)).or(&Formula::gt(v(5)));
        assert!(!g.is_top());
        assert!(!g.accepts(&v(5)));
        assert_eq!(g, Formula::ne(v(5)));
    }

    #[test]
    fn implication() {
        // v=3 ⇒ v>1  (the paper's example pφ2 ⊆ pφ3 check)
        assert!(Formula::eq(v(3)).implies(&Formula::gt(v(1))));
        assert!(!Formula::gt(v(1)).implies(&Formula::eq(v(3))));
        // (v=3 ∧ v>0) ⇒ (v=3 ∧ v<5) ∨ (v<5 ∧ v>2)  — paper §4.2 example shape
        let lhs = Formula::eq(v(3)).and(&Formula::gt(v(0)));
        let rhs = Formula::eq(v(3))
            .and(&Formula::lt(v(5)))
            .or(&Formula::lt(v(5)).and(&Formula::gt(v(2))));
        assert!(lhs.implies(&rhs));
        // everything implies T, F implies everything
        assert!(lhs.implies(&Formula::top()));
        assert!(Formula::bottom().implies(&lhs));
        assert!(!Formula::top().implies(&lhs));
    }

    #[test]
    fn sat_and_contradiction() {
        let c = Formula::lt(v(1)).and(&Formula::gt(v(2)));
        assert!(!c.is_sat());
        assert!(Formula::eq(v(1)).is_sat());
        assert_eq!(c, Formula::bottom());
    }

    #[test]
    fn string_values_order_after_ints() {
        let f = Formula::gt(Value::str("m"));
        assert!(f.accepts(&Value::str("z")));
        assert!(!f.accepts(&Value::str("a")));
        assert!(!f.accepts(&v(999)), "ints sort before strings");
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Formula::top().to_string(), "T");
        assert_eq!(Formula::bottom().to_string(), "v<0 and v>0");
        assert_eq!(Formula::eq(v(3)).to_string(), "v=3");
        assert_eq!(
            Formula::gt(v(2)).and(&Formula::lt(v(5))).to_string(),
            "v>2 and v<5"
        );
        assert_eq!(Formula::ne(v(5)).to_string(), "v<5 or v>5");
        assert_eq!(Formula::eq(Value::str("pen")).to_string(), "v=\"pen\"");
    }

    #[test]
    fn de_morgan() {
        let a = Formula::lt(v(10)).and(&Formula::gt(v(0)));
        let b = Formula::eq(v(20));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
    }
}
