//! # smv-pattern — extended tree patterns
//!
//! The pattern formalism at the center of the paper: conjunctive tree
//! patterns (§2.2) extended with value predicates (§4.2), optional edges
//! (§4.3), stored attributes `ID`/`L`/`V`/`C` (§4.4) and nested edges
//! (§4.5); embeddings into documents, summaries and canonical trees; the
//! summary-based canonical model `mod_S(p)` (§2.4, extended per §4); and
//! associated-path annotation (Definition 2.1).
//!
//! Containment and rewriting build on these primitives in `smv-core`.

#![deny(clippy::print_stdout, clippy::print_stderr)]
pub mod annotate;
pub mod ast;
pub mod canonical;
pub mod formula;
pub mod matching;
pub mod parser;

pub use annotate::{associated_paths, return_paths};
pub use ast::{canonical_form, Attrs, Axis, PNode, PNodeId, Pattern};
pub use canonical::{canonical_model, CTree, CanonOpts, CanonicalModel};
pub use formula::{Bound, Formula, Interval};
pub use matching::{evaluate, Assignment, MatchTarget, Matcher};
pub use parser::{parse_pattern, PatternParseError};
