//! # smv-xquery — an XQuery FLWR subset and its pattern translation
//!
//! The paper's tree patterns are designed so that *nested FLWR XQuery
//! blocks translate into single patterns* (§1): for-bindings become
//! pattern nodes storing `ID`, `[...]` existence/value predicates become
//! required branches, returned expressions become **optional** branches
//! (the query outputs a row even when they are missing), `.../text()`
//! projections store `V` while element-valued returns store `C`, and a
//! nested `for` inside a `return` becomes a **nested, optional** edge —
//! the `n`-edge of Figure 1's view `V1`.

#![deny(clippy::print_stdout, clippy::print_stderr)]
pub mod parser;
pub mod translate;

pub use parser::{parse_xquery, Flwr, PathExpr, RetExpr, Step, XqError};
pub use translate::translate;
