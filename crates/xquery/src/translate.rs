//! FLWR → extended tree pattern translation (the paper's §1 motivation).
//!
//! Rules:
//! * the outer `doc(...)` binding anchors the pattern at a `*` root
//!   (the document root's label is unknown until a summary is available);
//! * each for-binding's final step becomes a node storing `ID` (the
//!   binding's identity) — required for the binding to produce rows;
//! * `[...]` and `where` predicates become required branches, with value
//!   formulas on their final nodes;
//! * returned path expressions become **optional** branches (`⊥` when
//!   missing, like the paper's `V1`): `.../text()` stores `V`, an
//!   element-valued return stores `C`;
//! * a nested FLWR becomes a **nested + optional** edge on its binding
//!   node, with its own returns below (the `n`-edge of Fig. 1).

use crate::parser::{Flwr, Predicate, RetExpr, Step};
use smv_pattern::{PNodeId, Pattern};
use smv_xml::Label;
use std::collections::HashMap;

/// Translates a parsed FLWR into a single extended tree pattern.
///
/// Returns an error message for queries outside the supported subset
/// (e.g. a nested `for` over `doc(...)` or an unknown variable).
pub fn translate(q: &Flwr) -> Result<Pattern, String> {
    let mut p = Pattern::new(None); // `*` root for the document root
    let mut scope: HashMap<String, PNodeId> = HashMap::new();
    add_flwr(&mut p, q, PNodeId::ROOT, &mut scope, false)?;
    Ok(p)
}

fn add_flwr(
    p: &mut Pattern,
    q: &Flwr,
    doc_root: PNodeId,
    scope: &mut HashMap<String, PNodeId>,
    nested: bool,
) -> Result<(), String> {
    let anchor = match &q.source_var {
        None => doc_root,
        Some(v) => *scope
            .get(v)
            .ok_or_else(|| format!("unbound variable ${v}"))?,
    };
    // binding chain
    let mut cur = anchor;
    for (i, step) in q.path.iter().enumerate() {
        let first = i == 0;
        cur = add_step(p, cur, step)?;
        if first && nested {
            let nd = p.node_mut(cur);
            nd.nested = true;
            nd.optional = true;
        }
    }
    p.node_mut(cur).attrs.id = true;
    scope.insert(q.var.clone(), cur);
    if let Some(w) = &q.where_pred {
        add_predicate(p, cur, w)?;
    }
    for r in &q.returns {
        match r {
            RetExpr::Path { var, path } => {
                let base = *scope
                    .get(var)
                    .ok_or_else(|| format!("unbound variable ${var}"))?;
                let mut node = base;
                for (i, step) in path.steps.iter().enumerate() {
                    node = add_step(p, node, step)?;
                    if i == 0 {
                        p.node_mut(node).optional = true;
                    }
                }
                let nd = p.node_mut(node);
                if path.text {
                    nd.attrs.value = true;
                } else {
                    nd.attrs.content = true;
                }
            }
            RetExpr::Nested(inner) => {
                if inner.source_var.is_none() {
                    return Err("nested for over doc(...) is outside the subset".into());
                }
                add_flwr(p, inner, doc_root, scope, true)?;
            }
        }
    }
    Ok(())
}

fn add_step(p: &mut Pattern, under: PNodeId, step: &Step) -> Result<PNodeId, String> {
    let label = step.label.as_deref().map(Label::intern);
    let n = p.add_child(under, step.axis, label);
    for pred in &step.predicates {
        add_predicate(p, n, pred)?;
    }
    Ok(n)
}

fn add_predicate(p: &mut Pattern, under: PNodeId, pred: &Predicate) -> Result<(), String> {
    let mut cur = under;
    for step in &pred.path {
        cur = add_step(p, cur, step)?;
    }
    if let Some(f) = &pred.formula {
        if cur == under {
            return Err("a value comparison needs a path".into());
        }
        let nd = p.node_mut(cur);
        nd.predicate = nd.predicate.and(f);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xquery;
    use smv_pattern::evaluate;
    use smv_xml::Document;

    #[test]
    fn translates_the_papers_example() {
        let q = parse_xquery(
            r#"for $x in doc("XMark.xml")//item[//mail] return
               <res>{ $x/name/text(),
                      for $y in $x//listitem return <key>{ $y//keyword }</key> }</res>"#,
        )
        .unwrap();
        let p = translate(&q).unwrap();
        // shape: *(//item{id}(//mail, ?/name{v}, ?%//listitem{id}(?//keyword{c})))
        assert_eq!(
            p.to_string(),
            "*(//item{id}(//mail, ?/name{v}, ?%//listitem{id}(?//keyword{c})))"
        );
    }

    #[test]
    fn translated_pattern_evaluates_like_the_query_means() {
        // item with mail and a listitem-with-keyword; item with mail but
        // no listitem (still output, per the query's semantics); item
        // without mail (not output).
        let doc = Document::from_parens(
            r#"site(item(mail name="p1" listitem(keyword="k")) item(mail name="p2") item(name="p3"))"#,
        );
        let q = parse_xquery(
            r#"for $x in doc("d")//item[/mail] return
               <res>{ $x/name/text(),
                      for $y in $x/listitem return <key>{ $y/keyword }</key> }</res>"#,
        )
        .unwrap();
        let p = translate(&q).unwrap();
        let tuples = evaluate(&p, &doc);
        // returns: item.id, name.v, listitem.id, keyword.c → arity 4
        assert_eq!(p.arity(), 4);
        // two items qualify (those with mail)
        let items: std::collections::HashSet<_> = tuples.iter().map(|t| t[0]).collect();
        assert_eq!(items.len(), 2);
        // the mail-less item is absent
        assert!(tuples.iter().all(|t| t[0].is_some()));
        // p2 has no listitem: ⊥ there
        assert!(tuples.iter().any(|t| t[2].is_none()));
    }

    #[test]
    fn where_clause_becomes_required_decorated_branch() {
        let q = parse_xquery(
            r#"for $a in doc("d")//open_auction where $a/initial > 100 return $a/reserve/text()"#,
        )
        .unwrap();
        let p = translate(&q).unwrap();
        assert_eq!(
            p.to_string(),
            "*(//open_auction{id}(/initial[v>100], ?/reserve{v}))"
        );
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let q = parse_xquery(r#"for $x in doc("d")//a return $zz/b/text()"#).unwrap();
        assert!(translate(&q).is_err());
    }

    #[test]
    fn element_return_stores_content() {
        let q = parse_xquery(r#"for $x in doc("d")//item return $x/description"#).unwrap();
        let p = translate(&q).unwrap();
        assert_eq!(p.to_string(), "*(//item{id}(?/description{c}))");
    }
}
