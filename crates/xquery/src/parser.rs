//! Recursive-descent parser for the FLWR subset.

use smv_pattern::{Axis, Formula};
use smv_xml::Value;

/// A parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XqError {
    /// Byte offset.
    pub position: usize,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for XqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XQuery syntax error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for XqError {}

/// One path step with its predicates.
#[derive(Debug, Clone)]
pub struct Step {
    /// `/` or `//`.
    pub axis: Axis,
    /// `None` = `*`.
    pub label: Option<String>,
    /// `[path]` / `[path cmp c]` predicates.
    pub predicates: Vec<Predicate>,
}

/// A step predicate.
#[derive(Debug, Clone)]
pub struct Predicate {
    /// The tested path (relative).
    pub path: Vec<Step>,
    /// Optional value comparison on the final node.
    pub formula: Option<Formula>,
}

/// A relative path expression.
#[derive(Debug, Clone, Default)]
pub struct PathExpr {
    /// The steps.
    pub steps: Vec<Step>,
    /// Trailing `/text()`.
    pub text: bool,
}

/// A returned expression.
#[derive(Debug, Clone)]
pub enum RetExpr {
    /// `$var path (/text())?`
    Path {
        /// The variable.
        var: String,
        /// Relative path from it.
        path: PathExpr,
    },
    /// A nested FLWR.
    Nested(Box<Flwr>),
}

/// A FLWR block.
#[derive(Debug, Clone)]
pub struct Flwr {
    /// Bound variable name.
    pub var: String,
    /// `None` when bound from `doc(...)`, `Some(v)` when bound from `$v`.
    pub source_var: Option<String>,
    /// Binding path.
    pub path: Vec<Step>,
    /// `where` clause as a predicate on the bound variable.
    pub where_pred: Option<Predicate>,
    /// Name of the constructed element (`None` = bare sequence).
    pub element: Option<String>,
    /// Returned expressions.
    pub returns: Vec<RetExpr>,
}

/// Parses a FLWR query.
pub fn parse_xquery(input: &str) -> Result<Flwr, XqError> {
    let mut p = P {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let f = p.parse_flwr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.err("trailing input");
    }
    Ok(f)
}

struct P<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, XqError> {
        Err(XqError {
            position: self.pos,
            message: m.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.input.get(self.pos), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, s: &str) -> bool {
        self.skip_ws();
        self.eat(s)
    }

    fn expect(&mut self, s: &str) -> Result<(), XqError> {
        self.skip_ws();
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn name(&mut self) -> Result<String, XqError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.input.get(self.pos), Some(b) if b.is_ascii_alphanumeric() || *b == b'_' || *b == b'-' || *b == b'@')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .unwrap()
            .to_owned())
    }

    fn var(&mut self) -> Result<String, XqError> {
        self.expect("$")?;
        self.name()
    }

    fn parse_flwr(&mut self) -> Result<Flwr, XqError> {
        self.expect("for")?;
        let var = self.var()?;
        self.expect("in")?;
        self.skip_ws();
        let source_var = if self.eat("doc(") {
            self.skip_ws();
            self.expect("\"")?;
            while !matches!(self.input.get(self.pos), Some(b'"') | None) {
                self.pos += 1;
            }
            self.expect("\"")?;
            self.expect(")")?;
            None
        } else {
            Some(self.var()?)
        };
        let path = self.parse_steps()?;
        if path.is_empty() {
            return self.err("a for-binding needs at least one path step");
        }
        let where_pred = if self.eat_kw("where") {
            self.skip_ws();
            if self.eat("$") {
                let v = self.name()?;
                if v != var {
                    return self.err(format!(
                        "where clause must test the bound variable ${var}, got ${v}"
                    ));
                }
            }
            let wp = self.parse_steps()?;
            let formula = self.maybe_cmp()?;
            Some(Predicate { path: wp, formula })
        } else {
            None
        };
        self.expect("return")?;
        self.skip_ws();
        let (element, returns) = if self.eat("<") {
            let tag = self.name()?;
            self.expect(">")?;
            self.expect("{")?;
            let exprs = self.parse_exprs()?;
            self.expect("}")?;
            self.expect("</")?;
            let close = self.name()?;
            if close != tag {
                return self.err(format!("mismatched constructor `{close}`"));
            }
            self.expect(">")?;
            (Some(tag), exprs)
        } else {
            (None, self.parse_exprs()?)
        };
        Ok(Flwr {
            var,
            source_var,
            path,
            where_pred,
            element,
            returns,
        })
    }

    fn parse_exprs(&mut self) -> Result<Vec<RetExpr>, XqError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"for") {
                out.push(RetExpr::Nested(Box::new(self.parse_flwr()?)));
            } else {
                let var = self.var()?;
                let steps = self.parse_steps()?;
                let mut text = false;
                if self.eat_kw("/text()") {
                    text = true;
                }
                out.push(RetExpr::Path {
                    var,
                    path: PathExpr { steps, text },
                });
            }
            self.skip_ws();
            if !self.eat(",") {
                return Ok(out);
            }
        }
    }

    fn parse_steps(&mut self) -> Result<Vec<Step>, XqError> {
        let mut steps = Vec::new();
        loop {
            self.skip_ws();
            // stop before `/text()`
            if self.input[self.pos..].starts_with(b"/text()") {
                return Ok(steps);
            }
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else {
                return Ok(steps);
            };
            self.skip_ws();
            let label = if self.eat("*") {
                None
            } else {
                Some(self.name()?)
            };
            let mut predicates = Vec::new();
            loop {
                self.skip_ws();
                if !self.eat("[") {
                    break;
                }
                let path = self.parse_steps()?;
                let formula = self.maybe_cmp()?;
                self.expect("]")?;
                predicates.push(Predicate { path, formula });
            }
            steps.push(Step {
                axis,
                label,
                predicates,
            });
        }
    }

    fn maybe_cmp(&mut self) -> Result<Option<Formula>, XqError> {
        self.skip_ws();
        let op = if self.eat("!=") {
            "!="
        } else if self.eat("<=") {
            "<="
        } else if self.eat(">=") {
            ">="
        } else if self.eat("=") {
            "="
        } else if self.eat("<") {
            "<"
        } else if self.eat(">") {
            ">"
        } else {
            return Ok(None);
        };
        self.skip_ws();
        let v = if self.eat("\"") {
            let start = self.pos;
            while !matches!(self.input.get(self.pos), Some(b'"') | None) {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.input[start..self.pos])
                .unwrap()
                .to_owned();
            self.expect("\"")?;
            Value::Str(s.into())
        } else {
            let start = self.pos;
            if matches!(self.input.get(self.pos), Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.input.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == start {
                return self.err("expected a comparison constant");
            }
            Value::Int(
                std::str::from_utf8(&self.input[start..self.pos])
                    .unwrap()
                    .parse()
                    .map_err(|_| XqError {
                        position: start,
                        message: "invalid integer".into(),
                    })?,
            )
        };
        Ok(Some(match op {
            "=" => Formula::eq(v),
            "!=" => Formula::ne(v),
            "<" => Formula::lt(v),
            "<=" => Formula::le(v),
            ">" => Formula::gt(v),
            ">=" => Formula::ge(v),
            _ => unreachable!(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let q = parse_xquery(
            r#"for $x in doc("XMark.xml")//item[//mail] return
               <res>{ $x/name/text(),
                      for $y in $x//listitem return <key>{ $y//keyword }</key> }</res>"#,
        )
        .unwrap();
        assert_eq!(q.var, "x");
        assert!(q.source_var.is_none());
        assert_eq!(q.path.len(), 1);
        assert_eq!(q.path[0].label.as_deref(), Some("item"));
        assert_eq!(q.path[0].predicates.len(), 1);
        assert_eq!(q.element.as_deref(), Some("res"));
        assert_eq!(q.returns.len(), 2);
        match &q.returns[0] {
            RetExpr::Path { var, path } => {
                assert_eq!(var, "x");
                assert!(path.text);
                assert_eq!(path.steps[0].label.as_deref(), Some("name"));
            }
            other => panic!("expected path return, got {other:?}"),
        }
        match &q.returns[1] {
            RetExpr::Nested(inner) => {
                assert_eq!(inner.var, "y");
                assert_eq!(inner.source_var.as_deref(), Some("x"));
                assert_eq!(inner.element.as_deref(), Some("key"));
            }
            other => panic!("expected nested flwr, got {other:?}"),
        }
    }

    #[test]
    fn where_clause_with_comparison() {
        let q = parse_xquery(
            r#"for $a in doc("d")//open_auction where $a/initial > 100 return $a/reserve/text()"#,
        )
        .unwrap();
        let wp = q.where_pred.unwrap();
        assert_eq!(wp.path[0].label.as_deref(), Some("initial"));
        assert!(wp.formula.unwrap().accepts(&Value::int(200)));
    }

    #[test]
    fn value_predicates_in_brackets() {
        let q = parse_xquery(
            r#"for $p in doc("d")/site/people/person[/profile/@income > 50000] return $p/name/text()"#,
        )
        .unwrap();
        let pred = &q.path.last().unwrap().predicates[0];
        assert_eq!(pred.path.len(), 2);
        assert!(pred.formula.is_some());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_xquery("for x in doc()").is_err());
        assert!(parse_xquery(r#"for $x in doc("d")//a return <r>{$x}</s>"#).is_err());
        assert!(parse_xquery(r#"for $x in doc("d") return $x"#).is_err());
    }
}
