//! Figure 15: rewriting the XMark query patterns against the §5 view set
//! (seed 2-node views + 100 random 3-node views), measuring total time
//! and the stop-at-first-rewriting mode the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smv_bench::{fig15_opts, fig15_views, xmark_summary};
use smv_core::rewrite;
use smv_datagen::xmark_query_patterns;

fn bench_rewriting(c: &mut Criterion) {
    let s = xmark_summary();
    let views = fig15_views(&s, 30);
    let qs = xmark_query_patterns();
    let mut g = c.benchmark_group("fig15_rewriting");
    g.sample_size(10);
    // representative queries: cheap (Q1), join-heavy (Q8), optional (Q17)
    for &i in &[0usize, 7, 16] {
        g.bench_with_input(BenchmarkId::new("total", i + 1), &i, |b, &i| {
            b.iter(|| rewrite(&qs[i], &views, &s, &fig15_opts()).rewritings.len())
        });
        g.bench_with_input(BenchmarkId::new("first_only", i + 1), &i, |b, &i| {
            let mut o = fig15_opts();
            o.first_only = true;
            b.iter(|| rewrite(&qs[i], &views, &s, &o).rewritings.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rewriting);
criterion_main!(benches);
