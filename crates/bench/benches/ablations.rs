//! Ablation benches for design choices DESIGN.md calls out:
//!
//! * **A** — stack-tree structural join vs the naive nested loop;
//! * **B** — enhanced (strong-edge) vs plain canonical models;
//! * **C** — ORDPATH vs Dewey ID assignment cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smv_algebra::{nested_loop_join, stack_tree_join, StructRel};
use smv_bench::xmark_summary;
use smv_datagen::{xmark, XmarkConfig};
use smv_pattern::{canonical_model, parse_pattern, CanonOpts};
use smv_xml::{IdAssignment, IdScheme, StructId};
use std::hint::black_box;

fn bench_struct_join(c: &mut Criterion) {
    let doc = xmark(&XmarkConfig {
        scale: 0.3,
        ..Default::default()
    });
    let ids = IdAssignment::assign(&doc, IdScheme::OrdPath);
    let items: Vec<StructId> = doc
        .iter()
        .filter(|&n| doc.label(n).as_str() == "item")
        .map(|n| ids.id(n).clone())
        .collect();
    let keywords: Vec<StructId> = doc
        .iter()
        .filter(|&n| doc.label(n).as_str() == "keyword")
        .map(|n| ids.id(n).clone())
        .collect();
    let mut g = c.benchmark_group("ablation_structjoin");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("stack_tree", items.len()), |b| {
        b.iter(|| {
            stack_tree_join(black_box(&items), black_box(&keywords), StructRel::Ancestor).len()
        })
    });
    g.bench_function(BenchmarkId::new("nested_loop", items.len()), |b| {
        b.iter(|| {
            nested_loop_join(black_box(&items), black_box(&keywords), StructRel::Ancestor).len()
        })
    });
    g.finish();
}

fn bench_canonical(c: &mut Criterion) {
    let s = xmark_summary();
    let p = parse_pattern("site(//item{id}(/description(//keyword{v}), ?//mail))").unwrap();
    let mut g = c.benchmark_group("ablation_canonical");
    g.sample_size(10);
    g.bench_function("plain", |b| {
        b.iter(|| {
            canonical_model(
                &p,
                &s,
                &CanonOpts {
                    use_strong: false,
                    max_trees: 500_000,
                },
            )
            .size()
        })
    });
    g.bench_function("enhanced", |b| {
        b.iter(|| {
            canonical_model(
                &p,
                &s,
                &CanonOpts {
                    use_strong: true,
                    max_trees: 500_000,
                },
            )
            .size()
        })
    });
    g.finish();
}

fn bench_id_assignment(c: &mut Criterion) {
    let doc = xmark(&XmarkConfig {
        scale: 0.3,
        ..Default::default()
    });
    let mut g = c.benchmark_group("ablation_id_assignment");
    g.sample_size(10);
    for scheme in [IdScheme::OrdPath, IdScheme::Dewey, IdScheme::Sequential] {
        g.bench_function(format!("{scheme:?}"), |b| {
            b.iter(|| IdAssignment::assign(black_box(&doc), scheme))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_struct_join,
    bench_canonical,
    bench_id_assignment
);
criterion_main!(benches);
