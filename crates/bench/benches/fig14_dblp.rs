//! Figure 14: containment on the DBLP summary (≈4× faster than XMark in
//! the paper) and the optional-edge ablation (0% vs 50% optional).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smv_bench::{contain_opts, dblp_summary};
use smv_core::contained;
use smv_datagen::{random_patterns, SynthConfig};

fn bench_dblp(c: &mut Criterion) {
    let s = dblp_summary();
    let opts = contain_opts();
    let mut g = c.benchmark_group("fig14_dblp");
    g.sample_size(10);
    for n in [5usize, 9] {
        for p_opt in [0.0f64, 0.5] {
            let cfg = SynthConfig {
                nodes: n,
                returns: 1,
                p_opt,
                return_labels: vec!["author".into(), "title".into(), "year".into()],
                seed: n as u64,
                ..Default::default()
            };
            let pats = random_patterns(&s, &cfg, 8);
            let id = format!("n{n}_opt{}", (p_opt * 100.0) as u32);
            g.bench_with_input(BenchmarkId::new("pairwise", id), &n, |b, _| {
                b.iter(|| {
                    let mut count = 0;
                    for i in 0..pats.len() {
                        for j in i..pats.len() {
                            if contained(&pats[i], &pats[j], &s, &opts).is_contained() {
                                count += 1;
                            }
                        }
                    }
                    count
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_dblp);
criterion_main!(benches);
