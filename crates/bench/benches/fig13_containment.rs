//! Figure 13: containment on the XMark summary — the 20 query patterns
//! (self-containment + canonical model) and the synthetic n-sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smv_bench::{contain_opts, xmark_summary};
use smv_core::contained;
use smv_datagen::{random_patterns, xmark_query_patterns, SynthConfig};
use smv_pattern::canonical_model;
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let s = xmark_summary();
    let opts = contain_opts();
    let qs = xmark_query_patterns();
    let mut g = c.benchmark_group("fig13_xmark_queries");
    g.sample_size(10);
    // the paper highlights Q6, Q7 (the outlier), Q10 and Q19
    for &i in &[0usize, 5, 6, 9, 18] {
        g.bench_with_input(BenchmarkId::new("self_containment", i + 1), &i, |b, &i| {
            b.iter(|| contained(black_box(&qs[i]), black_box(&qs[i]), &s, &opts))
        });
        g.bench_with_input(BenchmarkId::new("canonical_model", i + 1), &i, |b, &i| {
            b.iter(|| canonical_model(black_box(&qs[i]), &s, &opts.canon).size())
        });
    }
    g.finish();
}

fn bench_synthetic(c: &mut Criterion) {
    let s = xmark_summary();
    let opts = contain_opts();
    let mut g = c.benchmark_group("fig13_synthetic");
    g.sample_size(10);
    for n in [3usize, 7, 11] {
        let cfg = SynthConfig {
            nodes: n,
            returns: 1,
            seed: n as u64,
            ..Default::default()
        };
        let pats = random_patterns(&s, &cfg, 8);
        g.bench_with_input(BenchmarkId::new("pairwise", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0usize;
                for i in 0..pats.len() {
                    for j in i..pats.len() {
                        if contained(&pats[i], &pats[j], &s, &opts).is_contained() {
                            count += 1;
                        }
                    }
                }
                count
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries, bench_synthetic);
criterion_main!(benches);
