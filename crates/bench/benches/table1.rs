//! Table 1 regeneration: summary construction cost per dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use smv_datagen::{dblp, xmark, DblpSnapshot, XmarkConfig};
use smv_summary::Summary;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_summary_build");
    g.sample_size(10);
    let xm = xmark(&XmarkConfig::default());
    g.bench_function("xmark", |b| b.iter(|| Summary::of(black_box(&xm)).len()));
    let db = dblp(DblpSnapshot::Y2005, 3000, 7);
    g.bench_function("dblp05", |b| b.iter(|| Summary::of(black_box(&db)).len()));
    let sh = smv_datagen::corpora::shakespeare(10, 1);
    g.bench_function("shakespeare", |b| {
        b.iter(|| Summary::of(black_box(&sh)).len())
    });
    let sp = smv_datagen::corpora::swissprot(500, 3);
    g.bench_function("swissprot", |b| {
        b.iter(|| Summary::of(black_box(&sp)).len())
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
