//! # smv-bench — experiment harness
//!
//! Shared fixtures for the Criterion benches and the `experiments` binary
//! that regenerates every table and figure of the paper's §5:
//!
//! * **Table 1** — dataset / summary statistics;
//! * **Figure 13** — XMark query-pattern canonical-model sizes and
//!   containment times, plus synthetic containment scaling (n = 3..13,
//!   r = 1..3, positive vs negative);
//! * **Figure 14** — the same on the DBLP summary, plus the
//!   optional-edge ablation (0% vs 50%);
//! * **Figure 15** — rewriting the 20 XMark queries against the §5 view
//!   set (setup/prune time, time to first rewriting, total time).

#![deny(clippy::print_stdout, clippy::print_stderr)]
use smv_core::{contained, ContainOpts, Decision};
use smv_datagen::{
    random_patterns, random_views, seed_views, xmark, xmark_query_patterns, SynthConfig,
    ViewGenConfig, XmarkConfig,
};
use smv_pattern::{canonical_model, CanonOpts, Pattern};
use smv_summary::Summary;
use smv_views::View;
use smv_xml::IdScheme;
use std::time::{Duration, Instant};

/// The default XMark summary fixture (hundreds of paths).
pub fn xmark_summary() -> Summary {
    Summary::of(&xmark(&XmarkConfig::default()))
}

/// The seed executor's per-row string encoding (the removed
/// `Row::encode_key`), kept in one place as the *baseline* for both the
/// dedup microbench and the property test that checks the hashed/ordered
/// path agrees with it. Not used by the executor.
pub fn reference_string_key(row: &smv_algebra::Row) -> String {
    use smv_algebra::Cell;
    let mut s = String::new();
    for c in &row.cells {
        match c {
            Cell::Null => s.push('N'),
            Cell::Id(id) => {
                s.push('I');
                s.push_str(&id.to_string());
            }
            Cell::Label(l) => {
                s.push('L');
                s.push_str(l.as_str());
            }
            Cell::Atom(smv_xml::Value::Int(i)) => {
                s.push('a');
                s.push_str(&format!("{:+021}", i));
            }
            Cell::Atom(smv_xml::Value::Str(t)) => {
                s.push('s');
                s.push_str(t);
            }
            Cell::Content(c) => {
                s.push('C');
                s.push_str(c);
            }
            Cell::Table(t) => {
                s.push('T');
                s.push('[');
                let mut keys: Vec<String> = t.rows.iter().map(reference_string_key).collect();
                keys.sort();
                for k in keys {
                    s.push_str(&k);
                    s.push(';');
                }
                s.push(']');
            }
        }
        s.push('|');
    }
    s
}

/// The default DBLP'05 summary fixture.
pub fn dblp_summary() -> Summary {
    Summary::of(&smv_datagen::dblp(
        smv_datagen::DblpSnapshot::Y2005,
        2000,
        7,
    ))
}

/// Containment options used across experiments (plain summaries, like the
/// paper's base configuration).
pub fn contain_opts() -> ContainOpts {
    ContainOpts {
        canon: CanonOpts {
            use_strong: false,
            max_trees: 500_000,
        },
    }
}

/// Figure 13 (top): per-XMark-query canonical model size and
/// self-containment time.
pub fn fig13_xmark_queries(s: &Summary) -> Vec<(usize, usize, Duration)> {
    let opts = contain_opts();
    xmark_query_patterns()
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let model = canonical_model(q, s, &opts.canon);
            let t = Instant::now();
            let d = contained(q, q, s, &opts);
            assert_eq!(d, Decision::Contained, "Q{} must contain itself", i + 1);
            (i + 1, model.size(), t.elapsed())
        })
        .collect()
}

/// One synthetic containment measurement point.
pub struct ContainmentPoint {
    /// Pattern size n.
    pub nodes: usize,
    /// Return arity r.
    pub returns: usize,
    /// Mean time of positive (contained) tests.
    pub positive: Duration,
    /// Mean time of negative tests.
    pub negative: Duration,
    /// Number of positive outcomes.
    pub n_positive: usize,
    /// Number of negative outcomes.
    pub n_negative: usize,
}

/// Figure 13 (bottom) / Figure 14: pairwise synthetic containment, `p_i ⊆
/// p_j` for `j = i..count`, averaged separately over positive and
/// negative outcomes (the paper's protocol).
pub fn synthetic_containment(
    s: &Summary,
    nodes: usize,
    returns: usize,
    count: usize,
    p_opt: f64,
    return_labels: &[&str],
    seed: u64,
) -> ContainmentPoint {
    let cfg = SynthConfig {
        nodes,
        returns,
        p_opt,
        return_labels: return_labels.iter().map(|s| s.to_string()).collect(),
        seed,
        ..Default::default()
    };
    let pats: Vec<Pattern> = random_patterns(s, &cfg, count);
    let opts = contain_opts();
    let (mut tp, mut tn) = (Duration::ZERO, Duration::ZERO);
    let (mut np, mut nn) = (0usize, 0usize);
    for i in 0..pats.len() {
        for j in i..pats.len() {
            let t = Instant::now();
            let d = contained(&pats[i], &pats[j], s, &opts);
            let dt = t.elapsed();
            match d {
                Decision::Contained => {
                    tp += dt;
                    np += 1;
                }
                _ => {
                    tn += dt;
                    nn += 1;
                }
            }
        }
    }
    ContainmentPoint {
        nodes,
        returns,
        positive: tp.checked_div(np.max(1) as u32).unwrap_or_default(),
        negative: tn.checked_div(nn.max(1) as u32).unwrap_or_default(),
        n_positive: np,
        n_negative: nn,
    }
}

/// The §5 view set for Figure 15: seed views + `extra` random 3-node
/// views.
pub fn fig15_views(s: &Summary, extra: usize) -> Vec<View> {
    let mut vs = seed_views(s, IdScheme::OrdPath);
    vs.extend(random_views(
        s,
        &ViewGenConfig {
            count: extra,
            ..Default::default()
        },
    ));
    vs
}

/// One Figure 15 row.
pub struct RewritingPoint {
    /// Query number (1-based).
    pub query: usize,
    /// Setup + pruning time.
    pub setup: Duration,
    /// Time until the first rewriting (None = no rewriting found).
    pub first: Option<Duration>,
    /// Total time.
    pub total: Duration,
    /// Views kept after Prop 3.4 pruning.
    pub views_kept: usize,
    /// Total views offered.
    pub views_total: usize,
    /// Number of rewritings found.
    pub rewritings: usize,
}

/// Rewriting options tuned for the Figure 15 sweep (bounded search).
pub fn fig15_opts() -> smv_core::RewriteOpts {
    smv_core::RewriteOpts {
        max_scans: 2,
        max_members: 32,
        max_pairs: 300,
        max_rewritings: 2,
        enable_content_navigation: false,
        ..Default::default()
    }
}

/// Aggregate (plan, pattern) pair counts over the Figure-15 workload,
/// with the branch-and-bound cost pruning toggled — the PR 2 ablation
/// showing how much of Algorithm 1's enumeration the bound cuts off.
pub struct BBComparison {
    /// Σ pairs explored with `cost_prune: true`.
    pub pairs_with_bound: usize,
    /// Σ pairs pruned by the bound.
    pub pairs_pruned: usize,
    /// Σ pairs explored with `cost_prune: false`.
    pub pairs_without_bound: usize,
    /// Queries with ≥ 1 rewriting under the bound (sanity: no query loses
    /// its best plan; lower-ranked alternatives may legitimately vanish).
    pub rewritings_with_bound: usize,
    /// Queries with ≥ 1 rewriting without the bound.
    pub rewritings_without_bound: usize,
}

/// Runs the Figure-15 queries twice — bound on, bound off — and sums the
/// enumeration counters. Both runs rank by cost and search exhaustively
/// within the same caps, so the only difference is the pruning rule.
pub fn fig15_bb_comparison(s: &Summary, views: &[View]) -> BBComparison {
    let run = |cost_prune: bool| {
        let opts = smv_core::RewriteOpts {
            cost_prune,
            max_rewritings: 8,
            ..fig15_opts()
        };
        let mut pairs = 0;
        let mut pruned = 0;
        let mut rewritings = 0;
        for q in xmark_query_patterns() {
            let r = smv_core::rewrite(&q, views, s, &opts);
            pairs += r.stats.pairs_explored;
            pruned += r.stats.pairs_pruned;
            rewritings += r.rewritings.len().min(1);
        }
        (pairs, pruned, rewritings)
    };
    let (pairs_with_bound, pairs_pruned, rewritings_with_bound) = run(true);
    let (pairs_without_bound, _, rewritings_without_bound) = run(false);
    BBComparison {
        pairs_with_bound,
        pairs_pruned,
        pairs_without_bound,
        rewritings_with_bound,
        rewritings_without_bound,
    }
}

/// Figure 15: rewriting every XMark query pattern over the view set.
pub fn fig15_rewriting(s: &Summary, views: &[View]) -> Vec<RewritingPoint> {
    xmark_query_patterns()
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let r = smv_core::rewrite(q, views, s, &fig15_opts());
            RewritingPoint {
                query: i + 1,
                setup: r.stats.setup,
                first: r.stats.first_rewriting,
                total: r.stats.total,
                views_kept: r.stats.views_kept,
                views_total: r.stats.views_total,
                rewritings: r.rewritings.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let s = xmark_summary();
        assert!(s.len() > 100);
        let d = dblp_summary();
        assert!(d.len() > 20);
    }

    #[test]
    fn synthetic_point_runs() {
        let s = dblp_summary();
        let pt = synthetic_containment(&s, 4, 1, 6, 0.5, &["author"], 3);
        assert_eq!(pt.n_positive + pt.n_negative, 21);
        assert!(pt.n_positive >= 6, "self-tests are positive");
    }
}
